"""Counting (sumcheck) prover servers.

The wire protocol mirrors the TQBF provers' with distinct tags (a server
speaks one protocol; there is no ambiguity to arbitrate):

* ``COUNT:<formula>``   → ``CLAIMSUM:<n>``   (opens/resets a session)
* ``SROUND:<i>``        → ``SPOLY:<i>:<coeffs>``
* ``SROUND:<i>:<r>``    → ``SPOLY:<i>:<coeffs>``   (records challenge ``r``)

Honest and dishonest variants parallel :mod:`repro.servers.provers`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.comm.messages import SILENCE, ServerInbox, ServerOutbox
from repro.core.strategy import ServerStrategy
from repro.errors import FormulaError
from repro.ip.sumcheck import (
    AdaptiveSumcheckCheater,
    HonestSumcheckProver,
    InflatingSumcheckProver,
    SumcheckProver,
)
from repro.mathx.modular import Field
from repro.qbf import formulas
from repro.worlds.counting import canonical_order

#: Cheating styles for :class:`CheatingCountingServer`.
CHEAT_INFLATE = "inflate"
CHEAT_ADAPTIVE = "adaptive"


@dataclass
class _CountSession:
    instance: str
    prover: SumcheckProver
    order: List[str]
    challenges: Dict[str, int] = field(default_factory=dict)
    next_round: int = 0


@dataclass
class _CountState:
    session: Optional[_CountSession] = None


class _BaseCountingServer(ServerStrategy):
    """Shared parsing/session logic for counting provers."""

    def __init__(self, field_: Field) -> None:
        self._field = field_

    def _build_prover(self, formula, order) -> SumcheckProver:
        raise NotImplementedError

    def initial_state(self, rng: random.Random) -> _CountState:
        return _CountState()

    def step(
        self, state: _CountState, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[_CountState, ServerOutbox]:
        message = inbox.from_user
        if message == SILENCE:
            return state, ServerOutbox()
        if message.startswith("COUNT:"):
            return state, self._handle_count(state, message[len("COUNT:"):])
        if message.startswith("SROUND:"):
            return state, self._handle_round(state, message[len("SROUND:"):])
        return state, ServerOutbox(to_user="ERR:unknown-request")

    def _handle_count(self, state: _CountState, instance: str) -> ServerOutbox:
        try:
            formula = formulas.parse(instance)
        except FormulaError:
            return ServerOutbox(to_user="ERR:bad-instance")
        order = canonical_order(formula)
        if not order:
            return ServerOutbox(to_user="ERR:no-variables")
        prover = self._build_prover(formula, order)
        state.session = _CountSession(instance=instance, prover=prover, order=order)
        return ServerOutbox(to_user=f"CLAIMSUM:{prover.claimed_sum()}")

    def _handle_round(self, state: _CountState, payload: str) -> ServerOutbox:
        session = state.session
        if session is None:
            return ServerOutbox(to_user="ERR:no-session")
        index_text, _, challenge_text = payload.partition(":")
        try:
            index = int(index_text)
        except ValueError:
            return ServerOutbox(to_user="ERR:bad-round")
        if index not in (session.next_round, session.next_round - 1):
            return ServerOutbox(to_user=f"ERR:expected-round-{session.next_round}")
        if index > 0 and index == session.next_round:
            try:
                challenge = int(challenge_text)
            except ValueError:
                return ServerOutbox(to_user="ERR:bad-challenge")
            session.challenges[session.order[index - 1]] = (
                self._field.normalize(challenge)
            )
        if index >= len(session.order):
            return ServerOutbox(to_user="ERR:proof-over")
        poly = session.prover.round_message(index, dict(session.challenges))
        session.next_round = max(session.next_round, index + 1)
        return ServerOutbox(to_user=f"SPOLY:{index}:{poly.serialize()}")


class HonestCountingServer(_BaseCountingServer):
    """Claims the true count and proves it."""

    @property
    def name(self) -> str:
        return "counter-honest"

    def _build_prover(self, formula, order) -> SumcheckProver:
        return HonestSumcheckProver(formula, self._field, order)


class CheatingCountingServer(_BaseCountingServer):
    """Overstates the count, backed by a chosen cheating strategy.

    The adaptive cheater cannot replay rounds (it tracks a running
    discrepancy), so unlike the honest server it answers a re-requested
    round with ``ERR:`` — which is fine: cheaters owe nobody liveness.
    """

    def __init__(self, field_: Field, style: str = CHEAT_INFLATE, delta: int = 1) -> None:
        super().__init__(field_)
        if style not in (CHEAT_INFLATE, CHEAT_ADAPTIVE):
            raise ValueError(f"unknown cheating style: {style!r}")
        self._style = style
        self._delta = delta

    @property
    def name(self) -> str:
        return f"counter-cheat-{self._style}"

    def _build_prover(self, formula, order) -> SumcheckProver:
        if self._style == CHEAT_INFLATE:
            return InflatingSumcheckProver(formula, self._field, order, self._delta)
        return AdaptiveSumcheckCheater(formula, self._field, order, self._delta)

    def _handle_round(self, state: _CountState, payload: str) -> ServerOutbox:
        if self._style == CHEAT_ADAPTIVE and state.session is not None:
            index_text, _, __ = payload.partition(":")
            try:
                if int(index_text) == state.session.next_round - 1:
                    return ServerOutbox(to_user="ERR:no-replay")
            except ValueError:
                pass
        return super()._handle_round(state, payload)


class OverflowCountingServer(_BaseCountingServer):
    """The modular-arithmetic exploit: claims ``count + p``.

    Its proof is *bit-for-bit honest* — the sumcheck verifies claims modulo
    p, and ``count + p ≡ count`` — so every algebraic check passes.  Only
    the verifier's integer range check (``0 ≤ claim ≤ 2^n``) stands between
    this server and a wrong accepted answer; the test suite keeps it there.
    """

    @property
    def name(self) -> str:
        return "counter-cheat-overflow"

    def _build_prover(self, formula, order) -> SumcheckProver:
        return HonestSumcheckProver(formula, self._field, order)

    def _handle_count(self, state: _CountState, instance: str) -> ServerOutbox:
        outbox = super()._handle_count(state, instance)
        if outbox.to_user.startswith("CLAIMSUM:"):
            honest = int(outbox.to_user[len("CLAIMSUM:"):])
            return ServerOutbox(to_user=f"CLAIMSUM:{honest + self._field.p}")
        return outbox
