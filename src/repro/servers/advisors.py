"""Advisor servers for the control world.

An advisor observes the control world's observations (the world announces
``OBS:<o>`` to the server as well as to the user) and tells the user the
correct action — in *its* vocabulary.  Wrapped in codecs these form the
compact-goal server class of experiments E1/E4/E7: every member is helpful
(decode its advice and you act perfectly), and finding *how* to decode it
is the whole game.
"""

from __future__ import annotations

import random
from typing import List, Mapping, Sequence, Tuple

from repro.comm.codecs import Codec
from repro.comm.messages import ServerInbox, ServerOutbox, parse_tagged
from repro.core.strategy import ServerStrategy
from repro.servers.wrappers import EncodedServer


class AdvisorServer(ServerStrategy):
    """Knows the control law; advises the correct action for each observation.

    Stateless from round to round — the advice for an observation does not
    depend on history — which makes it trivially helpful from any state.
    """

    def __init__(self, law: Mapping[str, str]) -> None:
        if not law:
            raise ValueError("advisor law must be non-empty")
        self._law = dict(law)

    @property
    def name(self) -> str:
        return "advisor"

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[int, ServerOutbox]:
        parsed = parse_tagged(inbox.from_world)
        if parsed is None or parsed[0] != "OBS":
            return state + 1, ServerOutbox()
        observation = parsed[1]
        action = self._law.get(observation)
        if action is None:  # "-" (no new observation) or foreign symbol.
            return state + 1, ServerOutbox()
        # Advice names the observation it answers, mirroring the world's
        # ``ACT:<obs>=<action>`` scoring format.
        return state + 1, ServerOutbox(to_user=f"ADV:{observation}={action}")


class MisleadingAdvisorServer(ServerStrategy):
    """Always advises a *wrong* action — the unhelpful control extreme.

    No user strategy that follows (any decoding of) its advice can act
    correctly, and since the law is hidden, nothing else in the class helps
    either; this member exists so tests can confirm the universal user's
    guarantee is exactly "every *helpful* server", not "every server".
    """

    def __init__(self, law: Mapping[str, str]) -> None:
        if len(set(law.values())) < 2:
            raise ValueError("need >= 2 actions to be able to advise wrongly")
        self._law = dict(law)
        self._actions = sorted(set(law.values()))

    @property
    def name(self) -> str:
        return "advisor-misleading"

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[int, ServerOutbox]:
        parsed = parse_tagged(inbox.from_world)
        if parsed is None or parsed[0] != "OBS":
            return state + 1, ServerOutbox()
        correct = self._law.get(parsed[1])
        if correct is None:
            return state + 1, ServerOutbox()
        wrong = next(a for a in self._actions if a != correct)
        return state + 1, ServerOutbox(to_user=f"ADV:{parsed[1]}={wrong}")


def advisor_server_class(
    law: Mapping[str, str], codecs: Sequence[Codec]
) -> List[EncodedServer]:
    """Helpful advisors in every language of ``codecs`` (enumeration order)."""
    return [EncodedServer(AdvisorServer(law), codec) for codec in codecs]
