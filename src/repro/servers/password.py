"""Password-locked servers: the enumeration-overhead lower bound.

The paper: "the overhead introduced by the enumeration is essentially
necessary; that is, there exist natural cases in which any universal
strategy must incur such an overhead."  The canonical such case is a class
of servers each of which is perfectly helpful — *after* the user utters its
k-bit password.  Every member is helpful (the user strategy that knows the
password succeeds), but before authenticating, all members are
indistinguishable and unresponsive; information-theoretically, any user
universal for the whole class must try ``(2^k + 1) / 2`` passwords in
expectation against a uniformly chosen member.  Experiment E3 measures the
resulting exponential rounds-to-success and checks it against this
envelope.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Mapping, Tuple

from repro.comm.messages import SILENCE, ServerInbox, ServerOutbox
from repro.core.strategy import ServerStrategy
from repro.servers.advisors import AdvisorServer


def all_passwords(bits: int) -> List[str]:
    """Every k-bit password, in numeric order ``000.. .. 111..``."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1: {bits}")
    return [format(i, f"0{bits}b") for i in range(2 ** bits)]


@dataclass
class _PasswordState:
    unlocked: bool
    inner_state: Any


class PasswordServer(ServerStrategy):
    """Gates an inner server behind an exact ``AUTH:<password>`` message.

    While locked, the inner server is completely frozen — it neither hears
    the user nor acts on the world — and the lock answers every non-silent
    user message with the same ``DENIED:`` (leaking nothing about the
    password).  Unlocking replies ``GRANTED:`` and is permanent for the
    execution, so the server is helpful from any reachable state.
    """

    def __init__(self, password: str, inner: ServerStrategy) -> None:
        if not password:
            raise ValueError("password must be non-empty")
        self._password = password
        self._inner = inner

    @property
    def name(self) -> str:
        return f"password[{self._password}]({self._inner.name})"

    def initial_state(self, rng: random.Random) -> _PasswordState:
        return _PasswordState(unlocked=False, inner_state=self._inner.initial_state(rng))

    def step(
        self, state: _PasswordState, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[_PasswordState, ServerOutbox]:
        if not state.unlocked:
            if inbox.from_user == f"AUTH:{self._password}":
                state.unlocked = True
                return state, ServerOutbox(to_user="GRANTED:")
            if inbox.from_user != SILENCE:
                return state, ServerOutbox(to_user="DENIED:")
            return state, ServerOutbox()
        state.inner_state, outbox = self._inner.step(state.inner_state, inbox, rng)
        return state, outbox


def password_server_class(
    bits: int, law: Mapping[str, str]
) -> List[PasswordServer]:
    """All ``2**bits`` password-locked advisors (the E3 server class)."""
    return [
        PasswordServer(password, AdvisorServer(law))
        for password in all_passwords(bits)
    ]
