"""Server strategies: the adversarially chosen half of the conversation.

Codec wrapping (:mod:`.wrappers`) turns any base server into a family of
language-mismatched peers; concrete families cover the printer dialects
(:mod:`.printer_servers`), interactive-proof provers honest and otherwise
(:mod:`.provers`), control advisors (:mod:`.advisors`), password locks for
the lower bound (:mod:`.password`) and fault injection (:mod:`.faulty`).
"""

from repro.servers.wrappers import EncodedServer, ResettableServer
from repro.servers.printer_servers import (
    DIALECTS,
    SpacePrinter,
    TaggedPrinter,
    HandshakePrinter,
    LyingPrinter,
    make_printer,
    printer_server_class,
)
from repro.servers.provers import (
    HonestProverServer,
    CheatingProverServer,
    LazyProverServer,
    CHEAT_FLIP,
    CHEAT_CONSTANT,
    CHEAT_RANDOM,
)
from repro.servers.counting_provers import (
    HonestCountingServer,
    CheatingCountingServer,
    OverflowCountingServer,
    CHEAT_INFLATE,
    CHEAT_ADAPTIVE,
)
from repro.servers.advisors import (
    AdvisorServer,
    MisleadingAdvisorServer,
    advisor_server_class,
)
from repro.servers.guides import (
    GuideServer,
    MisleadingGuideServer,
    guide_server_class,
)
from repro.servers.password import (
    PasswordServer,
    password_server_class,
    all_passwords,
)
from repro.servers.faulty import DroppingServer, IntermittentServer, GarblingServer

__all__ = [
    "EncodedServer",
    "ResettableServer",
    "DIALECTS",
    "SpacePrinter",
    "TaggedPrinter",
    "HandshakePrinter",
    "LyingPrinter",
    "make_printer",
    "printer_server_class",
    "HonestProverServer",
    "CheatingProverServer",
    "LazyProverServer",
    "CHEAT_FLIP",
    "CHEAT_CONSTANT",
    "CHEAT_RANDOM",
    "HonestCountingServer",
    "CheatingCountingServer",
    "OverflowCountingServer",
    "CHEAT_INFLATE",
    "CHEAT_ADAPTIVE",
    "AdvisorServer",
    "MisleadingAdvisorServer",
    "advisor_server_class",
    "GuideServer",
    "MisleadingGuideServer",
    "guide_server_class",
    "PasswordServer",
    "password_server_class",
    "all_passwords",
    "DroppingServer",
    "IntermittentServer",
    "GarblingServer",
]
