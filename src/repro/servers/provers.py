"""Prover servers: the delegation goal's server class.

A prover server speaks a small request/response protocol on the user
channel (plaintext here; codec wrapping is applied by
:class:`~repro.servers.wrappers.EncodedServer` exactly as for any other
server):

* ``PROVE:<qbf>``        → ``CLAIM:<bit>``   (opens/resets a proof session)
* ``ROUND:<i>``          → ``POLY:<i>:<coeffs>``   (first round, i = 0)
* ``ROUND:<i>:<r>``      → ``POLY:<i>:<coeffs>``   (records challenge ``r``
  for round ``i-1``'s variable, then answers round ``i``)

Unparseable requests get ``ERR:<why>`` — a helpful server complains, it
does not crash.  Re-entrancy: a fresh ``PROVE:`` at any time resets the
session, so the server is helpful from every reachable state.

The class members differ in *who is answering*:

* :class:`HonestProverServer` — completeness: helpful for the delegation
  goal (through any codec).
* :class:`CheatingProverServer` — claims the wrong bit and backs it with
  one of the cheating strategies of :mod:`repro.ip.qbf_protocol`.  These
  members are *not helpful* (no user strategy gets the right answer out of
  them), and the experiment's safety claim is about them: the universal
  user never halts with a wrong answer, no matter which cheater it faces.
* :class:`LazyProverServer` — claims without proving; tests that a bare
  claim is never trusted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.comm.messages import SILENCE, ServerInbox, ServerOutbox
from repro.core.strategy import ServerStrategy
from repro.errors import FormulaError
from repro.ip.degree import operator_schedule
from repro.ip.qbf_protocol import (
    ConstantCheatingProver,
    FlipClaimProver,
    HonestQBFProver,
    QBFProver,
    RandomCheatingProver,
)
from repro.mathx.modular import Field
from repro.qbf.qbf import QBF

#: Cheating styles accepted by :class:`CheatingProverServer`.
CHEAT_FLIP = "flip"
CHEAT_CONSTANT = "constant"
CHEAT_RANDOM = "random"


@dataclass
class _ProofSession:
    """Server-side state of one proof interaction."""

    instance: str
    prover: QBFProver
    round_vars: List[str]
    challenges: Dict[str, int] = field(default_factory=dict)
    next_round: int = 0


@dataclass
class _ProverState:
    """Server state: the live session plus a cache of built provers."""

    session: Optional[_ProofSession] = None
    prover_cache: Dict[str, Tuple[QBFProver, List[str]]] = field(default_factory=dict)


class _BaseProverServer(ServerStrategy):
    """Shared request parsing and session bookkeeping for prover servers."""

    def __init__(self, field_: Field) -> None:
        self._field = field_

    def _build_prover(
        self, qbf: QBF, rng: random.Random
    ) -> QBFProver:
        """Instantiate this server's prover for one instance."""
        raise NotImplementedError

    def initial_state(self, rng: random.Random) -> _ProverState:
        return _ProverState()

    def step(
        self, state: _ProverState, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[_ProverState, ServerOutbox]:
        message = inbox.from_user
        if message == SILENCE:
            return state, ServerOutbox()
        if message.startswith("PROVE:"):
            return state, self._handle_prove(state, message[len("PROVE:"):], rng)
        if message.startswith("ROUND:"):
            return state, self._handle_round(state, message[len("ROUND:"):])
        return state, ServerOutbox(to_user="ERR:unknown-request")

    # ------------------------------------------------------------------
    def _handle_prove(
        self, state: _ProverState, instance: str, rng: random.Random
    ) -> ServerOutbox:
        cached = state.prover_cache.get(instance)
        if cached is None:
            try:
                qbf = QBF.deserialize(instance)
            except FormulaError:
                return ServerOutbox(to_user="ERR:bad-instance")
            prover = self._build_prover(qbf, rng)
            round_vars = [op.var for op in reversed(operator_schedule(qbf))]
            state.prover_cache[instance] = (prover, round_vars)
        else:
            prover, round_vars = cached
        state.session = _ProofSession(
            instance=instance, prover=prover, round_vars=list(round_vars)
        )
        return ServerOutbox(to_user=f"CLAIM:{prover.claimed_value()}")

    def _handle_round(self, state: _ProverState, payload: str) -> ServerOutbox:
        session = state.session
        if session is None:
            return ServerOutbox(to_user="ERR:no-session")
        index_text, _, challenge_text = payload.partition(":")
        try:
            index = int(index_text)
        except ValueError:
            return ServerOutbox(to_user="ERR:bad-round")
        # Serve the expected round, or re-serve the previous one: a user
        # whose copy of our last reply was lost re-asks, and a helpful
        # server answers idempotently instead of deadlocking.
        # A fresh session has next_round == 0, so the re-serve window would
        # otherwise admit ROUND:-1 and index the schedule from the end.
        if index < 0 or index not in (session.next_round, session.next_round - 1):
            return ServerOutbox(to_user=f"ERR:expected-round-{session.next_round}")
        if index > 0 and index == session.next_round:
            try:
                challenge = int(challenge_text)
            except ValueError:
                return ServerOutbox(to_user="ERR:bad-challenge")
            session.challenges[session.round_vars[index - 1]] = (
                self._field.normalize(challenge)
            )
        if index >= len(session.round_vars):
            return ServerOutbox(to_user="ERR:proof-over")
        poly = session.prover.round_message(index, dict(session.challenges))
        session.next_round = max(session.next_round, index + 1)
        return ServerOutbox(to_user=f"POLY:{index}:{poly.serialize()}")


class HonestProverServer(_BaseProverServer):
    """Answers with the true value and a complete, honest proof."""

    @property
    def name(self) -> str:
        return "prover-honest"

    def _build_prover(self, qbf: QBF, rng: random.Random) -> QBFProver:
        return HonestQBFProver(qbf, self._field)


class CheatingProverServer(_BaseProverServer):
    """Claims the wrong bit, backed by a chosen cheating strategy."""

    def __init__(self, field_: Field, style: str = CHEAT_CONSTANT, seed: int = 0) -> None:
        super().__init__(field_)
        if style not in (CHEAT_FLIP, CHEAT_CONSTANT, CHEAT_RANDOM):
            raise ValueError(f"unknown cheating style: {style!r}")
        self._style = style
        self._seed = seed

    @property
    def name(self) -> str:
        return f"prover-cheat-{self._style}"

    def _build_prover(self, qbf: QBF, rng: random.Random) -> QBFProver:
        if self._style == CHEAT_FLIP:
            return FlipClaimProver(qbf, self._field)
        if self._style == CHEAT_RANDOM:
            # Derive the prover's stream from the threaded rng (XORing the
            # configured seed keeps distinct servers distinct): a fixed
            # `random.Random(self._seed)` here replayed the identical
            # cheating stream in every trial of every execution, which let
            # an enumeration "learn" one frozen adversary instead of facing
            # fresh randomness per proof session (flagged by RL001).
            return RandomCheatingProver(
                qbf, self._field, random.Random(rng.getrandbits(64) ^ self._seed)
            )
        wrong_bit = 1 - int(qbf.evaluate())
        return ConstantCheatingProver(self._field, wrong_bit)


class LazyProverServer(ServerStrategy):
    """Claims a fixed bit and refuses to prove anything.

    Lazy servers are the cheapest liars; the delegation user must treat an
    unproven claim as worthless, so this member tests exactly that no bare
    assertion ever reaches an ``ANSWER``.
    """

    def __init__(self, claim_bit: int = 1) -> None:
        if claim_bit not in (0, 1):
            raise ValueError(f"claim bit must be 0 or 1: {claim_bit}")
        self._bit = claim_bit

    @property
    def name(self) -> str:
        return f"prover-lazy({self._bit})"

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[int, ServerOutbox]:
        message = inbox.from_user
        if message.startswith("PROVE:"):
            return state + 1, ServerOutbox(to_user=f"CLAIM:{self._bit}")
        if message != SILENCE:
            return state + 1, ServerOutbox(to_user="ERR:wont-prove")
        return state + 1, ServerOutbox()
