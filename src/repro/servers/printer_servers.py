"""Printer servers: one device, many dialects.

Each printer accepts a *command dialect* — the shape of a valid print
command, possibly behind a handshake — and forwards the job payload to the
world (``OUT:<payload>``).  Combined with :class:`~repro.servers.wrappers.EncodedServer`
codecs, the class ``dialects × codecs`` models the full zoo of
"that printer from a different vendor/era" incompatibilities of the paper's
introduction, while every member remains perfectly *helpful*: the user
strategy that speaks its dialect through its codec prints fine.

All dialects are re-entrant (commands parse regardless of history, the
handshake can be redone at any time), keeping servers helpful from any
initial state as the paper's helpfulness definition demands.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.comm.codecs import Codec
from repro.comm.messages import SILENCE, ServerInbox, ServerOutbox
from repro.core.strategy import ServerStrategy
from repro.servers.wrappers import EncodedServer

#: Names of the available dialects, in canonical (enumeration) order.
DIALECTS: Tuple[str, ...] = ("space", "tagged", "handshake")


class SpacePrinter(ServerStrategy):
    """Dialect ``space``: accepts ``PRINT <payload>``; acknowledges ``ACK:``."""

    @property
    def name(self) -> str:
        return "printer-space"

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[int, ServerOutbox]:
        message = inbox.from_user
        if message.startswith("PRINT "):
            payload = message[len("PRINT "):]
            return state + 1, ServerOutbox(to_user="ACK:", to_world=f"OUT:{payload}")
        if message != SILENCE:
            return state + 1, ServerOutbox(to_user="ERR:")
        return state + 1, ServerOutbox()


class TaggedPrinter(ServerStrategy):
    """Dialect ``tagged``: accepts ``JOB:<payload>``; acknowledges ``DONE:``."""

    @property
    def name(self) -> str:
        return "printer-tagged"

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[int, ServerOutbox]:
        message = inbox.from_user
        if message.startswith("JOB:"):
            payload = message[len("JOB:"):]
            return state + 1, ServerOutbox(to_user="DONE:", to_world=f"OUT:{payload}")
        if message != SILENCE:
            return state + 1, ServerOutbox(to_user="ERR:")
        return state + 1, ServerOutbox()


class HandshakePrinter(ServerStrategy):
    """Dialect ``handshake``: ``HELLO`` unlocks, then ``DATA <payload>`` prints.

    The lock state is the server's memory; ``HELLO`` re-arms it at any time
    and printing leaves it unlocked, so the device stays helpful from every
    reachable state (a ``DATA`` before any ``HELLO`` is simply refused).
    """

    @property
    def name(self) -> str:
        return "printer-handshake"

    def initial_state(self, rng: random.Random) -> bool:
        return False  # Locked.

    def step(
        self, state: bool, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[bool, ServerOutbox]:
        message = inbox.from_user
        if message == "HELLO":
            return True, ServerOutbox(to_user="READY:")
        if message.startswith("DATA "):
            if not state:
                return state, ServerOutbox(to_user="ERR:locked")
            payload = message[len("DATA "):]
            return True, ServerOutbox(to_user="DONE:", to_world=f"OUT:{payload}")
        if message != SILENCE:
            return state, ServerOutbox(to_user="ERR:")
        return state, ServerOutbox()


class LyingPrinter(ServerStrategy):
    """Acknowledges every print command — and prints nothing.

    The member that makes the blind-world impossibility honest: without it,
    "the server acknowledged (in a language my codec decodes)" would be a
    safe *and* viable sensing for the feedback-free printing goal, because
    every honest dialect only acks commands it actually executed.  With an
    ack-liar in the class, server chatter proves nothing, world feedback is
    the only ground truth, and removing it really does remove all safe and
    viable sensing — which is what experiment E9 demonstrates.
    """

    def __init__(self, dialect: str = "space") -> None:
        self._inner = make_printer(dialect)

    @property
    def name(self) -> str:
        return f"printer-liar({self._inner.name})"

    def initial_state(self, rng: random.Random):
        return self._inner.initial_state(rng)

    def step(
        self, state, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[object, ServerOutbox]:
        state, out = self._inner.step(state, inbox, rng)
        # Same chatter, no physical effect.
        return state, ServerOutbox(to_user=out.to_user, to_world=SILENCE)


def make_printer(dialect: str) -> ServerStrategy:
    """Instantiate the base printer for a dialect name."""
    if dialect == "space":
        return SpacePrinter()
    if dialect == "tagged":
        return TaggedPrinter()
    if dialect == "handshake":
        return HandshakePrinter()
    raise ValueError(f"unknown printer dialect: {dialect!r}")


def printer_server_class(
    dialects: Sequence[str], codecs: Sequence[Codec]
) -> List[EncodedServer]:
    """The server class ``dialects × codecs`` in deterministic order.

    This is the adversary's menu in experiments E2/E9: the user strategy
    must print with *whichever* member it is paired with.
    """
    return [
        EncodedServer(make_printer(dialect), codec)
        for dialect in dialects
        for codec in codecs
    ]
