"""Faulty server wrappers: noise, drops, and intermittency.

The paper's model is noiseless — incompatibility, not channel error, is its
subject — but a credible implementation must not fall over when a server is
flaky.  These wrappers inject controlled faults around any base server so
the robustness tests can check the two properties that matter:

* *safety is unconditional*: faults may delay success but never produce a
  false positive indication (the printer feedback and the proof checks are
  fault-agnostic);
* *helpfulness degrades gracefully*: a server that is silent a bounded
  fraction of the time is still helpful for forgiving goals, and the
  universal users still converge (with proportionally more rounds).
"""

from __future__ import annotations

import random
from typing import Any, Tuple

from repro.comm.messages import SILENCE, ServerInbox, ServerOutbox
from repro.core.strategy import ServerStrategy


class DroppingServer(ServerStrategy):
    """Randomly drops the inner server's replies to the user.

    World-bound messages are left intact: the fault is on the conversation,
    not on the server's physical effect (a printer whose ACKs get lost still
    prints).
    """

    def __init__(self, inner: ServerStrategy, drop_probability: float) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(f"drop probability must be in [0, 1): {drop_probability}")
        self._inner = inner
        self._p = drop_probability

    @property
    def name(self) -> str:
        return f"dropping({self._p})({self._inner.name})"

    def initial_state(self, rng: random.Random) -> Any:
        return self._inner.initial_state(rng)

    def step(
        self, state: Any, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[Any, ServerOutbox]:
        state, outbox = self._inner.step(state, inbox, rng)
        if outbox.to_user != SILENCE and rng.random() < self._p:
            outbox = ServerOutbox(to_user=SILENCE, to_world=outbox.to_world)
        return state, outbox


class IntermittentServer(ServerStrategy):
    """Alternates between live and dead phases of fixed length.

    During a dead phase the inner server is frozen (as if unplugged): it
    neither hears nor speaks.  Deterministic phases make test assertions
    about recovery timing exact.
    """

    def __init__(self, inner: ServerStrategy, on_rounds: int, off_rounds: int) -> None:
        if on_rounds < 1 or off_rounds < 0:
            raise ValueError(
                f"need on_rounds >= 1 and off_rounds >= 0: {on_rounds}, {off_rounds}"
            )
        self._inner = inner
        self._on = on_rounds
        self._off = off_rounds

    @property
    def name(self) -> str:
        return f"intermittent({self._on}/{self._off})({self._inner.name})"

    def initial_state(self, rng: random.Random) -> Tuple[int, Any]:
        return (0, self._inner.initial_state(rng))

    def step(
        self, state: Tuple[int, Any], inbox: ServerInbox, rng: random.Random
    ) -> Tuple[Tuple[int, Any], ServerOutbox]:
        clock, inner_state = state
        period = self._on + self._off
        live = (clock % period) < self._on
        if not live:
            return (clock + 1, inner_state), ServerOutbox()
        inner_state, outbox = self._inner.step(inner_state, inbox, rng)
        return (clock + 1, inner_state), outbox


class GarblingServer(ServerStrategy):
    """Occasionally corrupts the inner server's replies with noise.

    Unlike :class:`DroppingServer`, the user *receives* something — just
    not what the server said.  Exercises the strategies' junk tolerance
    (parsers must reject, verifiers must refuse, nobody may crash).
    """

    def __init__(
        self, inner: ServerStrategy, garble_probability: float, noise: str = "%#@!"
    ) -> None:
        if not 0.0 <= garble_probability < 1.0:
            raise ValueError(
                f"garble probability must be in [0, 1): {garble_probability}"
            )
        self._inner = inner
        self._p = garble_probability
        self._noise = noise

    @property
    def name(self) -> str:
        return f"garbling({self._p})({self._inner.name})"

    def initial_state(self, rng: random.Random) -> Any:
        return self._inner.initial_state(rng)

    def step(
        self, state: Any, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[Any, ServerOutbox]:
        state, outbox = self._inner.step(state, inbox, rng)
        if outbox.to_user != SILENCE and rng.random() < self._p:
            outbox = ServerOutbox(to_user=self._noise, to_world=outbox.to_world)
        return state, outbox
