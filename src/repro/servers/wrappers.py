"""Server wrappers: the mechanism that *creates* language mismatch.

:class:`EncodedServer` wraps any base server in a codec: what the user says
is decoded before the base server sees it, and what the base server says is
encoded before the user sees it.  A class of servers

    ``{ EncodedServer(base, c) : c in codec_family(N) }``

is then a family of equally capable services that merely "speak different
languages" — the paper's incompatibility problem in its purest form.  Only
the user↔server channel is wrapped: the server's interface to the *world*
(printing paper, observing the environment) is physical reality and has no
language to mismatch.

:class:`ResettableServer` documents/enforces the re-entrancy the paper's
helpfulness definition requires ("started from any initial state"): it
restores the base server to a fresh state whenever the user has been silent
for a while, modelling a service that times out stale sessions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Tuple

from repro.comm.codecs import Codec
from repro.comm.messages import SILENCE, ServerInbox, ServerOutbox
from repro.core.strategy import ServerStrategy
from repro.errors import CodecError


class EncodedServer(ServerStrategy):
    """A base server heard and speaking through a codec.

    Undecodable user messages (possible only for codecs with a proper
    image, e.g. :class:`~repro.comm.codecs.PrefixCodec`) are delivered to
    the base server as silence — a real service ignores line noise.
    """

    def __init__(self, inner: ServerStrategy, codec: Codec) -> None:
        self._inner = inner
        self._codec = codec

    @property
    def name(self) -> str:
        return f"{self._inner.name}@{self._codec.name}"

    @property
    def codec(self) -> Codec:
        return self._codec

    @property
    def inner(self) -> ServerStrategy:
        return self._inner

    def initial_state(self, rng: random.Random) -> Any:
        return self._inner.initial_state(rng)

    def step(
        self, state: Any, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[Any, ServerOutbox]:
        incoming = inbox.from_user
        if incoming != SILENCE:
            try:
                incoming = self._codec.decode(incoming)
            except CodecError:
                incoming = SILENCE
        state, outbox = self._inner.step(
            state,
            ServerInbox(from_user=incoming, from_world=inbox.from_world),
            rng,
        )
        to_user = outbox.to_user
        if to_user != SILENCE:
            to_user = self._codec.encode(to_user)
        return state, ServerOutbox(to_user=to_user, to_world=outbox.to_world)


@dataclass
class _ResettableState:
    inner_state: Any
    silent_rounds: int


class ResettableServer(ServerStrategy):
    """Resets its base server after prolonged user silence.

    This makes helpfulness-from-any-state literal for stateful base servers:
    whatever half-finished session a previous (abandoned) user strategy left
    behind, ``idle_reset`` rounds of silence return the server to a clean
    slate, so a fresh candidate faces a fresh server.
    """

    def __init__(self, inner: ServerStrategy, *, idle_reset: int = 16) -> None:
        if idle_reset < 1:
            raise ValueError(f"idle_reset must be >= 1: {idle_reset}")
        self._inner = inner
        self._idle_reset = idle_reset

    @property
    def name(self) -> str:
        return f"resettable({self._inner.name})"

    def initial_state(self, rng: random.Random) -> _ResettableState:
        return _ResettableState(
            inner_state=self._inner.initial_state(rng), silent_rounds=0
        )

    def step(
        self, state: _ResettableState, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[_ResettableState, ServerOutbox]:
        # Never mutate the incoming state: under FULL recording the engine
        # keeps it as the round's ``state_before``, so in-place updates
        # would corrupt the recorded history (before == after aliasing).
        inner_state = state.inner_state
        silent_rounds = state.silent_rounds
        if inbox.from_user == SILENCE:
            silent_rounds += 1
            if silent_rounds >= self._idle_reset:
                # The reset fires on exactly the ``idle_reset``-th
                # consecutive silent round, never one round early.
                inner_state = self._inner.initial_state(rng)
                silent_rounds = 0
        else:
            # Any non-silent user message ends the idle countdown — the
            # session is live again, however far the counter had run.
            silent_rounds = 0
        inner_state, outbox = self._inner.step(inner_state, inbox, rng)
        return (
            _ResettableState(inner_state=inner_state, silent_rounds=silent_rounds),
            outbox,
        )
