"""Guide servers for the navigation world.

A guide knows the maze and, told the agent's position, advises the next
step of a shortest path.  Wrapped in codecs these form the navigation
server class: every member equally knowledgeable, each speaking its own
language — finding the guide's language is literally finding your way.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.comm.codecs import Codec
from repro.comm.messages import ServerInbox, ServerOutbox, parse_tagged
from repro.core.strategy import ServerStrategy
from repro.servers.wrappers import EncodedServer
from repro.worlds.navigation import Grid


def _parse_position(message: str):
    parsed = parse_tagged(message)
    if parsed is None or parsed[0] != "POS":
        return None
    x_text, sep, y_text = parsed[1].partition(",")
    if not sep:
        return None
    try:
        return int(x_text), int(y_text)
    except ValueError:
        return None


class GuideServer(ServerStrategy):
    """Advises the shortest-path direction for each reported position.

    Stateless round to round (the advice depends only on the position), so
    helpful from any state; silent when the agent has arrived or the
    position is unintelligible.
    """

    def __init__(self, grid: Grid) -> None:
        self._grid = grid
        # The distance field is position-independent; computing it once
        # makes each advisory O(degree) instead of O(cells).
        self._field = grid.distance_field()

    @property
    def name(self) -> str:
        return "guide"

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[int, ServerOutbox]:
        position = _parse_position(inbox.from_world)
        if position is None:
            return state + 1, ServerOutbox()
        here = self._field.get(position)
        if here is None or here == 0:
            return state + 1, ServerOutbox()
        for direction, neighbour in self._grid.neighbours(position):
            if self._field.get(neighbour) == here - 1:
                # Advice names the position it applies to: with two rounds
                # of channel latency, un-attributed advice goes stale while
                # the agent moves and steers it in circles.
                x, y = position
                return state + 1, ServerOutbox(to_user=f"GO:{x},{y}={direction}")
        return state + 1, ServerOutbox()


class MisleadingGuideServer(ServerStrategy):
    """Advises a direction that does *not* decrease the distance.

    The navigation class's unhelpful member: following it (in any
    decoding) never reaches the target, so no user strategy succeeds with
    it — used to check that universality claims quantify over helpful
    members only.
    """

    def __init__(self, grid: Grid) -> None:
        self._grid = grid
        self._field = grid.distance_field()

    @property
    def name(self) -> str:
        return "guide-misleading"

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[int, ServerOutbox]:
        position = _parse_position(inbox.from_world)
        if position is None:
            return state + 1, ServerOutbox()
        here = self._field.get(position)
        if here is None or here == 0:
            return state + 1, ServerOutbox()
        worst_direction = None
        worst_distance = -1
        for direction, neighbour in self._grid.neighbours(position):
            distance = self._field.get(neighbour)
            if distance is not None and distance > worst_distance:
                worst_distance = distance
                worst_direction = direction
        if worst_direction is None or worst_distance < here:
            return state + 1, ServerOutbox()
        x, y = position
        return state + 1, ServerOutbox(to_user=f"GO:{x},{y}={worst_direction}")


def guide_server_class(grid: Grid, codecs: Sequence[Codec]) -> List[EncodedServer]:
    """Helpful guides in every language of ``codecs`` (enumeration order)."""
    return [EncodedServer(GuideServer(grid), codec) for codec in codecs]
