"""Channel bookkeeping for the synchronous engine.

The execution engine (:mod:`repro.core.execution`) steps all three parties
simultaneously: messages emitted at round *t* are delivered at round *t+1*.
:class:`ChannelState` holds the six directed channels between the parties
and performs the exchange.

Keeping this in its own module (rather than inline in the engine) lets the
multiparty reduction (:mod:`repro.multiparty`) reuse the same delivery
discipline with composite parties.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.messages import (
    SILENCE,
    ServerInbox,
    ServerOutbox,
    UserInbox,
    UserOutbox,
    WorldInbox,
    WorldOutbox,
)


class Roles:
    """Symbolic names for the three parties of the model."""

    USER = "user"
    SERVER = "server"
    WORLD = "world"

    ALL = (USER, SERVER, WORLD)


@dataclass
class ChannelState:
    """The six directed channels of the three-party system.

    Attributes hold the message *in flight*: written during round *t* via
    :meth:`deliver`, read at round *t+1* via the ``*_inbox`` methods.
    All channels start silent, matching the paper's convention that the
    execution begins with no messages pending.
    """

    user_to_server: str = SILENCE
    user_to_world: str = SILENCE
    server_to_user: str = SILENCE
    server_to_world: str = SILENCE
    world_to_user: str = SILENCE
    world_to_server: str = SILENCE

    def user_inbox(self) -> UserInbox:
        """Messages the user will read this round."""
        return UserInbox(from_server=self.server_to_user, from_world=self.world_to_user)

    def server_inbox(self) -> ServerInbox:
        """Messages the server will read this round."""
        return ServerInbox(from_user=self.user_to_server, from_world=self.world_to_server)

    def world_inbox(self) -> WorldInbox:
        """Messages the world will read this round."""
        return WorldInbox(from_user=self.user_to_world, from_server=self.server_to_world)

    def deliver(
        self,
        user_out: UserOutbox,
        server_out: ServerOutbox,
        world_out: WorldOutbox,
    ) -> None:
        """Replace all in-flight messages with this round's outboxes.

        The replacement is wholesale: a party that stays silent on a channel
        clears it.  This matches the synchronous model, where each round's
        message profile fully determines what the counterpart sees next
        round (there is no implicit buffering).
        """
        self.user_to_server = user_out.to_server
        self.user_to_world = user_out.to_world
        self.server_to_user = server_out.to_user
        self.server_to_world = server_out.to_world
        self.world_to_user = world_out.to_user
        self.world_to_server = world_out.to_server
