"""Communication substrate: messages, channels, codecs, transcripts.

This subpackage implements the plumbing under the Goldreich–Juba–Sudan model:
the message profiles exchanged each synchronous round (:mod:`.messages`), the
channel bookkeeping between the three parties (:mod:`.channels`), the
bijective string codecs that model *language mismatch* between user and
server (:mod:`.codecs`), and transcript recording (:mod:`.transcripts`).
"""

from repro.comm.messages import (
    SILENCE,
    UserInbox,
    UserOutbox,
    ServerInbox,
    ServerOutbox,
    WorldInbox,
    WorldOutbox,
    parse_tagged,
    tagged,
)
from repro.comm.channels import ChannelState, Roles
from repro.comm.codecs import (
    Codec,
    IdentityCodec,
    ReverseCodec,
    CaesarCodec,
    AlphabetPermutationCodec,
    TokenMapCodec,
    XorMaskCodec,
    ComposedCodec,
    PrefixCodec,
    codec_family,
)
from repro.comm.transcripts import Transcript, TranscriptEntry

__all__ = [
    "SILENCE",
    "UserInbox",
    "UserOutbox",
    "ServerInbox",
    "ServerOutbox",
    "WorldInbox",
    "WorldOutbox",
    "parse_tagged",
    "tagged",
    "ChannelState",
    "Roles",
    "Codec",
    "IdentityCodec",
    "ReverseCodec",
    "CaesarCodec",
    "AlphabetPermutationCodec",
    "TokenMapCodec",
    "XorMaskCodec",
    "ComposedCodec",
    "PrefixCodec",
    "codec_family",
    "Transcript",
    "TranscriptEntry",
]
