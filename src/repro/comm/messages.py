"""Message profiles for the three-party synchronous model.

The model of Section 2 of the paper has three entities — *user*, *server*,
and *world* — connected pairwise by channels.  Each synchronous round, every
entity receives an *incoming message profile* (one message per counterpart)
and produces an *outgoing message profile*.

Messages are plain Python strings; the empty string :data:`SILENCE` means
"no message this round".  Keeping messages as strings (rather than rich
objects) is deliberate: the whole point of the paper is that the *meaning*
of the bytes on the channel is not agreed upon in advance, so the substrate
must not smuggle semantics into the wire format.

Tagged messages
---------------
Most concrete protocols in this package use a light ``TAG:payload``
convention.  :func:`tagged` and :func:`parse_tagged` implement it.  The
convention is a convenience for *our* strategies; nothing in the engine
depends on it, and codec-wrapped servers scramble it like any other text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: The empty message.  An entity that sends :data:`SILENCE` on a channel is
#: indistinguishable from one that sends nothing.
SILENCE: str = ""


@dataclass(frozen=True)
class UserInbox:
    """Messages the user receives at the start of a round."""

    from_server: str = SILENCE
    from_world: str = SILENCE

    def is_silent(self) -> bool:
        """Return True when no counterpart sent anything this round."""
        return self.from_server == SILENCE and self.from_world == SILENCE


@dataclass(frozen=True)
class UserOutbox:
    """Messages the user emits at the end of a round.

    ``halt`` and ``output`` implement *finite goals* (Section 3): the user
    must eventually halt, and the referee is evaluated on the finite history.
    ``output`` carries the user's final verdict/result; it is recorded by the
    execution engine and typically consulted by finite referees.
    """

    to_server: str = SILENCE
    to_world: str = SILENCE
    halt: bool = False
    output: Optional[str] = None


@dataclass(frozen=True)
class ServerInbox:
    """Messages the server receives at the start of a round."""

    from_user: str = SILENCE
    from_world: str = SILENCE

    def is_silent(self) -> bool:
        """Return True when no counterpart sent anything this round."""
        return self.from_user == SILENCE and self.from_world == SILENCE


@dataclass(frozen=True)
class ServerOutbox:
    """Messages the server emits at the end of a round."""

    to_user: str = SILENCE
    to_world: str = SILENCE


@dataclass(frozen=True)
class WorldInbox:
    """Messages the world receives at the start of a round."""

    from_user: str = SILENCE
    from_server: str = SILENCE

    def is_silent(self) -> bool:
        """Return True when no counterpart sent anything this round."""
        return self.from_user == SILENCE and self.from_server == SILENCE


@dataclass(frozen=True)
class WorldOutbox:
    """Messages the world emits at the end of a round."""

    to_user: str = SILENCE
    to_server: str = SILENCE


def tagged(tag: str, payload: str = "") -> str:
    """Build a ``TAG:payload`` message.

    >>> tagged("PRINT", "hello")
    'PRINT:hello'
    >>> tagged("ACK")
    'ACK:'
    """
    if ":" in tag:
        raise ValueError(f"tag must not contain ':': {tag!r}")
    return f"{tag}:{payload}"


def parse_tagged(message: str) -> Optional[Tuple[str, str]]:
    """Split a ``TAG:payload`` message into ``(tag, payload)``.

    Returns ``None`` when the message does not follow the convention (no
    colon, or empty message).  Strategies facing untrusted peers should treat
    ``None`` as "unintelligible" rather than raising.

    >>> parse_tagged("PRINT:hello")
    ('PRINT', 'hello')
    >>> parse_tagged("garbage") is None
    True
    """
    if not message or ":" not in message:
        return None
    tag, _, payload = message.partition(":")
    return tag, payload
