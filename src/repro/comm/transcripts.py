"""Transcript recording for executions.

A :class:`Transcript` is the flat, human-readable log of everything that
crossed the channels during an execution.  The execution engine produces
richer :class:`~repro.core.execution.RoundRecord` objects; transcripts are
the presentation layer used by examples and debugging helpers, and by tests
that assert on *what was said* rather than on internal states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.comm.messages import SILENCE


@dataclass(frozen=True)
class TranscriptEntry:
    """One message on one directed channel during one round."""

    round_index: int
    sender: str
    receiver: str
    message: str

    def format(self) -> str:
        """Render like ``[ 12] user   -> server : PRINT:hello``."""
        return (
            f"[{self.round_index:4d}] {self.sender:<6} -> {self.receiver:<6} : "
            f"{self.message}"
        )


class Transcript:
    """An append-only log of channel traffic.

    Silent messages are skipped on append, so the transcript contains only
    actual communication.
    """

    def __init__(self) -> None:
        self._entries: List[TranscriptEntry] = []

    def record(self, round_index: int, sender: str, receiver: str, message: str) -> None:
        """Append one channel observation (ignored when silent)."""
        if message == SILENCE:
            return
        self._entries.append(TranscriptEntry(round_index, sender, receiver, message))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TranscriptEntry]:
        return iter(self._entries)

    def between(self, sender: str, receiver: str) -> List[TranscriptEntry]:
        """All entries on the directed channel ``sender -> receiver``."""
        return [e for e in self._entries if e.sender == sender and e.receiver == receiver]

    def messages(self, sender: str, receiver: str) -> List[str]:
        """Just the message strings on a directed channel, in order."""
        return [e.message for e in self.between(sender, receiver)]

    def format(self, limit: int = 0) -> str:
        """Render the transcript; ``limit`` > 0 keeps only the last entries."""
        entries = self._entries[-limit:] if limit > 0 else self._entries
        return "\n".join(entry.format() for entry in entries)

    def tail(self, count: int) -> List[TranscriptEntry]:
        """The last ``count`` entries."""
        return self._entries[-count:]
