"""Bijective string codecs modelling *language mismatch*.

The central obstacle studied by the paper is that user and server share no
prior agreement on protocol or language.  We model a server's "foreign
language" by wrapping a base server in a :class:`Codec`: incoming user
messages are decoded, outgoing server messages are encoded (see
:class:`repro.servers.wrappers.EncodedServer`).  A user strategy that works
against the base server then works against the wrapped server *iff* it
speaks through the same codec — so a class of codec-wrapped servers is
exactly a class of servers "speaking different languages", and enumerating
codecs is enumerating hypotheses about the server's language.

Every codec is a bijection on its domain, so wrapping never destroys
information: the wrapped server is as *helpful* as the base one (a user
knowing the codec achieves whatever the base user achieved).  This is what
keeps the experiments aligned with the paper's setting, where the issue is
purely one of compatibility, never of capability.

Codecs are value objects: equality and hashing are structural, so they can
key enumeration tables and be compared in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import CodecError

#: Characters the rotation/permutation codecs operate on: printable ASCII.
_PRINTABLE_LO = 32
_PRINTABLE_HI = 126
_PRINTABLE_RANGE = _PRINTABLE_HI - _PRINTABLE_LO + 1


class Codec:
    """A bijective transformation on message strings.

    Subclasses implement :meth:`encode` and :meth:`decode` such that
    ``decode(encode(s)) == s`` for every string ``s`` in the domain.
    ``decode`` raises :class:`~repro.errors.CodecError` when its input is not
    in the image of ``encode`` (strategies treat that as an unintelligible
    message, not a crash).
    """

    @property
    def name(self) -> str:
        """Short human-readable identifier used in experiment tables."""
        raise NotImplementedError

    def encode(self, message: str) -> str:
        """Map a plaintext message to its wire form."""
        raise NotImplementedError

    def decode(self, message: str) -> str:
        """Invert :meth:`encode`; raise :class:`CodecError` on non-image input."""
        raise NotImplementedError

    def then(self, other: "Codec") -> "ComposedCodec":
        """Return the codec applying ``self`` first, then ``other``."""
        return ComposedCodec((self, other))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


@dataclass(frozen=True)
class IdentityCodec(Codec):
    """The trivial codec: wire form equals plaintext."""

    @property
    def name(self) -> str:
        return "id"

    def encode(self, message: str) -> str:
        return message

    def decode(self, message: str) -> str:
        return message


@dataclass(frozen=True)
class ReverseCodec(Codec):
    """Reverses the message; its own inverse."""

    @property
    def name(self) -> str:
        return "reverse"

    def encode(self, message: str) -> str:
        return message[::-1]

    def decode(self, message: str) -> str:
        return message[::-1]


@dataclass(frozen=True)
class CaesarCodec(Codec):
    """Rotates printable-ASCII characters by a fixed shift.

    Characters outside the printable range pass through unchanged, which
    preserves bijectivity because the rotation maps the printable range onto
    itself.
    """

    shift: int = 1

    @property
    def name(self) -> str:
        return f"caesar{self.shift % _PRINTABLE_RANGE}"

    def _rotate(self, message: str, shift: int) -> str:
        out = []
        for ch in message:
            code = ord(ch)
            if _PRINTABLE_LO <= code <= _PRINTABLE_HI:
                code = _PRINTABLE_LO + (code - _PRINTABLE_LO + shift) % _PRINTABLE_RANGE
            out.append(chr(code))
        return "".join(out)

    def encode(self, message: str) -> str:
        return self._rotate(message, self.shift)

    def decode(self, message: str) -> str:
        return self._rotate(message, -self.shift)


@dataclass(frozen=True)
class XorMaskCodec(Codec):
    """XORs each character code with a mask below 256; its own inverse.

    Only defined on strings of characters with code points below 256 (the
    Latin-1 plane, a superset of everything our protocols emit); other
    inputs raise :class:`CodecError`.
    """

    mask: int = 0x55

    def __post_init__(self) -> None:
        if not 0 <= self.mask < 256:
            raise ValueError(f"mask must be in [0, 256): {self.mask}")

    @property
    def name(self) -> str:
        return f"xor{self.mask:02x}"

    def _apply(self, message: str) -> str:
        out = []
        for ch in message:
            code = ord(ch)
            if code >= 256:
                raise CodecError(f"XorMaskCodec domain is Latin-1; got {ch!r}")
            out.append(chr(code ^ self.mask))
        return "".join(out)

    def encode(self, message: str) -> str:
        return self._apply(message)

    def decode(self, message: str) -> str:
        return self._apply(message)


@dataclass(frozen=True)
class AlphabetPermutationCodec(Codec):
    """Applies a permutation of a fixed alphabet character-wise.

    ``mapping`` must be a bijection from the alphabet onto itself; characters
    outside the alphabet pass through unchanged.
    """

    mapping: Tuple[Tuple[str, str], ...]
    label: str = "perm"

    def __post_init__(self) -> None:
        sources = [src for src, _ in self.mapping]
        targets = [dst for _, dst in self.mapping]
        if sorted(sources) != sorted(targets):
            raise ValueError("mapping must permute the alphabet onto itself")
        if len(set(sources)) != len(sources):
            raise ValueError("mapping has duplicate source characters")

    @property
    def name(self) -> str:
        return self.label

    def _forward(self) -> Dict[str, str]:
        return dict(self.mapping)

    def _backward(self) -> Dict[str, str]:
        return {dst: src for src, dst in self.mapping}

    def encode(self, message: str) -> str:
        table = self._forward()
        return "".join(table.get(ch, ch) for ch in message)

    def decode(self, message: str) -> str:
        table = self._backward()
        return "".join(table.get(ch, ch) for ch in message)


@dataclass(frozen=True)
class TokenMapCodec(Codec):
    """Renames whole tokens (split on a separator) via a bijection.

    This models *vocabulary* mismatch — e.g. an advisor that says ``norte``
    where we say ``north`` — as opposed to the character-level codecs above.
    ``mapping`` must be injective and its image disjoint from unmapped
    tokens, which the constructor checks to the extent possible (injectivity)
    and the family builders guarantee by using permutations of a token set.
    """

    mapping: Tuple[Tuple[str, str], ...]
    separator: str = " "
    label: str = "tokens"

    def __post_init__(self) -> None:
        targets = [dst for _, dst in self.mapping]
        if len(set(targets)) != len(targets):
            raise ValueError("token mapping must be injective")
        sources = [src for src, _ in self.mapping]
        if len(set(sources)) != len(sources):
            raise ValueError("token mapping has duplicate sources")

    @property
    def name(self) -> str:
        return self.label

    def encode(self, message: str) -> str:
        table = dict(self.mapping)
        return self.separator.join(
            table.get(tok, tok) for tok in message.split(self.separator)
        )

    def decode(self, message: str) -> str:
        table = {dst: src for src, dst in self.mapping}
        return self.separator.join(
            table.get(tok, tok) for tok in message.split(self.separator)
        )


@dataclass(frozen=True)
class PrefixCodec(Codec):
    """Prepends a fixed sigil; decoding strips it and rejects its absence.

    Unlike the other codecs this one has a *proper* image (strings starting
    with the sigil), so decoding garbage fails loudly — useful in tests of
    how strategies cope with unintelligible peers.
    """

    sigil: str = "~"

    @property
    def name(self) -> str:
        return f"prefix{self.sigil!r}"

    def encode(self, message: str) -> str:
        return self.sigil + message

    def decode(self, message: str) -> str:
        if not message.startswith(self.sigil):
            raise CodecError(f"missing sigil {self.sigil!r}: {message!r}")
        return message[len(self.sigil):]


@dataclass(frozen=True)
class ComposedCodec(Codec):
    """Function composition of codecs (first element applied first)."""

    parts: Tuple[Codec, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("ComposedCodec needs at least one part")

    @property
    def name(self) -> str:
        return "+".join(part.name for part in self.parts)

    def encode(self, message: str) -> str:
        for part in self.parts:
            message = part.encode(message)
        return message

    def decode(self, message: str) -> str:
        for part in reversed(self.parts):
            message = part.decode(message)
        return message


def codec_family(size: int) -> List[Codec]:
    """Return a deterministic family of ``size`` distinct codecs.

    The family starts with the identity and grows through reversal, Caesar
    rotations, XOR masks and their compositions.  Determinism matters: the
    experiments place "the right language" at a *known index* of the family
    to measure how the universal user's overhead scales with enumeration
    position (experiment E4).
    """
    if size < 1:
        raise ValueError(f"size must be positive: {size}")
    base: List[Codec] = [IdentityCodec(), ReverseCodec()]
    shift = 1
    while len(base) < size and shift < _PRINTABLE_RANGE:
        base.append(CaesarCodec(shift=shift))
        shift += 2
    mask = 1
    while len(base) < size and mask < 256:
        base.append(XorMaskCodec(mask=mask))
        mask += 2
    # Compositions give an unbounded supply of further distinct codecs.
    level = 1
    while len(base) < size:
        base.append(ComposedCodec((ReverseCodec(), CaesarCodec(shift=level))))
        level += 1
        if len(base) < size:
            base.append(ComposedCodec((CaesarCodec(shift=level), XorMaskCodec(mask=level % 256))))
            level += 1
    return base[:size]
