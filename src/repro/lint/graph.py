"""Project-level analysis: module graph, symbol tables, best-effort call graph.

The per-module rules (RL001–RL005) see one file at a time; the invariants
the async/serve era leans on — "nothing reachable from the event loop
blocks", "every registered event kind is emitted *and* certified" — are
properties of the *program*.  This module builds the whole-program view
the RL1xx/RL2xx/RL3xx families consume, once per lint run:

* a **module table** keyed by dotted module name (``src/repro/x/y.py`` →
  ``repro.x.y``), so ``from repro.obs.events import StrategySwitch``
  resolves to the class definition in another scanned file;
* per-class **symbol tables**: methods, resolved base classes, and
  best-effort attribute types gathered from annotations (dataclass
  fields, ``self.x: T = ...``) and from ``self.x = <inferable expr>``
  assignments;
* a **call graph**: every call site in every function resolved to the
  project functions (or external dotted paths) it may reach.  Resolution
  is annotation-driven — parameter/return annotations, constructor
  calls, and container element types (``Deque[SessionHandle]`` →
  ``popleft()`` yields ``SessionHandle``) — with *virtual dispatch*:
  a call through a base class or Protocol fans out to every override in
  the scanned tree;
* a **blocking-closure** analysis: which sync functions transitively
  reach a blocking primitive (``subprocess.*``, ``time.sleep``, file and
  socket I/O, process-pool spin-up), with a witness chain for
  diagnostics.  RL101 reads this to flag event-loop hazards.

Known unsoundness, by design (documented in ``docs/STATIC_ANALYSIS.md``):
the graph covers the scanned files only, resolves types best-effort (an
unannotated local of unknown type contributes no edges), and treats
string/``Optional``/``Union`` annotations by their first project-resolvable
member.  The rules built on it are therefore *linters*, not verifiers —
they trade completeness for zero-false-setup cost, like the rest of
reprolint.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.context import ModuleContext

# --------------------------------------------------------------------------
# Type references
# --------------------------------------------------------------------------
#
# A best-effort static type is a plain string:
#   "C:<dotted class qual>"   instance of a project class
#   "SEQ:<inner>"             sequence/deque/iterable of <inner>
#   "PATH"                    pathlib.Path instance
#   "HANDLE"                  an open file object (from open()/Path.open())
# Anything unresolvable is None.

_CONTAINER_HEADS = frozenset(
    {
        "List", "Deque", "Sequence", "MutableSequence", "Iterable",
        "Iterator", "Set", "FrozenSet", "Tuple", "list", "deque", "set",
        "frozenset", "tuple",
    }
)
_OPTIONAL_HEADS = frozenset({"Optional", "Union"})

#: Methods on a SEQ:<inner> value that yield one <inner> element.
_SEQ_ELEMENT_METHODS = frozenset({"pop", "popleft", "__getitem__"})

#: Methods on an open file handle (all blocking I/O).
HANDLE_METHODS = frozenset(
    {
        "write", "writelines", "read", "readline", "readlines", "flush",
        "close", "seek", "truncate",
    }
)

#: pathlib.Path methods that hit the filesystem with real work.
PATH_BLOCKING_METHODS = frozenset(
    {
        "open", "read_text", "read_bytes", "write_text", "write_bytes",
        "mkdir", "rmdir", "unlink", "touch", "rename", "replace",
        "symlink_to", "hardlink_to",
    }
)


def module_name_for_path(path: str) -> str:
    """The dotted module name a file would import as, best-effort.

    Files under a ``src`` directory get their package-relative name
    (``src/repro/serve/engine.py`` → ``repro.serve.engine``); everything
    else uses its path components (``tests/serve/test_engine.py`` →
    ``tests.serve.test_engine``), which is unique enough for intra-project
    resolution — only the ``src`` tree is imported by dotted name.
    """
    normalized = os.path.normpath(path)
    parts = [p for p in normalized.split(os.sep) if p not in ("", ".", "..")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    # Windows drive letters / hidden dirs contribute odd components;
    # strip characters that can never appear in an import path.
    return ".".join(p.lstrip(".") for p in parts if p.lstrip("."))


# --------------------------------------------------------------------------
# Symbols
# --------------------------------------------------------------------------


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qual: str
    module: "ProjectModule"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_qual: Optional[str] = None
    #: Call sites in this function's own body (nested defs excluded).
    calls: List["CallSite"] = field(default_factory=list)
    #: Blocking witness: (description, chain of quals ending at the
    #: primitive's owner), or None when no blocking path is known.
    blocking: Optional[Tuple[str, Tuple[str, ...]]] = None

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassInfo:
    """One class definition plus its resolved structure."""

    qual: str
    module: "ProjectModule"
    node: ast.ClassDef
    base_refs: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One resolved call: where it is and what it may invoke.

    ``targets`` holds project function quals; ``external`` holds dotted
    paths outside the project (stdlib and third-party); ``primitive``
    carries a blocking-primitive description when the call *itself* is
    one (file-handle write, ``Path.write_text``, ...).
    """

    node: ast.Call
    targets: Tuple[str, ...]
    external: Tuple[str, ...]
    primitive: Optional[str]
    awaited: bool


@dataclass
class ProjectModule:
    """One scanned file with its lint context and tree kind."""

    path: str
    name: str
    kind: str
    context: ModuleContext


class Project:
    """The whole-program view: modules, symbols, call graph.

    Built once per lint run from every successfully parsed module; rules
    receive the same instance, so all project analyses share one symbol
    table and one call-graph fixed point.
    """

    def __init__(self, modules: Sequence[ProjectModule]) -> None:
        self.modules: Dict[str, ProjectModule] = {}
        self.by_path: Dict[str, ProjectModule] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self._subclasses: Dict[str, Set[str]] = {}
        #: Scratch space for rules that amortize a project-wide scan
        #: (e.g. the event-contract family's registry collection).
        self.analysis_cache: Dict[str, object] = {}
        self._call_index: Optional[Dict[str, List[Tuple[ProjectModule, ast.Call]]]] = None
        self._module_refs: Optional[Dict[str, Set[str]]] = None
        for mod in modules:
            # First registration wins on (rare) dotted-name collisions.
            self.modules.setdefault(mod.name, mod)
            self.by_path[mod.path] = mod
        for mod in self.modules.values():
            self._collect_symbols(mod)
        self._resolve_bases()
        for mod in self.modules.values():
            self._collect_attr_types(mod)
        for info in list(self.functions.values()):
            self._collect_calls(info)
        self._propagate_blocking()

    # -- phase 1: symbols ------------------------------------------------

    def _collect_symbols(self, mod: ProjectModule) -> None:
        for node in mod.context.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_function(mod, node, None)
            elif isinstance(node, ast.ClassDef):
                qual = f"{mod.name}.{node.name}"
                info = ClassInfo(qual=qual, module=mod, node=node)
                for base in node.bases:
                    ref = self._annotation_ref(mod, base)
                    if ref is not None:
                        info.base_refs.append(ref)
                self.classes[qual] = info
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = self._register_function(mod, item, qual)
                        info.methods[item.name] = fn

    def _register_function(
        self,
        mod: ProjectModule,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_qual: Optional[str],
    ) -> FunctionInfo:
        if class_qual is None:
            qual = f"{mod.name}.{node.name}"
        else:
            qual = f"{class_qual}.{node.name}"
        info = FunctionInfo(
            qual=qual, module=mod, node=node, class_qual=class_qual
        )
        self.functions.setdefault(qual, info)
        # Nested defs become addressable functions too (closures used as
        # helpers/callbacks), namespaced under their parent.
        for child in ast.walk(node):
            if child is node:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested_qual = f"{qual}.<locals>.{child.name}"
                if nested_qual not in self.functions:
                    self.functions[nested_qual] = FunctionInfo(
                        qual=nested_qual,
                        module=mod,
                        node=child,
                        class_qual=class_qual,
                    )
        return self.functions[qual]

    def _resolve_bases(self) -> None:
        for qual, info in self.classes.items():
            for ref in info.base_refs:
                base_qual = self._class_qual_for_ref(info.module, ref)
                if base_qual is not None:
                    self._subclasses.setdefault(base_qual, set()).add(qual)

    # -- references ------------------------------------------------------

    def _annotation_ref(
        self, mod: ProjectModule, node: ast.expr
    ) -> Optional[str]:
        """A dotted reference for a base/annotation expression, if any."""
        if isinstance(node, ast.Subscript):
            return self._annotation_ref(mod, node.value)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
            return self._annotation_ref(mod, parsed)
        parts: List[str] = []
        cursor: ast.expr = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        root = mod.context.imports.get(cursor.id)
        if root is None:
            # Same-module class or builtin.
            if cursor.id in mod.context.class_bases:
                root = f"{mod.name}.{cursor.id}"
            else:
                root = cursor.id
        parts.append(root)
        return ".".join(reversed(parts))

    def _class_qual_for_ref(
        self, mod: ProjectModule, ref: str
    ) -> Optional[str]:
        """Map a dotted reference to a project class qual, if it is one."""
        if ref in self.classes:
            return ref
        # ``from x import C`` gives ``x.C``; the class lives in module x.
        return ref if ref in self.classes else None

    def subclasses_of(self, qual: str) -> Set[str]:
        """All transitive subclasses of ``qual`` in the project."""
        seen: Set[str] = set()
        stack = list(self._subclasses.get(qual, ()))
        while stack:
            child = stack.pop()
            if child in seen:
                continue
            seen.add(child)
            stack.extend(self._subclasses.get(child, ()))
        return seen

    def lookup_method(self, class_qual: str, name: str) -> Optional[FunctionInfo]:
        """Resolve ``name`` through ``class_qual``'s project MRO (BFS)."""
        queue = [class_qual]
        seen: Set[str] = set()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            for ref in info.base_refs:
                base = self._class_qual_for_ref(info.module, ref)
                if base is not None:
                    queue.append(base)
        return None

    def attr_type(self, class_qual: str, name: str) -> Optional[str]:
        """The declared/inferred type of ``class_qual``'s attribute."""
        queue = [class_qual]
        seen: Set[str] = set()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if name in info.attr_types:
                return info.attr_types[name]
            for ref in info.base_refs:
                base = self._class_qual_for_ref(info.module, ref)
                if base is not None:
                    queue.append(base)
        return None

    # -- phase 2: types --------------------------------------------------

    def _type_from_annotation(
        self, mod: ProjectModule, node: Optional[ast.expr]
    ) -> Optional[str]:
        """Best-effort typeref for an annotation expression."""
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            if not isinstance(node.value, str):
                return None
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
            return self._type_from_annotation(mod, parsed)
        if isinstance(node, ast.Subscript):
            head = self._annotation_head(node.value)
            if head in _OPTIONAL_HEADS:
                for arg in self._subscript_args(node):
                    inner = self._type_from_annotation(mod, arg)
                    if inner is not None:
                        return inner
                return None
            if head in _CONTAINER_HEADS:
                args = self._subscript_args(node)
                if args:
                    inner = self._type_from_annotation(mod, args[0])
                    if inner is not None:
                        return f"SEQ:{inner}"
                return None
            return self._type_from_annotation(mod, node.value)
        ref = self._annotation_ref(mod, node)
        if ref is None:
            return None
        return self._type_for_ref(mod, ref)

    def _type_for_ref(self, mod: ProjectModule, ref: str) -> Optional[str]:
        if ref in ("pathlib.Path", "Path", "pathlib.PurePath"):
            return "PATH"
        if ref in self.classes:
            return f"C:{ref}"
        # Module-level type aliases: ``TracerLike = Union[None, Tracer]``.
        alias = self._alias_target(ref)
        if alias is not None:
            return alias
        return None

    def _alias_target(self, ref: str) -> Optional[str]:
        """Resolve a module-level ``Name = <annotation>`` alias, one hop."""
        module_name, _, alias_name = ref.rpartition(".")
        mod = self.modules.get(module_name)
        if mod is None:
            return None
        for node in mod.context.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == alias_name
            ):
                value = node.value
                if isinstance(value, ast.Subscript):
                    head = self._annotation_head(value.value)
                    if head in _OPTIONAL_HEADS:
                        for arg in self._subscript_args(value):
                            ref2 = self._annotation_ref(mod, arg)
                            if ref2 is None:
                                continue
                            inner = self._type_for_ref(mod, ref2)
                            if inner is not None:
                                return inner
        return None

    @staticmethod
    def _annotation_head(node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    @staticmethod
    def _subscript_args(node: ast.Subscript) -> List[ast.expr]:
        inner = node.slice
        if isinstance(inner, ast.Tuple):
            return list(inner.elts)
        return [inner]

    def _collect_attr_types(self, mod: ProjectModule) -> None:
        """Fill each class's attribute-type table (annotation-first)."""
        for cls in self.classes.values():
            if cls.module is not mod:
                continue
            # Dataclass fields / class-level annotations.
            for item in cls.node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    if self._is_classvar(item.annotation):
                        continue
                    typeref = self._type_from_annotation(mod, item.annotation)
                    if typeref is not None:
                        cls.attr_types.setdefault(item.target.id, typeref)
            # ``self.x = ...`` in method bodies, annotation or inference.
            for fn in cls.methods.values():
                env = self._seed_env(mod, fn)
                for stmt in ast.walk(fn.node):
                    if isinstance(stmt, ast.AnnAssign):
                        target = stmt.target
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            typeref = self._type_from_annotation(
                                mod, stmt.annotation
                            )
                            if typeref is not None:
                                cls.attr_types.setdefault(target.attr, typeref)
                    elif isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                typeref = self._infer_expr(
                                    mod, env, stmt.value, cls.qual
                                )
                                if typeref is not None:
                                    cls.attr_types.setdefault(
                                        target.attr, typeref
                                    )

    @staticmethod
    def _is_classvar(annotation: ast.expr) -> bool:
        for node in ast.walk(annotation):
            if isinstance(node, ast.Name) and node.id == "ClassVar":
                return True
            if isinstance(node, ast.Attribute) and node.attr == "ClassVar":
                return True
        return False

    def _seed_env(
        self, mod: ProjectModule, fn: FunctionInfo
    ) -> Dict[str, str]:
        """Parameter types for ``fn`` from its annotations."""
        env: Dict[str, str] = {}
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            typeref = self._type_from_annotation(mod, arg.annotation)
            if typeref is not None:
                env[arg.arg] = typeref
        if fn.class_qual is not None and (args.posonlyargs or args.args):
            first = (args.posonlyargs or args.args)[0].arg
            env.setdefault(first, f"C:{fn.class_qual}")
        return env

    # -- expression inference --------------------------------------------

    def _infer_expr(
        self,
        mod: ProjectModule,
        env: Dict[str, str],
        node: ast.expr,
        self_class: Optional[str],
    ) -> Optional[str]:
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Await):
            return self._infer_expr(mod, env, node.value, self_class)
        if isinstance(node, ast.IfExp):
            return self._infer_expr(
                mod, env, node.body, self_class
            ) or self._infer_expr(mod, env, node.orelse, self_class)
        if isinstance(node, ast.Attribute):
            base = self._infer_expr(mod, env, node.value, self_class)
            if base is not None and base.startswith("C:"):
                return self.attr_type(base[2:], node.attr)
            return None
        if isinstance(node, ast.Subscript):
            base = self._infer_expr(mod, env, node.value, self_class)
            if base is not None and base.startswith("SEQ:"):
                return base[len("SEQ:"):]
            return None
        if isinstance(node, ast.Call):
            return self._infer_call(mod, env, node, self_class)
        return None

    def _infer_call(
        self,
        mod: ProjectModule,
        env: Dict[str, str],
        node: ast.Call,
        self_class: Optional[str],
    ) -> Optional[str]:
        func = node.func
        # Dotted path rooted in an import / builtin name.
        dotted = self._dotted_target(mod, func)
        if dotted is not None:
            if dotted in ("open", "io.open"):
                return "HANDLE"
            if dotted in ("pathlib.Path", "Path"):
                return "PATH"
            if dotted in self.classes:
                return f"C:{dotted}"
            fn = self.functions.get(dotted)
            if fn is not None:
                return self._type_from_annotation(fn.module, fn.node.returns)
        if isinstance(func, ast.Name):
            # Same-module class / function by bare name.
            local = f"{mod.name}.{func.id}"
            if local in self.classes:
                return f"C:{local}"
            fn = self.functions.get(local)
            if fn is not None:
                return self._type_from_annotation(fn.module, fn.node.returns)
        if isinstance(func, ast.Attribute):
            receiver = self._infer_expr(mod, env, func.value, self_class)
            if receiver == "PATH" and func.attr == "open":
                return "HANDLE"
            if receiver is not None and receiver.startswith("SEQ:"):
                if func.attr in _SEQ_ELEMENT_METHODS:
                    return receiver[len("SEQ:"):]
                return None
            if receiver is not None and receiver.startswith("C:"):
                method = self.lookup_method(receiver[2:], func.attr)
                if method is not None:
                    return self._type_from_annotation(
                        method.module, method.node.returns
                    )
        return None

    def _dotted_target(
        self, mod: ProjectModule, func: ast.expr
    ) -> Optional[str]:
        """Resolve a name/attribute chain through the import table."""
        resolved = mod.context.resolve_call(func)
        if resolved is not None:
            return resolved
        if isinstance(func, ast.Name) and func.id == "open":
            return "open"
        return None

    # -- phase 3: call sites ---------------------------------------------

    def _collect_calls(self, info: FunctionInfo) -> None:
        mod = info.module
        env = self._seed_env(mod, info)
        self_class = info.class_qual
        # Statement-ordered walk of the function's own body, updating the
        # local type environment as assignments bind names.
        own_nodes = self._own_statements(info.node)
        for stmt in own_nodes:
            for node in self._walk_within(stmt):
                if isinstance(node, ast.Call):
                    site = self._resolve_call_site(
                        mod, env, info, node, self_class
                    )
                    if site is not None:
                        info.calls.append(site)
            # Update env after scanning the statement (the RHS of an
            # assignment is evaluated with the pre-assignment env).
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    typeref = self._infer_expr(
                        mod, env, stmt.value, self_class
                    )
                    if typeref is not None:
                        env[target.id] = typeref
                    else:
                        env.pop(target.id, None)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                typeref = self._type_from_annotation(mod, stmt.annotation)
                if typeref is not None:
                    env[stmt.target.id] = typeref
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if isinstance(item.optional_vars, ast.Name):
                        typeref = self._infer_expr(
                            mod, env, item.context_expr, self_class
                        )
                        if typeref is not None:
                            env[item.optional_vars.id] = typeref

    @staticmethod
    def _own_statements(
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> List[ast.stmt]:
        """All statements of ``fn`` in source order, nested defs excluded."""
        result: List[ast.stmt] = []

        def visit(body: Sequence[ast.stmt]) -> None:
            for stmt in body:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                result.append(stmt)
                for child_body in _child_bodies(stmt):
                    visit(child_body)

        visit(fn.body)
        return result

    @staticmethod
    def _walk_within(stmt: ast.stmt) -> Iterator[ast.AST]:
        """Walk one statement's expressions, skipping nested statements."""
        stack: List[ast.AST] = []
        for child in ast.iter_child_nodes(stmt):
            if not isinstance(child, ast.stmt):
                stack.append(child)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _resolve_call_site(
        self,
        mod: ProjectModule,
        env: Dict[str, str],
        info: FunctionInfo,
        node: ast.Call,
        self_class: Optional[str],
    ) -> Optional[CallSite]:
        targets: List[str] = []
        external: List[str] = []
        primitive: Optional[str] = None
        func = node.func

        dotted = self._dotted_target(mod, func)
        if dotted is not None:
            if dotted in self.classes:
                init = self.lookup_method(dotted, "__init__")
                if init is not None:
                    targets.append(init.qual)
                primitive = _class_primitive(dotted)
            elif dotted in self.functions:
                targets.append(dotted)
            else:
                external.append(dotted)
        elif isinstance(func, ast.Name):
            local_fn = self._local_callable(mod, info, func.id)
            if local_fn is not None:
                targets.append(local_fn)
            else:
                local_cls = f"{mod.name}.{func.id}"
                if local_cls in self.classes:
                    init = self.lookup_method(local_cls, "__init__")
                    if init is not None:
                        targets.append(init.qual)
                    primitive = _class_primitive(local_cls)
        elif isinstance(func, ast.Attribute):
            receiver = self._infer_expr(mod, env, func.value, self_class)
            if receiver == "HANDLE" and func.attr in HANDLE_METHODS:
                primitive = f"file-handle .{func.attr}()"
            elif receiver == "PATH" and func.attr in PATH_BLOCKING_METHODS:
                primitive = f"pathlib.Path.{func.attr}"
            elif receiver is not None and receiver.startswith("C:"):
                class_qual = receiver[2:]
                method = self.lookup_method(class_qual, func.attr)
                if method is not None:
                    targets.append(method.qual)
                # Virtual dispatch: every override in the subclass tree.
                for sub in sorted(self.subclasses_of(class_qual)):
                    override = self.classes[sub].methods.get(func.attr)
                    if override is not None:
                        targets.append(override.qual)

        awaited = False  # filled by callers that track parents; see below
        if not targets and not external and primitive is None:
            return None
        return CallSite(
            node=node,
            targets=tuple(dict.fromkeys(targets)),
            external=tuple(external),
            primitive=primitive,
            awaited=awaited,
        )

    def _local_callable(
        self, mod: ProjectModule, info: FunctionInfo, name: str
    ) -> Optional[str]:
        """A bare-name callable: nested def, then module-level function."""
        nested = f"{info.qual}.<locals>.{name}"
        if nested in self.functions:
            return nested
        top = f"{mod.name}.{name}"
        if top in self.functions:
            return top
        return None

    # -- phase 4: blocking closure ---------------------------------------

    def _propagate_blocking(self) -> None:
        """Fixed point: which functions reach a blocking primitive.

        Async functions are *not* propagated through — awaiting an async
        function that blocks is that function's own finding (RL101 reports
        inside it), so each hazard is reported exactly once, at the point
        where blocking work enters async context.
        """
        # Seed: functions whose own body performs a primitive.
        for info in self.functions.values():
            for site in info.calls:
                desc = site.primitive or _external_primitive(site.external)
                if desc is not None:
                    info.blocking = (desc, (info.qual,))
                    break
        changed = True
        while changed:
            changed = False
            for info in self.functions.values():
                if info.blocking is not None:
                    continue
                for site in info.calls:
                    for target in site.targets:
                        callee = self.functions.get(target)
                        if (
                            callee is not None
                            and not callee.is_async
                            and callee.blocking is not None
                        ):
                            desc, chain = callee.blocking
                            info.blocking = (desc, (info.qual, *chain))
                            changed = True
                            break
                    if info.blocking is not None:
                        break

    # -- queries ----------------------------------------------------------

    def blocking_reason_for_site(
        self, site: CallSite
    ) -> Optional[Tuple[str, Tuple[str, ...]]]:
        """Why one call site blocks: (primitive description, chain)."""
        if site.primitive is not None:
            return site.primitive, ()
        desc = _external_primitive(site.external)
        if desc is not None:
            return desc, ()
        for target in site.targets:
            callee = self.functions.get(target)
            if (
                callee is not None
                and not callee.is_async
                and callee.blocking is not None
            ):
                return callee.blocking[0], callee.blocking[1]
        return None

    def async_functions(self) -> Iterator[FunctionInfo]:
        for info in self.functions.values():
            if info.is_async:
                yield info

    def call_index(self) -> Dict[str, List[Tuple[ProjectModule, ast.Call]]]:
        """Every call site in the project keyed by its dotted target.

        One walk over all module trees, built lazily and shared by every
        project rule that needs "who constructs/calls X anywhere".  Bare
        ``Name`` calls that resolve to nothing imported are keyed as
        ``<module>.<name>`` (same-module references).
        """
        if self._call_index is None:
            index: Dict[str, List[Tuple[ProjectModule, ast.Call]]] = {}
            for mod in self.modules.values():
                for node in ast.walk(mod.context.tree):
                    if not isinstance(node, ast.Call):
                        continue
                    dotted = mod.context.resolve_call(node.func)
                    if dotted is None and isinstance(node.func, ast.Name):
                        dotted = f"{mod.name}.{node.func.id}"
                    if dotted is not None:
                        index.setdefault(dotted, []).append((mod, node))
            self._call_index = index
        return self._call_index

    def name_references(self, module_name: str) -> Set[str]:
        """All identifiers a module references: Name loads + attribute names.

        Built lazily per run (one walk per module) for "does consumer X
        mention class Y at all" queries.
        """
        if self._module_refs is None:
            self._module_refs = {}
        refs = self._module_refs.get(module_name)
        if refs is None:
            refs = set()
            mod = self.modules.get(module_name)
            if mod is not None:
                for node in ast.walk(mod.context.tree):
                    if isinstance(node, ast.Name) and isinstance(
                        node.ctx, ast.Load
                    ):
                        refs.add(node.id)
                    elif isinstance(node, ast.Attribute):
                        refs.add(node.attr)
            self._module_refs[module_name] = refs
        return refs


def _child_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
    """The nested statement lists of a compound statement, in order."""
    bodies: List[List[ast.stmt]] = []
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            bodies.append(block)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies


# --------------------------------------------------------------------------
# Blocking primitives
# --------------------------------------------------------------------------

#: Dotted prefixes that block the calling thread wholesale.
_BLOCKING_PREFIXES: Tuple[str, ...] = (
    "subprocess.",
    "socket.",
    "shutil.",
    "urllib.request.",
    "http.client.",
    "multiprocessing.",
)

#: Exact dotted calls that block.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "open",
        "io.open",
        "input",
        "select.select",
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
    }
)

#: Project classes whose construction spins up real OS resources.
_SPINUP_CLASS_SUFFIXES: Tuple[str, ...] = (
    ".ProcessExecutor",
    ".BatchProcessExecutor",
)


def _external_primitive(external: Sequence[str]) -> Optional[str]:
    for dotted in external:
        if dotted in _BLOCKING_CALLS:
            return dotted
        for prefix in _BLOCKING_PREFIXES:
            if dotted.startswith(prefix):
                return dotted
    return None


def _class_primitive(class_qual: str) -> Optional[str]:
    for suffix in _SPINUP_CLASS_SUFFIXES:
        if class_qual.endswith(suffix):
            return f"{class_qual} pool spin-up"
    return None


def build_project(
    entries: Sequence[Tuple[str, str, ModuleContext]],
) -> Project:
    """Build the project view from ``(path, kind, context)`` triples."""
    modules = [
        ProjectModule(
            path=path,
            name=module_name_for_path(path),
            kind=kind,
            context=context,
        )
        for path, kind, context in entries
    ]
    return Project(modules)


__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "HANDLE_METHODS",
    "PATH_BLOCKING_METHODS",
    "Project",
    "ProjectModule",
    "build_project",
    "module_name_for_path",
]
