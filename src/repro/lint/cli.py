"""The ``python -m repro.lint`` command line.

Exit codes: 0 clean (or ``--report-only``), 1 violations or baseline
regression, 2 usage errors / unparseable files.  Formats: ``text`` (one
line per finding), ``json`` (machine-readable document, also the
baseline-file shape), ``github`` (workflow annotations — violations show
inline on PRs).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.lint.engine import LintReport, lint_paths
from repro.lint.rules import ALL_RULES, rule_codes


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "reprolint: static checks for the repo's domain invariants "
            "(determinism, strategy statelessness, sensing purity, "
            "picklability, seed plumbing)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="output format (github emits workflow annotations)",
    )
    parser.add_argument(
        "--select", action="append", metavar="RULE",
        help="run only these rule codes (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--ignore", action="append", metavar="RULE",
        help="skip these rule codes (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--report-only", action="store_true",
        help="always exit 0; used to record baselines over legacy trees",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help=(
            "ratchet mode: exit 1 only if the violation count exceeds the "
            "count recorded in FILE (a previous --format json output)"
        ),
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="append per-rule counts to text output",
    )
    return parser


def _split_codes(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    codes: List[str] = []
    for value in values:
        codes.extend(part.strip().upper() for part in value.split(",") if part.strip())
    return codes


def _explain() -> str:
    lines = ["reprolint rule catalogue (see docs/STATIC_ANALYSIS.md):", ""]
    for rule in ALL_RULES:
        lines.append(f"{rule.code}  {rule.summary}")
        lines.append(f"       protects: {rule.rationale}")
    return "\n".join(lines)


def _render_text(report: LintReport, statistics: bool) -> str:
    lines = [violation.render() for violation in report.violations]
    lines.extend(f"error: {message}" for message in report.parse_errors)
    summary = (
        f"{len(report.violations)} violation(s) in "
        f"{report.files_scanned} file(s)"
    )
    if report.suppressed:
        summary += f" ({report.suppressed} suppressed by pragmas)"
    lines.append(summary)
    if statistics:
        lines.append(f"  elapsed: {report.elapsed_s:.3f}s")
        lines.extend(
            f"  {code}: {count}" for code, count in report.counts_by_rule.items()
        )
    return "\n".join(lines)


def _render_github(report: LintReport) -> str:
    lines = []
    for violation in report.violations:
        message = violation.message.replace("\n", " ")
        lines.append(
            f"::error file={violation.path},line={violation.line},"
            f"col={violation.col},title={violation.code}::{message}"
        )
    for error in report.parse_errors:
        lines.append(f"::error title=reprolint::{error}")
    lines.append(
        f"reprolint: {len(report.violations)} violation(s) in "
        f"{report.files_scanned} file(s)"
    )
    return "\n".join(lines)


def _baseline_count(path: str) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    count = document.get("violation_count")
    if not isinstance(count, int):
        raise ValueError(f"{path} has no integer 'violation_count'")
    return count


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _parser()
    options = parser.parse_args(argv)
    if options.explain:
        print(_explain())
        return 0

    select = _split_codes(options.select)
    ignore = _split_codes(options.ignore)
    known = rule_codes()
    for codes, flag in ((select, "--select"), (ignore, "--ignore")):
        for code in codes or ():
            if code not in known:
                parser.error(f"{flag}: unknown rule code {code!r}")

    report = lint_paths(options.paths, select=select, ignore=ignore)

    if options.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    elif options.format == "github":
        print(_render_github(report))
    else:
        print(_render_text(report, options.statistics))

    if report.parse_errors:
        return 2
    if options.report_only:
        return 0
    if options.baseline:
        try:
            allowed = _baseline_count(options.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"error: cannot read baseline: {error}", file=sys.stderr)
            return 2
        if len(report.violations) > allowed:
            print(
                f"reprolint: ratchet broken — {len(report.violations)} "
                f"violation(s) exceeds the recorded baseline of {allowed}",
                file=sys.stderr,
            )
            return 1
        return 0
    return 0 if not report.violations else 1


__all__ = ["main"]
