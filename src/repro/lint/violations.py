"""The unit of lint output: one rule violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: ``path:line:col: CODE message``.

    Ordered by location so reports are stable regardless of the order in
    which rules ran; ``line``/``col`` are 1-based (matching compilers and
    the GitHub annotation format).
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The human-readable one-liner used by the text format."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-ready mapping (the ``--format json`` item shape)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
