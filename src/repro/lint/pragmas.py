"""Suppression pragmas: ``# reprolint: disable=RL001``.

Three scopes, mirroring the suppression policy in
``docs/STATIC_ANALYSIS.md``:

* ``# reprolint: disable=RL001,RL002`` — trailing comment: suppress the
  listed rules on *that line* (the line the violation is reported on,
  which for a multi-line statement is where it starts).
* ``# reprolint: disable-next=RL001`` — on its own line: suppress on the
  following line (for lines too long to carry a trailing comment).
* ``# reprolint: disable-file=RL001`` — anywhere at column 0: suppress
  the listed rules for the whole file (reserved for modules whose *job*
  is the exempted behaviour, e.g. wall-clock observability).

``disable=all`` is accepted in every scope.  Pragmas are parsed from the
token stream, not regexes over raw lines, so string literals containing
the pragma text are never misread as suppressions.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(?P<scope>disable(?:-next|-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+)"
)

#: The wildcard accepted in place of a rule list.
ALL = "all"


def _parse_rules(raw: str) -> FrozenSet[str]:
    return frozenset(
        part.strip().upper() if part.strip() != ALL else ALL
        for part in raw.split(",")
        if part.strip()
    )


@dataclass
class PragmaIndex:
    """Per-file suppression table, queried once per candidate violation."""

    line_rules: Dict[int, Set[str]] = field(default_factory=dict)
    file_rules: Set[str] = field(default_factory=set)

    def is_suppressed(self, line: int, code: str) -> bool:
        """True iff ``code`` is disabled on ``line`` (or file-wide)."""
        if ALL in self.file_rules or code in self.file_rules:
            return True
        rules = self.line_rules.get(line)
        if rules is None:
            return False
        return ALL in rules or code in rules


def parse_pragmas(source: str) -> PragmaIndex:
    """Build the suppression index for one module's source text.

    Tolerates source that fails to tokenize (the engine reports a parse
    error separately); in that case nothing is suppressed.
    """
    index = PragmaIndex()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return index
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(token.string)
        if match is None:
            continue
        rules = _parse_rules(match.group("rules"))
        scope = match.group("scope")
        line = token.start[0]
        if scope == "disable-file":
            index.file_rules |= rules
        elif scope == "disable-next":
            index.line_rules.setdefault(line + 1, set()).update(rules)
        else:
            index.line_rules.setdefault(line, set()).update(rules)
    return index
