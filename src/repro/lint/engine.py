"""The lint engine: walk files, parse once, run rules, apply pragmas.

Two tiers run per invocation.  Per-module rules (:class:`Rule`) see one
:class:`ModuleContext` at a time, exactly as in PR 4.  Project rules
(:class:`ProjectRule`) run after every file has parsed, against one
shared :class:`repro.lint.graph.Project` — the import/call-graph view —
so invariants that span files (event-loop blocking, event-contract
coverage) are checked once per run, not once per file.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.lint.context import ModuleContext
from repro.lint.graph import build_project
from repro.lint.rules import ALL_RULES
from repro.lint.rules.base import ProjectRule, Rule
from repro.lint.violations import Violation

#: Directory names never descended into.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", "related"})


def classify_path(path: str) -> str:
    """Which tree a file belongs to: ``src``, ``tests``, ``benchmarks``
    or ``scripts``.

    Rules scope themselves by this (e.g. RL005 polices the library API
    only).  CI helper scripts under ``.github`` get their own kind so
    async-hazard rules can cover them without the src-only rules firing
    on glue code.  Anything else that is not a test or benchmark tree
    counts as ``src`` — the strict default.
    """
    parts = os.path.normpath(path).split(os.sep)
    if ".github" in parts:
        return "scripts"
    if "tests" in parts:
        return "tests"
    if "benchmarks" in parts:
        return "benchmarks"
    return "src"


@dataclass
class LintReport:
    """Everything one lint run produced, for any output format."""

    violations: List[Violation] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: List[str] = field(default_factory=list)
    suppressed: int = 0
    #: Wall-clock seconds for the whole run (drives the CI time gate).
    elapsed_s: float = 0.0

    @property
    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def clean(self) -> bool:
        return not self.violations and not self.parse_errors

    def as_dict(self) -> Dict[str, Any]:
        """The ``--format json`` document (and the baseline-file shape)."""
        return {
            "files_scanned": self.files_scanned,
            "violation_count": len(self.violations),
            "suppressed": self.suppressed,
            "elapsed_s": round(self.elapsed_s, 3),
            "counts_by_rule": self.counts_by_rule,
            "parse_errors": list(self.parse_errors),
            "violations": [v.as_dict() for v in self.violations],
        }


def _select_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> List[Rule]:
    chosen = list(ALL_RULES)
    if select:
        wanted = {code.upper() for code in select}
        chosen = [rule for rule in chosen if rule.code in wanted]
    if ignore:
        dropped = {code.upper() for code in ignore}
        chosen = [rule for rule in chosen if rule.code not in dropped]
    return chosen


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    kind: Optional[str] = None,
) -> LintReport:
    """Lint one in-memory module (the unit the fixture tests drive).

    Project rules run too, over a single-module project — enough for
    fixtures whose hazard is self-contained (most are).
    """
    return lint_sources({path: source}, select=select, ignore=ignore, kind=kind)


def lint_sources(
    files: Mapping[str, str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    kind: Optional[str] = None,
) -> LintReport:
    """Lint a virtual tree of ``{path: source}`` modules.

    The multi-module counterpart of :func:`lint_source`: fixture tests
    use it to exercise cross-module resolution (imports, dispatch,
    registry/emit splits) without touching disk.
    """
    started = time.perf_counter()
    rules = _select_rules(select, ignore)
    report = LintReport()
    entries: List[Tuple[str, str, ModuleContext]] = []
    for path, source in files.items():
        context = _lint_one(report, path, source, rules, kind)
        if context is not None:
            file_kind = kind if kind is not None else classify_path(path)
            entries.append((path, file_kind, context))
    _run_project_rules(report, rules, entries)
    report.violations.sort()
    report.elapsed_s = time.perf_counter() - started
    return report


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint files and directory trees; the ``python -m repro.lint`` core."""
    started = time.perf_counter()
    rules = _select_rules(select, ignore)
    report = LintReport()
    entries: List[Tuple[str, str, ModuleContext]] = []
    for filename in _walk(paths):
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            report.parse_errors.append(f"{filename}: unreadable: {error}")
            continue
        context = _lint_one(report, filename, source, rules, None)
        if context is not None:
            entries.append((filename, classify_path(filename), context))
    _run_project_rules(report, rules, entries)
    report.violations.sort()
    report.elapsed_s = time.perf_counter() - started
    return report


def _lint_one(
    report: LintReport,
    path: str,
    source: str,
    rules: Sequence[Rule],
    kind: Optional[str],
) -> Optional[ModuleContext]:
    report.files_scanned += 1
    try:
        context = ModuleContext.parse(path, source)
    except SyntaxError as error:
        report.parse_errors.append(
            f"{path}:{error.lineno or 0}: syntax error: {error.msg}"
        )
        return None
    tree_kind = kind if kind is not None else classify_path(path)
    for rule in rules:
        if isinstance(rule, ProjectRule):
            continue
        if tree_kind not in rule.scopes:
            continue
        for violation in rule.check(context):
            if context.pragmas.is_suppressed(violation.line, violation.code):
                report.suppressed += 1
            else:
                report.violations.append(violation)
    return context


def _run_project_rules(
    report: LintReport,
    rules: Sequence[Rule],
    entries: Sequence[Tuple[str, str, ModuleContext]],
) -> None:
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    if not project_rules or not entries:
        return
    project = build_project(entries)
    contexts = {path: context for path, _, context in entries}
    for rule in project_rules:
        for violation in rule.check_project(project):
            context = contexts.get(violation.path)
            if context is not None and context.pragmas.is_suppressed(
                violation.line, violation.code
            ):
                report.suppressed += 1
            else:
                report.violations.append(violation)


def _walk(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in _SKIPPED_DIRS
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


__all__ = [
    "LintReport",
    "classify_path",
    "lint_paths",
    "lint_source",
    "lint_sources",
]
