"""The lint engine: walk files, parse once, run rules, apply pragmas."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.lint.context import ModuleContext
from repro.lint.rules import ALL_RULES
from repro.lint.rules.base import Rule
from repro.lint.violations import Violation

#: Directory names never descended into.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", "related"})


def classify_path(path: str) -> str:
    """Which tree a file belongs to: ``src``, ``tests`` or ``benchmarks``.

    Rules scope themselves by this (e.g. RL005 polices the library API
    only).  Anything that is not a test or benchmark tree counts as
    ``src`` — the strict default.
    """
    parts = os.path.normpath(path).split(os.sep)
    if "tests" in parts:
        return "tests"
    if "benchmarks" in parts:
        return "benchmarks"
    return "src"


@dataclass
class LintReport:
    """Everything one lint run produced, for any output format."""

    violations: List[Violation] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: List[str] = field(default_factory=list)
    suppressed: int = 0

    @property
    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def clean(self) -> bool:
        return not self.violations and not self.parse_errors

    def as_dict(self) -> Dict[str, Any]:
        """The ``--format json`` document (and the baseline-file shape)."""
        return {
            "files_scanned": self.files_scanned,
            "violation_count": len(self.violations),
            "suppressed": self.suppressed,
            "counts_by_rule": self.counts_by_rule,
            "parse_errors": list(self.parse_errors),
            "violations": [v.as_dict() for v in self.violations],
        }


def _select_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> List[Rule]:
    chosen = list(ALL_RULES)
    if select:
        wanted = {code.upper() for code in select}
        chosen = [rule for rule in chosen if rule.code in wanted]
    if ignore:
        dropped = {code.upper() for code in ignore}
        chosen = [rule for rule in chosen if rule.code not in dropped]
    return chosen


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    kind: Optional[str] = None,
) -> LintReport:
    """Lint one in-memory module (the unit the fixture tests drive)."""
    report = LintReport()
    _lint_one(report, path, source, _select_rules(select, ignore), kind)
    report.violations.sort()
    return report


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint files and directory trees; the ``python -m repro.lint`` core."""
    rules = _select_rules(select, ignore)
    report = LintReport()
    for filename in _walk(paths):
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            report.parse_errors.append(f"{filename}: unreadable: {error}")
            continue
        _lint_one(report, filename, source, rules, None)
    report.violations.sort()
    return report


def _lint_one(
    report: LintReport,
    path: str,
    source: str,
    rules: Sequence[Rule],
    kind: Optional[str],
) -> None:
    report.files_scanned += 1
    try:
        context = ModuleContext.parse(path, source)
    except SyntaxError as error:
        report.parse_errors.append(
            f"{path}:{error.lineno or 0}: syntax error: {error.msg}"
        )
        return
    tree_kind = kind if kind is not None else classify_path(path)
    for rule in rules:
        if tree_kind not in rule.scopes:
            continue
        for violation in rule.check(context):
            if context.pragmas.is_suppressed(violation.line, violation.code):
                report.suppressed += 1
            else:
                report.violations.append(violation)


def _walk(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in _SKIPPED_DIRS
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


__all__ = ["LintReport", "classify_path", "lint_paths", "lint_source"]
