"""Per-module analysis context shared by every rule.

One parse per file: the engine builds a :class:`ModuleContext` and hands
it to each rule, so rules stay cheap (pure AST walks) and consistent
(every rule sees the same import table and class graph).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.pragmas import PragmaIndex, parse_pragmas


def _build_import_table(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted path they were imported as.

    ``import random`` -> ``{"random": "random"}``;
    ``import datetime as dt`` -> ``{"dt": "datetime"}``;
    ``from time import time`` -> ``{"time": "time.time"}``;
    ``from os import urandom as entropy`` -> ``{"entropy": "os.urandom"}``.

    Only module-level and function-level imports are recorded — enough to
    resolve the ambient-state modules the rules care about.  Relative
    imports resolve to their stated module path (leading dots dropped),
    which is never one of the watched stdlib modules, so they are inert.
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.Module
    imports: Dict[str, str]
    pragmas: PragmaIndex
    #: Class name -> direct base names (as written), for same-module MRO walks.
    class_bases: Dict[str, List[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        context = cls(
            path=path,
            source=source,
            tree=tree,
            imports=_build_import_table(tree),
            pragmas=parse_pragmas(source),
        )
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                context.class_bases[node.name] = [
                    base_name
                    for base in node.bases
                    if (base_name := _base_name(base)) is not None
                ]
        return context

    def resolve_call(self, node: ast.AST) -> Optional[str]:
        """The dotted path a name/attribute chain refers to, if importable.

        ``dt.datetime.now`` with ``import datetime as dt`` resolves to
        ``datetime.datetime.now``; a chain rooted in a local variable
        (``rng.random``) resolves to ``None`` — locals are exactly what
        the rules must *not* treat as ambient modules.
        """
        parts: List[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        root = self.imports.get(cursor.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def transitive_bases(self, class_name: str) -> Set[str]:
        """All base names reachable from ``class_name`` within this module.

        Cross-module inheritance falls back to the textual base name
        itself, which is what the suffix heuristics in the rules match
        against.
        """
        seen: Set[str] = set()
        stack = list(self.class_bases.get(class_name, ()))
        while stack:
            base = stack.pop()
            if base in seen:
                continue
            seen.add(base)
            stack.extend(self.class_bases.get(base, ()))
        return seen

    def iter_classes(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node


def _base_name(base: ast.expr) -> Optional[str]:
    """The rightmost identifier of a base expression (``a.B`` -> ``B``)."""
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    if isinstance(base, ast.Subscript):  # Generic[...] bases
        return _base_name(base.value)
    return None


def iter_methods(cls: ast.ClassDef, names: Set[str]) -> Iterator[ast.FunctionDef]:
    """The directly-defined methods of ``cls`` whose names are in ``names``."""
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name in names:
            yield node


def attribute_root(node: ast.expr) -> Optional[ast.Name]:
    """The ``Name`` at the bottom of an attribute/subscript chain, if any."""
    cursor = node
    while isinstance(cursor, (ast.Attribute, ast.Subscript)):
        cursor = cursor.value
    return cursor if isinstance(cursor, ast.Name) else None


#: Method names that, when called on an object, mutate it in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "setdefault",
        "appendleft",
        "extendleft",
        "popleft",
    }
)
