"""RL301/302/303: the event registry, emit sites, and consumers agree.

``repro.obs.events`` is a *contract*: every registered ``kind`` is a
promise that (a) some producer emits it and (b) the offline consumers —
the certificate checker, the trace summarizer, the overhead accounting —
know what it means.  The contract has no runtime enforcement: a new
event lands, certify never learns about it, and certificates silently
stop covering part of the trace.  These rules make the drift a lint
failure instead.

* **RL301 — registered but never emitted**: an event class carrying a
  ``@register`` decorator that no ``src``/``scripts`` module ever
  constructs.  Dead vocabulary — either wire up a producer or remove
  the registration (tests-only construction does not count: a kind only
  tests emit is not part of any real trace).
* **RL302 — registered but never consumed**: an event class that none
  of the consumer modules (``certify``, ``analyze``, ``overhead``)
  references.  The certificate checker would skip it silently; handle
  it or exempt the class with a pragma stating why.
* **RL303 — payload mismatch at a construction site**: keyword that is
  not a declared field, more positional arguments than fields, or a
  required (default-less) field left unfilled.  At runtime this is a
  ``TypeError`` at emit time — i.e. mid-serve; statically it is free.

Registry discovery is structural (``@register``-decorated class with a
``kind`` string attribute), so the rules follow the registry wherever
it moves and fixture tests can build miniature ones.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.graph import ClassInfo, Project, ProjectModule
from repro.lint.rules.base import ProjectRule
from repro.lint.violations import Violation

#: Module basenames treated as trace consumers for RL302.
CONSUMER_BASENAMES = frozenset({"certify", "analyze", "overhead"})


@dataclass
class _EventClass:
    info: ClassInfo
    kind: str
    #: (field name, required) in declaration order, base fields first.
    payload: List[Tuple[str, bool]]


def _collect_registry(project: Project) -> List[_EventClass]:
    cached = project.analysis_cache.get("event-registry")
    if isinstance(cached, list):
        return cached
    found: List[_EventClass] = []
    for cls in project.classes.values():
        if not _has_register_decorator(cls.node):
            continue
        kind = _kind_literal(cls.node)
        if kind is None:
            continue
        found.append(
            _EventClass(info=cls, kind=kind, payload=_payload_fields(project, cls))
        )
    found.sort(key=lambda e: (e.info.module.path, e.info.node.lineno))
    project.analysis_cache["event-registry"] = found
    return found


def _has_register_decorator(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "register":
            return True
        if isinstance(decorator, ast.Attribute) and decorator.attr == "register":
            return True
    return False


def _kind_literal(node: ast.ClassDef) -> Optional[str]:
    for item in node.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(item, ast.AnnAssign):
            target, value = item.target, item.value
        elif isinstance(item, ast.Assign) and len(item.targets) == 1:
            target, value = item.targets[0], item.value
        if (
            isinstance(target, ast.Name)
            and target.id == "kind"
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            return value.value
    return None


def _payload_fields(project: Project, cls: ClassInfo) -> List[Tuple[str, bool]]:
    """Dataclass __init__ fields in order: base-class fields first."""
    chain: List[ClassInfo] = []
    cursor: Optional[ClassInfo] = cls
    seen: Set[str] = set()
    while cursor is not None and cursor.qual not in seen:
        seen.add(cursor.qual)
        chain.append(cursor)
        parent: Optional[ClassInfo] = None
        for ref in cursor.base_refs:
            candidate = project.classes.get(ref)
            if candidate is not None:
                parent = candidate
                break
        cursor = parent
    result: List[Tuple[str, bool]] = []
    for info in reversed(chain):
        for item in info.node.body:
            if not isinstance(item, ast.AnnAssign):
                continue
            if not isinstance(item.target, ast.Name):
                continue
            if _is_classvar(item.annotation):
                continue
            result.append((item.target.id, item.value is None))
    return result


def _is_classvar(annotation: ast.expr) -> bool:
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id == "ClassVar":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "ClassVar":
            return True
    return False


def _construction_sites(
    project: Project, event: _EventClass
) -> Iterator[Tuple[ProjectModule, ast.Call]]:
    """Every ``EventClass(...)`` call in the project, any tree kind.

    Backed by the project's shared one-pass call index: bare same-module
    constructions land under the ``<module>.<name>`` key, which is
    exactly the event class qual.
    """
    yield from project.call_index().get(event.info.qual, [])


class EventContractRule(ProjectRule):
    code = "RL301"
    scopes = frozenset({"src"})
    summary = "every registered event kind is emitted by real code"
    rationale = (
        "A registered-but-never-emitted kind is dead vocabulary: the "
        "certificate format promises evidence no run can contain."
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        for event in _collect_registry(project):
            emitted = any(
                mod.kind in ("src", "scripts")
                for mod, _call in _construction_sites(project, event)
            )
            if not emitted:
                yield self.project_violation(
                    event.info.module.path,
                    event.info.node.lineno,
                    event.info.node.col_offset,
                    f"event kind `{event.kind}` ({event.info.node.name}) is "
                    "registered but no src/scripts module ever constructs "
                    "it: dead vocabulary — wire up a producer or drop the "
                    "registration",
                )


class EventConsumerRule(ProjectRule):
    code = "RL302"
    scopes = frozenset({"src"})
    summary = "every registered event kind is handled by the consumers"
    rationale = (
        "certify/analyze/overhead are the contract's readers; a kind "
        "none of them references is silently invisible to certificates "
        "and summaries."
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        consumers = [
            mod
            for mod in project.modules.values()
            if mod.name.rsplit(".", 1)[-1] in CONSUMER_BASENAMES
        ]
        if not consumers:
            return
        for event in _collect_registry(project):
            name = event.info.node.name
            if not any(
                name in project.name_references(mod.name) for mod in consumers
            ):
                yield self.project_violation(
                    event.info.module.path,
                    event.info.node.lineno,
                    event.info.node.col_offset,
                    f"event kind `{event.kind}` ({name}) is registered but "
                    "no consumer (certify/analyze/overhead) references it: "
                    "certificates and summaries will silently skip it — "
                    "handle it or exempt the class with a pragma",
                )


class EventPayloadRule(ProjectRule):
    code = "RL303"
    scopes = frozenset({"src", "scripts", "tests", "benchmarks"})
    summary = "event construction sites match the declared payload fields"
    rationale = (
        "A misnamed payload field is a TypeError at emit time — i.e. "
        "mid-serve, in whichever code path finally exercises it."
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        for event in _collect_registry(project):
            field_names = [name for name, _required in event.payload]
            required = {
                name for name, is_required in event.payload if is_required
            }
            declared = set(field_names)
            for mod, call in _construction_sites(project, event):
                if any(isinstance(arg, ast.Starred) for arg in call.args):
                    continue
                if any(keyword.arg is None for keyword in call.keywords):
                    continue  # **payload: dynamic, checked at runtime
                site: Dict[str, bool] = {}
                ok = True
                if len(call.args) > len(field_names):
                    yield self.project_violation(
                        mod.path,
                        call.lineno,
                        call.col_offset,
                        f"`{event.info.node.name}` takes "
                        f"{len(field_names)} field(s) but "
                        f"{len(call.args)} positional argument(s) are "
                        "given",
                    )
                    ok = False
                else:
                    for index in range(len(call.args)):
                        site[field_names[index]] = True
                for keyword in call.keywords:
                    assert keyword.arg is not None
                    if keyword.arg not in declared:
                        yield self.project_violation(
                            mod.path,
                            keyword.value.lineno,
                            keyword.value.col_offset,
                            f"`{keyword.arg}` is not a field of "
                            f"`{event.info.node.name}` (fields: "
                            f"{', '.join(field_names)})",
                        )
                        ok = False
                    else:
                        site[keyword.arg] = True
                if ok:
                    missing = sorted(required - set(site))
                    if missing:
                        yield self.project_violation(
                            mod.path,
                            call.lineno,
                            call.col_offset,
                            f"`{event.info.node.name}` construction misses "
                            f"required field(s): {', '.join(missing)}",
                        )
