"""RL001: no ambient nondeterminism in simulation code.

Everything the engine computes must be a function of ``(strategies,
seed)`` — that is what makes a sweep cell shared-nothing, a fault trace
replayable, and a Theorem-1 run a *certificate* rather than an anecdote.
Four ways code breaks that, all flagged here:

* calling module-level ``random`` functions (or ``secrets``, wall
  clocks, ``os.urandom``, v1/v4 UUIDs) — the process-global streams;
* constructing ``random.Random()`` with no seed — OS entropy in
  disguise;
* constructing ``random.Random(<fixed expr>)`` inside a function that
  receives a threaded ``rng`` — a stream frozen across trials while the
  caller believes it is threading fresh randomness (derive the seed from
  ``rng`` instead, e.g. ``random.Random(rng.getrandbits(64))``);
* iterating a ``set``/``frozenset`` — element order depends on
  ``PYTHONHASHSEED`` for strings, so results differ across worker
  processes (iterate ``sorted(...)`` or a list/dict instead).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.context import ModuleContext
from repro.lint.rules._ambient import iter_ambient_calls
from repro.lint.rules.base import Rule
from repro.lint.violations import Violation

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _param_names(fn: ast.AST) -> Set[str]:
    args = fn.args  # type: ignore[attr-defined]
    names = {a.arg for a in args.args + args.kwonlyargs + args.posonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _is_rng_name(name: str) -> bool:
    return name == "rng" or name.endswith("_rng")


class AmbientNondeterminismRule(Rule):
    code = "RL001"
    summary = "no ambient nondeterminism: randomness flows through the threaded rng"
    rationale = (
        "Reproducibility of every execution and sweep cell (the determinism "
        "contract behind Theorem 1's empirical certificates)."
    )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node, target, reason in iter_ambient_calls(context, context.tree):
            yield self.violation(
                context, node.lineno, node.col_offset, f"call to `{target}` {reason}"
            )
        yield from self._check_rng_construction(context)
        yield from self._check_set_iteration(context)

    # -- random.Random construction -------------------------------------

    def _check_rng_construction(self, context: ModuleContext) -> Iterator[Violation]:
        yield from self._walk_scope(context, context.tree, [])

    def _walk_scope(
        self, context: ModuleContext, root: ast.AST, param_stack: List[Set[str]]
    ) -> Iterator[Violation]:
        for node in ast.iter_child_nodes(root):
            if isinstance(node, _FUNCTION_NODES):
                yield from self._walk_scope(
                    context, node, param_stack + [_param_names(node)]
                )
                continue
            if isinstance(node, ast.Call):
                target = context.resolve_call(node.func)
                if target == "random.Random":
                    yield from self._judge_random_call(context, node, param_stack)
            yield from self._walk_scope(context, node, param_stack)

    def _judge_random_call(
        self, context: ModuleContext, node: ast.Call, param_stack: List[Set[str]]
    ) -> Iterator[Violation]:
        if not node.args and not node.keywords:
            yield self.violation(
                context,
                node.lineno,
                node.col_offset,
                "`random.Random()` with no seed draws OS entropy; pass an "
                "explicit seed (derive it from the threaded rng if one is "
                "in scope)",
            )
            return
        rng_params = {
            name
            for params in param_stack
            for name in params
            if _is_rng_name(name)
        }
        if not rng_params:
            return
        referenced = {
            sub.id for arg in node.args for sub in ast.walk(arg)
            if isinstance(sub, ast.Name)
        } | {
            sub.id
            for kw in node.keywords
            for sub in ast.walk(kw.value)
            if isinstance(sub, ast.Name)
        }
        # `self`/`cls` never carry the threaded randomness — a seed read
        # off `self` is exactly the frozen-stream shape this check exists
        # to catch.
        all_params = {
            name for params in param_stack for name in params
        } - {"self", "cls"}
        if not (referenced & all_params):
            yield self.violation(
                context,
                node.lineno,
                node.col_offset,
                "fixed-seed `random.Random(...)` ignores the threaded "
                f"`{sorted(rng_params)[0]}`: the stream repeats identically "
                "across trials; derive the seed from it, e.g. "
                "`random.Random(rng.getrandbits(64))`",
            )

    # -- set iteration ----------------------------------------------------

    def _check_set_iteration(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expression(context, it):
                    yield self.violation(
                        context,
                        it.lineno,
                        it.col_offset,
                        "iteration over a set is PYTHONHASHSEED-ordered for "
                        "str elements; iterate `sorted(...)` (or a list/dict) "
                        "for a reproducible order",
                    )

    @staticmethod
    def _is_set_expression(context: ModuleContext, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset") and node.func.id not in context.imports:
                return True
        return False
