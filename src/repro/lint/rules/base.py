"""The rule interface: one code, one invariant, one AST pass."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.context import ModuleContext
from repro.lint.violations import Violation


class Rule:
    """A single lint rule.

    Subclasses set the class attributes and implement :meth:`check` as a
    generator of :class:`Violation` objects.  Rules must not mutate the
    context; the engine reuses one :class:`ModuleContext` per file across
    all rules.
    """

    #: Stable identifier used in output, pragmas, and ``--select``.
    code: str = "RL000"
    #: One-line summary shown by ``--explain`` and the docs generator.
    summary: str = ""
    #: Which paper-level property the rule protects (docs cross-link).
    rationale: str = ""
    #: Tree kinds the rule applies to; engine classifies each file as
    #: "src", "tests", or "benchmarks" by its path components.
    scopes: "frozenset[str]" = frozenset({"src", "tests", "benchmarks"})

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, context: ModuleContext, line: int, col: int, message: str
    ) -> Violation:
        """Build a violation for this rule at a location in ``context``."""
        return Violation(
            path=context.path, line=line, col=col + 1, code=self.code, message=message
        )


class ProjectRule(Rule):
    """A rule that needs the whole-program view, not one module.

    The engine parses every file first, builds one
    :class:`repro.lint.graph.Project` per run, and calls
    :meth:`check_project` once.  Pragma suppression still applies —
    the engine routes each violation back through its module's pragma
    index — and ``scopes`` is advisory: project rules see all modules
    and decide per-module relevance themselves (a call graph crossing
    src and tests is the point).
    """

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        return iter(())

    def check_project(self, project: "Project") -> Iterator[Violation]:
        raise NotImplementedError

    def project_violation(
        self, path: str, line: int, col: int, message: str
    ) -> Violation:
        """Build a violation at an arbitrary module location."""
        return Violation(
            path=path, line=line, col=col + 1, code=self.code, message=message
        )


if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.lint.graph import Project
