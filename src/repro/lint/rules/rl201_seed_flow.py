"""RL201: a seed/rng parameter that never reaches a sink is dropped entropy.

RL005 checks the *signature* — randomness-consuming public callables
must accept ``rng``/``seed``.  This rule checks the *flow*: a parameter
that is accepted and then never threaded anywhere is worse than a
missing one, because every caller believes the seed matters while the
function ignores it — sweeps silently stop being functions of their
seed column.

The analysis is interprocedural over the project call graph: a seedish
parameter is **sunk** if it is read in any terminal position (stored,
returned, used in an expression, passed to an external/stdlib call such
as ``random.Random``) or passed as an argument to a project function
whose corresponding parameter is itself sunk (computed to a fixed
point, so ``run -> _dispatch -> derive_party_seeds`` chains resolve).
A parameter that is never sunk is flagged at its definition.

Exempt:

* methods named after Protocol interface methods (``step``, ``observe``,
  …) and methods that override a base-class method — a deterministic
  strategy legitimately ignores the ``rng`` its interface obliges it to
  accept, and an override's signature belongs to the base's contract;
* parameters whose name starts with ``_`` (the author already declared
  the drop deliberate);
* trivial bodies (``...``/``pass``/docstring/``raise``): protocol and
  overload declarations, not implementations.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.graph import FunctionInfo, Project
from repro.lint.rules.base import ProjectRule
from repro.lint.violations import Violation


def _is_seedish(name: str) -> bool:
    return (
        name in ("rng", "seed", "seeds")
        or name.endswith("_rng")
        or name.endswith("_seed")
        or name.endswith("seeds")
    )


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> List[str]:
    args = fn.args
    return [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]


def _trivial_body(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    body = fn.body
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        body = body[1:]
    return all(
        isinstance(stmt, (ast.Pass, ast.Raise))
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in body
    ) or not body


#: (function qual, parameter name) — the liveness lattice's elements.
_ParamKey = Tuple[str, str]


class SeedFlowRule(ProjectRule):
    code = "RL201"
    scopes = frozenset({"src"})
    summary = "accepted seed/rng parameters must flow into a sink"
    rationale = (
        "Experiments quantify over seeds; a parameter that is accepted "
        "and dropped makes every caller's seed a no-op while the "
        "signature promises determinism control."
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        protocol_methods = _protocol_method_names(project)
        live: Set[_ParamKey] = set()
        #: (F, p) -> set of (G, q) it transfers to via bare-arg calls.
        transfers: Dict[_ParamKey, Set[_ParamKey]] = {}
        candidates: List[Tuple[FunctionInfo, str, ast.arg]] = []

        for fn in project.functions.values():
            for arg_node in _all_args(fn.node):
                param = arg_node.arg
                if not _is_seedish(param):
                    continue
                key = (fn.qual, param)
                terminal, edges = _classify_uses(project, fn, param)
                if terminal:
                    live.add(key)
                transfers[key] = edges
                if (
                    fn.module.kind in self.scopes
                    and not param.startswith("_")
                    and fn.name not in protocol_methods
                    and not _trivial_body(fn.node)
                    and "<locals>" not in fn.qual
                    and not _overrides_base_method(project, fn)
                ):
                    candidates.append((fn, param, arg_node))

        # Protocol-obliged params count as sinks for their callers: the
        # engine passing rng into step() has done its plumbing job even
        # when one deterministic implementation ignores it.
        for fn in project.functions.values():
            if fn.name in protocol_methods:
                for param in _param_names(fn.node):
                    if _is_seedish(param):
                        live.add((fn.qual, param))

        changed = True
        while changed:
            changed = False
            for key, edges in transfers.items():
                if key in live:
                    continue
                if any(edge in live or edge not in transfers for edge in edges):
                    # Unknown callee params (external or non-seedish) are
                    # assumed live: conservative, no false flags.
                    live.add(key)
                    changed = True

        for fn, param, arg_node in candidates:
            if (fn.qual, param) in live:
                continue
            yield self.project_violation(
                fn.module.path,
                arg_node.lineno,
                arg_node.col_offset,
                f"`{fn.name}` accepts `{param}` but never threads it into "
                "a randomness sink or child call: callers' seeds are "
                "silently dropped — use it or remove it from the signature",
            )


def _all_args(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> List[ast.arg]:
    args = fn.args
    return [*args.posonlyargs, *args.args, *args.kwonlyargs]


def _overrides_base_method(project: Project, fn: FunctionInfo) -> bool:
    """Whether ``fn`` reimplements a method some project base declares.

    An override's parameter list is the base's contract, not the
    implementation's choice — ignoring an obliged ``rng`` there is the
    deterministic-implementation case, not dropped entropy.
    """
    if fn.class_qual is None:
        return False
    cls = project.classes.get(fn.class_qual)
    if cls is None:
        return False
    stack = list(cls.base_refs)
    seen: Set[str] = set()
    while stack:
        ref = stack.pop()
        if ref in seen:
            continue
        seen.add(ref)
        base = project.classes.get(ref)
        if base is None:
            continue
        if fn.name in base.methods:
            return True
        stack.extend(base.base_refs)
    return False


def _protocol_method_names(project: Project) -> Set[str]:
    names: Set[str] = set()
    for cls in project.classes.values():
        if any(
            ref == "typing.Protocol" or ref.endswith(".Protocol") or ref == "Protocol"
            for ref in cls.base_refs
        ):
            names.update(cls.methods.keys())
    return names


def _classify_uses(
    project: Project, fn: FunctionInfo, param: str
) -> Tuple[bool, Set[_ParamKey]]:
    """How ``fn`` uses ``param``: (has terminal use, transfer edges).

    A *transfer* is ``param`` appearing as a bare ``Name`` argument to a
    resolved project call; every other Load of the name is terminal
    (stored, returned, computed with, passed to external code).
    """
    transfer_loads: Set[int] = set()
    edges: Set[_ParamKey] = set()
    for site in fn.calls:
        callee_infos = [
            info
            for t in site.targets
            if (info := project.functions.get(t)) is not None
        ]
        for position, arg in enumerate(site.node.args):
            if isinstance(arg, ast.Name) and arg.id == param:
                arg_edges: Set[_ParamKey] = set()
                for callee in callee_infos:
                    target_param = _positional_param(callee, position)
                    if target_param is not None:
                        arg_edges.add((callee.qual, target_param))
                if arg_edges:
                    edges.update(arg_edges)
                    transfer_loads.add(id(arg))
        for keyword in site.node.keywords:
            if (
                keyword.arg is not None
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id == param
            ):
                kw_edges: Set[_ParamKey] = set()
                for callee in callee_infos:
                    if keyword.arg in _param_names(callee.node):
                        kw_edges.add((callee.qual, keyword.arg))
                if kw_edges:
                    edges.update(kw_edges)
                    transfer_loads.add(id(keyword.value))
    terminal = False
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id == param
            and id(node) not in transfer_loads
        ):
            terminal = True
            break
    return terminal, edges


def _positional_param(fn: FunctionInfo, position: int) -> Optional[str]:
    params = _param_names(fn.node)
    offset = 0
    if fn.class_qual is not None and params and params[0] in ("self", "cls"):
        offset = 1
    index = position + offset
    if index < len(params):
        return params[index]
    return None
