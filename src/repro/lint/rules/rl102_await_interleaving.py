"""RL102: shared-attribute read-modify-write split by an ``await``.

An ``await`` is a scheduling point: every other task runs before the
function resumes, so a value read from ``self.*`` before the ``await``
is stale after it.  Writing shared state from the stale copy is the
classic asyncio lost update — no data race in the threading sense, just
interleaving — and it is exactly how a serve-engine counter or queue
drifts under load while staying correct in single-session tests.

Three shapes are flagged, all on ``self.*`` attributes (the state that
is shared between tasks):

* **stale local**: ``tmp = self.x`` … ``await …`` … ``self.x = f(tmp)``;
* **split expression**: ``self.x = <expr reading self.x and awaiting>``
  (including ``self.x += await f()`` — the augmented load happens before
  the await's suspension resolves);
* **stale guard**: ``if self.x …: … await … … self.x = …`` — the guard
  no longer holds when the write runs.  ``while``-based re-check loops
  (the condition-variable idiom: ``while not pred(): await cond.wait()``)
  are exempt: re-testing after resumption is the fix, not the bug.

The analysis is intra-function and path-insensitive: it over-approximates
"an await may run between the read and the write", which is the only
fact interleaving cares about.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.context import ModuleContext
from repro.lint.dataflow import (
    attr_path,
    contains_await,
    self_attr_reads,
    statement_facts,
)
from repro.lint.rules.base import Rule
from repro.lint.violations import Violation


def _iter_async_defs(tree: ast.Module) -> Iterator[ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def _single_self_attr_source(value: ast.expr) -> Optional[str]:
    """The one ``self.*`` path ``value`` reads, if exactly one and no call.

    Calls may return fresh objects each time; only plain reads (possibly
    through arithmetic) count as "a copy of shared state".
    """
    for node in ast.walk(value):
        if isinstance(node, ast.Call):
            return None
    reads = self_attr_reads(value)
    if len(reads) != 1:
        return None
    return next(iter(reads))


class AwaitInterleavingRule(Rule):
    code = "RL102"
    scopes = frozenset({"src", "scripts"})
    summary = "shared-state read-modify-write must not straddle an await"
    rationale = (
        "await is a scheduling point: state read before it is stale "
        "after it, and writing from the stale copy silently drops every "
        "update the other tasks made in between."
    )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for fn in _iter_async_defs(context.tree):
            yield from self._check_split_expressions(context, fn)
            yield from self._check_stale_locals(context, fn)
            yield from self._check_stale_guards(context, fn)

    # -- split expression -------------------------------------------------

    def _check_split_expressions(
        self, context: ModuleContext, fn: ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        for facts in statement_facts(fn):
            stmt = facts.stmt
            if not facts.has_await:
                continue
            if isinstance(stmt, ast.AugAssign):
                target = attr_path(stmt.target)
                if target is not None and target.startswith("self."):
                    yield self.violation(
                        context,
                        stmt.lineno,
                        stmt.col_offset,
                        f"`{target} {_aug_op(stmt)}= <await …>` reads "
                        f"`{target}` before the await and writes after it: "
                        "interleaved tasks' updates are lost — await into a "
                        "local first, then update atomically",
                    )
            elif isinstance(stmt, ast.Assign):
                for target_node in stmt.targets:
                    target = (
                        attr_path(target_node)
                        if isinstance(target_node, ast.Attribute)
                        else None
                    )
                    if (
                        target is not None
                        and target.startswith("self.")
                        and target in self_attr_reads(stmt.value)
                    ):
                        yield self.violation(
                            context,
                            stmt.lineno,
                            stmt.col_offset,
                            f"`{target} = …{target}… await …` straddles a "
                            "scheduling point: the value read is stale by "
                            "the time the write lands — split the await out",
                        )

    # -- stale local ------------------------------------------------------

    def _check_stale_locals(
        self, context: ModuleContext, fn: ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        #: local name -> (source attr path, captured-before-await line,
        #: an await has happened since the capture)
        tracked: Dict[str, Tuple[str, int, bool]] = {}
        for facts in statement_facts(fn):
            stmt = facts.stmt
            captured_this_stmt = False
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and not facts.has_await
            ):
                source = _single_self_attr_source(stmt.value)
                if source is not None:
                    tracked[stmt.targets[0].id] = (source, stmt.lineno, False)
                    captured_this_stmt = True
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                for target_attr in facts.attr_writes:
                    if not target_attr.startswith("self."):
                        continue
                    value = (
                        stmt.value
                        if isinstance(stmt, (ast.Assign, ast.AugAssign))
                        else None
                    )
                    if value is None:
                        continue
                    for name in sorted(facts.name_reads):
                        entry = tracked.get(name)
                        if entry is None:
                            continue
                        source, captured_line, awaited = entry
                        if awaited and source == target_attr:
                            yield self.violation(
                                context,
                                stmt.lineno,
                                stmt.col_offset,
                                f"`{target_attr}` is written from `{name}` "
                                f"(a copy taken on line {captured_line}) "
                                "after an await: the copy is stale and "
                                "every interleaved update is lost — "
                                "re-read after the await or restructure "
                                "so the read-modify-write is atomic",
                            )
            if facts.has_await:
                tracked = {
                    name: (source, line, True)
                    for name, (source, line, _awaited) in tracked.items()
                }
            if not captured_this_stmt:
                for name in facts.name_writes:
                    tracked.pop(name, None)

    # -- stale guard ------------------------------------------------------

    def _check_stale_guards(
        self, context: ModuleContext, fn: ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        yield from self._scan_guards(context, fn.body, in_while=False)

    def _scan_guards(
        self,
        context: ModuleContext,
        body: Sequence[ast.stmt],
        in_while: bool,
    ) -> Iterator[Violation]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.If) and not in_while:
                guard_attrs = self_attr_reads(stmt.test)
                if guard_attrs and not contains_await(stmt.test):
                    yield from self._scan_guard_body(
                        context, stmt.body, guard_attrs
                    )
            nested_in_while = in_while or isinstance(stmt, ast.While)
            for block in _blocks(stmt):
                yield from self._scan_guards(context, block, nested_in_while)

    def _scan_guard_body(
        self,
        context: ModuleContext,
        body: Sequence[ast.stmt],
        guard_attrs: "frozenset[str] | set[str]",
    ) -> Iterator[Violation]:
        awaited = False
        for stmt in _linear(body):
            writes = {
                path
                for path in _attr_writes_of(stmt)
                if path in guard_attrs
            }
            if awaited and writes:
                written = ", ".join(sorted(writes))
                yield self.violation(
                    context,
                    stmt.lineno,
                    stmt.col_offset,
                    f"`{written}` is written under an `if` guard that was "
                    "tested before an await: the guard no longer holds — "
                    "re-check after resuming (while-loop idiom) or write "
                    "before awaiting",
                )
            if contains_await(stmt):
                awaited = True


def _aug_op(stmt: ast.AugAssign) -> str:
    return {
        ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
        ast.FloorDiv: "//", ast.Mod: "%", ast.BitOr: "|", ast.BitAnd: "&",
        ast.BitXor: "^", ast.LShift: "<<", ast.RShift: ">>", ast.Pow: "**",
    }.get(type(stmt.op), "?")


def _blocks(stmt: ast.stmt) -> List[List[ast.stmt]]:
    blocks: List[List[ast.stmt]] = []
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            blocks.append(block)
    for handler in getattr(stmt, "handlers", []) or []:
        blocks.append(handler.body)
    return blocks


def _linear(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield stmt
        for block in _blocks(stmt):
            yield from _linear(block)


def _attr_writes_of(stmt: ast.stmt) -> Iterator[str]:
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, ast.Attribute):
            path = attr_path(target)
            if path is not None:
                yield path
