"""RL202/RL203: derived entropy must be used, and streams must not alias.

Two intra-function dataflow checks on the *derivation* side of seed
plumbing (RL201 polices the parameter side):

**RL202 — dropped derivation.**  A call to a ``derive_*`` helper or a
``.getrandbits()`` draw whose result is discarded, or bound to a local
that is never read again, advanced a seed chain for nothing.  That is
not just waste: anyone replaying the chain must reproduce the dead draw
to stay aligned, and the next refactor that removes it silently shifts
every downstream seed.

**RL203 — aliased streams.**  Two independent stream constructors
(``random.Random(X)`` or ``derive_*(X, …)``) seeded from the *same*
expression in one function produce correlated randomness: both consume
the identical underlying stream, so "the law" and "the session seeds"
(say) are deterministic functions of each other rather than independent
draws.  Derive distinct child seeds from one root instead — e.g. one
``random.Random(seed)`` whose ``getrandbits(64)`` results seed each
consumer.

Both rules skip ``tests/`` — parity tests *deliberately* construct
twin streams from one seed to compare engines.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.context import ModuleContext
from repro.lint.dataflow import read_names
from repro.lint.rules.base import Rule
from repro.lint.violations import Violation


def _derivation_label(
    context: ModuleContext, call: ast.Call
) -> Optional[str]:
    """A short label when ``call`` derives entropy, else None."""
    func = call.func
    dotted = context.resolve_call(func)
    if dotted is not None:
        tail = dotted.rsplit(".", 1)[-1]
        if tail.startswith("derive_"):
            return tail
    if isinstance(func, ast.Name) and func.id.startswith("derive_"):
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in (
        "getrandbits",
        "randbytes",
    ):
        return f".{func.attr}()"
    return None


def _stream_constructor_seed(
    context: ModuleContext, call: ast.Call
) -> Optional[Tuple[str, str]]:
    """(constructor label, seed-expression fingerprint) for RL203.

    A *stream constructor* turns a seed into an independent random
    stream: ``random.Random(X)`` or ``derive_*(X, …)``.  The fingerprint
    is the dump of the first argument, so two constructors fed the same
    expression collide.
    """
    if not call.args:
        return None
    func = call.func
    dotted = context.resolve_call(func)
    label: Optional[str] = None
    if dotted == "random.Random":
        label = "random.Random"
    elif dotted is not None and dotted.rsplit(".", 1)[-1].startswith("derive_"):
        label = dotted.rsplit(".", 1)[-1]
    elif isinstance(func, ast.Name) and func.id.startswith("derive_"):
        label = func.id
    if label is None:
        return None
    seed_arg = call.args[0]
    if not _is_seed_expression(seed_arg):
        return None
    return label, ast.dump(seed_arg)


def _is_seed_expression(node: ast.expr) -> bool:
    """Only plain seed values fingerprint: names, attrs, constants.

    A call like ``rng.getrandbits(64)`` yields a *fresh* value each
    evaluation, so two constructors fed syntactically identical calls do
    not alias.
    """
    return isinstance(node, (ast.Name, ast.Attribute, ast.Constant))


def _iter_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_calls(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.Call]:
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class SeedSinkRule(Rule):
    code = "RL202"
    scopes = frozenset({"src", "scripts", "benchmarks"})
    summary = "derived seeds/draws must be used, not discarded"
    rationale = (
        "A dead draw still advances the seed chain: replays must "
        "reproduce it to stay aligned, and deleting it later silently "
        "shifts every downstream seed."
    )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for fn in _iter_functions(context.tree):
            reads = read_names(fn)
            for stmt in ast.walk(fn):
                if isinstance(stmt, ast.Expr) and isinstance(
                    stmt.value, ast.Call
                ):
                    label = _derivation_label(context, stmt.value)
                    if label is not None:
                        yield self.violation(
                            context,
                            stmt.lineno,
                            stmt.col_offset,
                            f"`{label}` result is discarded: the draw "
                            "advances the seed chain but nothing consumes "
                            "it — bind it or delete the call",
                        )
                elif (
                    isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Call)
                ):
                    label = _derivation_label(context, stmt.value)
                    if label is None:
                        continue
                    for target in stmt.targets:
                        names = (
                            list(target.elts)
                            if isinstance(target, ast.Tuple)
                            else [target]
                        )
                        for element in names:
                            if (
                                isinstance(element, ast.Name)
                                and element.id != "_"
                                and element.id not in reads
                            ):
                                yield self.violation(
                                    context,
                                    stmt.lineno,
                                    stmt.col_offset,
                                    f"`{element.id}` holds a `{label}` "
                                    "draw that is never read: dropped "
                                    "entropy — use it or name it `_`",
                                )


class SeedAliasRule(Rule):
    code = "RL203"
    scopes = frozenset({"src", "scripts"})
    summary = "one seed must not feed two independent stream constructors"
    rationale = (
        "Streams seeded identically are copies, not independent draws: "
        "every 'random' choice in one is a deterministic function of "
        "the other, which collapses the experiment's quantification "
        "over randomness."
    )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for fn in _iter_functions(context.tree):
            by_seed: Dict[str, List[Tuple[ast.Call, str]]] = {}
            for call in _own_calls(fn):
                entry = _stream_constructor_seed(context, call)
                if entry is None:
                    continue
                label, fingerprint = entry
                by_seed.setdefault(fingerprint, []).append((call, label))
            for group in by_seed.values():
                if len(group) < 2:
                    continue
                group.sort(key=lambda item: (item[0].lineno, item[0].col_offset))
                first_call, first_label = group[0]
                for call, label in group[1:]:
                    yield self.violation(
                        context,
                        call.lineno,
                        call.col_offset,
                        f"`{label}` is seeded by the same expression as "
                        f"`{first_label}` on line {first_call.lineno}: the "
                        "two streams are identical, not independent — "
                        "derive distinct child seeds from one root "
                        "(e.g. per-purpose getrandbits(64) prefixes)",
                    )
