"""Rule registry: the shipped rule set, in code order."""

from __future__ import annotations

from typing import FrozenSet, List

from repro.lint.rules.base import Rule
from repro.lint.rules.rl001_nondeterminism import AmbientNondeterminismRule
from repro.lint.rules.rl002_mutating_step import MutatingStepRule
from repro.lint.rules.rl003_sensing_purity import SensingPurityRule
from repro.lint.rules.rl004_picklability import PicklabilityRule
from repro.lint.rules.rl005_seed_plumbing import SeedPlumbingRule

#: Every shipped rule, instantiated once (rules are stateless).
ALL_RULES: List[Rule] = [
    AmbientNondeterminismRule(),
    MutatingStepRule(),
    SensingPurityRule(),
    PicklabilityRule(),
    SeedPlumbingRule(),
]


def rule_codes() -> FrozenSet[str]:
    """The set of valid rule codes (for --select/--ignore validation)."""
    return frozenset(rule.code for rule in ALL_RULES)


__all__ = [
    "ALL_RULES",
    "AmbientNondeterminismRule",
    "MutatingStepRule",
    "PicklabilityRule",
    "Rule",
    "SeedPlumbingRule",
    "SensingPurityRule",
    "rule_codes",
]
