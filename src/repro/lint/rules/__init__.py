"""Rule registry: the shipped rule set, in code order."""

from __future__ import annotations

from typing import FrozenSet, List

from repro.lint.rules.base import ProjectRule, Rule
from repro.lint.rules.rl001_nondeterminism import AmbientNondeterminismRule
from repro.lint.rules.rl002_mutating_step import MutatingStepRule
from repro.lint.rules.rl003_sensing_purity import SensingPurityRule
from repro.lint.rules.rl004_picklability import PicklabilityRule
from repro.lint.rules.rl005_seed_plumbing import SeedPlumbingRule
from repro.lint.rules.rl101_async_blocking import AsyncBlockingRule
from repro.lint.rules.rl102_await_interleaving import AwaitInterleavingRule
from repro.lint.rules.rl103_orphan_tasks import OrphanTaskRule
from repro.lint.rules.rl201_seed_flow import SeedFlowRule
from repro.lint.rules.rl202_seed_sinks import SeedAliasRule, SeedSinkRule
from repro.lint.rules.rl301_event_contract import (
    EventConsumerRule,
    EventContractRule,
    EventPayloadRule,
)

#: Every shipped rule, instantiated once (rules are stateless).
ALL_RULES: List[Rule] = [
    AmbientNondeterminismRule(),
    MutatingStepRule(),
    SensingPurityRule(),
    PicklabilityRule(),
    SeedPlumbingRule(),
    AsyncBlockingRule(),
    AwaitInterleavingRule(),
    OrphanTaskRule(),
    SeedFlowRule(),
    SeedSinkRule(),
    SeedAliasRule(),
    EventContractRule(),
    EventConsumerRule(),
    EventPayloadRule(),
]


def rule_codes() -> FrozenSet[str]:
    """The set of valid rule codes (for --select/--ignore validation)."""
    return frozenset(rule.code for rule in ALL_RULES)


__all__ = [
    "ALL_RULES",
    "AmbientNondeterminismRule",
    "AsyncBlockingRule",
    "AwaitInterleavingRule",
    "EventConsumerRule",
    "EventContractRule",
    "EventPayloadRule",
    "MutatingStepRule",
    "OrphanTaskRule",
    "PicklabilityRule",
    "ProjectRule",
    "Rule",
    "SeedAliasRule",
    "SeedFlowRule",
    "SeedPlumbingRule",
    "SeedSinkRule",
    "SensingPurityRule",
    "rule_codes",
]
