"""RL101: nothing reachable from ``async def`` blocks the event loop.

The serve tier multiplexes thousands of sessions on one thread; a
single blocking call — a ``subprocess`` spawn, ``time.sleep``, file or
socket I/O, a process-pool spin-up — stalls *every* session, not just
the offender.  The classic leak is indirect: an async function calls an
innocent-looking sync helper that, three frames down, shells out (the
first ``git_sha()`` call inside ``Session.close`` did exactly this).

The rule walks the project call graph: every call site inside an
``async def`` whose sync closure reaches a blocking primitive is
flagged, with the witness chain (``caller -> helper -> primitive``) in
the message.  Awaited *async* callees are not propagated through — a
blocking call inside them is their own RL101 finding, reported once at
the point where blocking work enters async context.  Executor hops are
naturally exempt: ``run_in_executor(None, fn)`` passes ``fn`` as data,
not as a call.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.graph import Project
from repro.lint.rules.base import ProjectRule
from repro.lint.violations import Violation


class AsyncBlockingRule(ProjectRule):
    code = "RL101"
    scopes = frozenset({"src", "scripts"})
    summary = "async functions must not reach blocking calls on the event loop"
    rationale = (
        "One blocked event loop stalls every live session at once; the "
        "serve tier's capacity story (thousands of open sessions per "
        "process) only holds if blocking work never runs on the loop."
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        for fn in project.async_functions():
            if fn.module.kind not in self.scopes:
                continue
            for site in fn.calls:
                reason = project.blocking_reason_for_site(site)
                if reason is None:
                    continue
                desc, chain = reason
                if chain:
                    via = " -> ".join(
                        qual.rsplit(".", 1)[-1] + "()" for qual in chain
                    )
                    detail = f"reaches `{desc}` via {via}"
                else:
                    detail = f"calls `{desc}` directly"
                yield self.project_violation(
                    fn.module.path,
                    site.node.lineno,
                    site.node.col_offset,
                    f"`async def {fn.name}` {detail}: blocking work on the "
                    "event loop stalls every live session — hop to an "
                    "executor or precompute before serving",
                )
