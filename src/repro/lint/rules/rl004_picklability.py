"""RL004: sweep-reachable objects must stay statically picklable.

The process-pool executor ships every sweep cell to its worker by
pickling the :class:`~repro.analysis.runner.CellTask` — user, server,
goal, sensing and all.  ``ensure_picklable`` catches offenders at run
time, but only for the object graphs a given sweep happens to build;
this rule catches the *code shapes* that can never pickle, before any
sweep runs:

* a lambda stored on an instance attribute (``self.fn = lambda ...``);
* a locally-defined function stored on an instance attribute (closures
  pickle neither by value nor by reference);
* a lambda as a class attribute or dataclass field default;
* an open file handle stored on an instance attribute.

The fix is always the same hoist: make it a module-level function (which
pickles by reference) or a named method.  The runtime pre-flight remains
the backstop for shapes no static rule can see (e.g. a lambda passed in
through a constructor parameter).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.context import ModuleContext, attribute_root
from repro.lint.rules.base import Rule
from repro.lint.violations import Violation


class PicklabilityRule(Rule):
    code = "RL004"
    summary = "no lambdas/local functions/open handles on picklable objects"
    rationale = (
        "Process-pool sweeps pickle every cell; a stored lambda or handle "
        "turns a parallel sweep into a runtime PicklingError (extends the "
        "`ensure_picklable` pre-flight to a static guarantee)."
    )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for cls in context.iter_classes():
            yield from self._check_class_body(context, cls)
            for method in [n for n in cls.body if isinstance(n, ast.FunctionDef)]:
                yield from self._check_method(context, cls, method)

    def _check_class_body(
        self, context: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Violation]:
        for node in cls.body:
            value = None
            if isinstance(node, ast.Assign):
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value = node.value
            if value is None:
                continue
            if isinstance(value, ast.Lambda):
                yield self.violation(
                    context,
                    value.lineno,
                    value.col_offset,
                    f"class attribute of `{cls.name}` holds a lambda: "
                    "lambdas never pickle — hoist it to a module-level "
                    "function",
                )
            elif _is_field_default_lambda(value):
                yield self.violation(
                    context,
                    value.lineno,
                    value.col_offset,
                    f"dataclass field of `{cls.name}` defaults to a lambda: "
                    "instances will not pickle — use a module-level function",
                )

    def _check_method(
        self, context: ModuleContext, cls: ast.ClassDef, method: ast.FunctionDef
    ) -> Iterator[Violation]:
        local_defs: Set[str] = {
            node.name
            for node in ast.walk(method)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not method
        }
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not isinstance(target, ast.Attribute):
                    continue
                root = attribute_root(target)
                if root is None or root.id != "self":
                    continue
                attr = f"self.{target.attr}"
                if isinstance(node.value, ast.Lambda):
                    yield self.violation(
                        context,
                        node.lineno,
                        node.col_offset,
                        f"`{cls.name}.{method.name}` stores a lambda on "
                        f"`{attr}`: the instance will not pickle for "
                        "process-pool sweeps — hoist to module level",
                    )
                elif (
                    isinstance(node.value, ast.Name)
                    and node.value.id in local_defs
                ):
                    yield self.violation(
                        context,
                        node.lineno,
                        node.col_offset,
                        f"`{cls.name}.{method.name}` stores the local "
                        f"function `{node.value.id}` on `{attr}`: closures "
                        "do not pickle — hoist it to module level",
                    )
                elif _is_open_call(node.value):
                    yield self.violation(
                        context,
                        node.lineno,
                        node.col_offset,
                        f"`{cls.name}.{method.name}` stores an open file "
                        f"handle on `{attr}`: handles do not cross process "
                        "boundaries — store the path and open lazily",
                    )


def _is_field_default_lambda(value: ast.expr) -> bool:
    """``field(default=lambda ...)`` (default_factory lambdas are fine —
    the factory runs per instance and the *result* is what pickles)."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    if name != "field":
        return False
    return any(
        kw.arg == "default" and isinstance(kw.value, ast.Lambda)
        for kw in value.keywords
    )


def _is_open_call(value: ast.expr) -> bool:
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "open"
    )
