"""Shared detector for ambient-nondeterminism call sites.

Used by RL001 (everywhere) and RL003 (inside sensing), so both rules
agree on what "ambient" means: any call whose result depends on process
state the threaded ``rng`` does not control — the module-level ``random``
functions, wall clocks, and OS entropy.

Measurement clocks (``time.perf_counter``, ``time.monotonic``,
``time.process_time``) are deliberately *not* banned: they measure the
simulation, they never feed it, and the observability layer injects them
as explicit parameters.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.context import ModuleContext

#: Exact dotted call targets whose results are ambient process state.
BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Prefixes banned wholesale (every function is entropy- or clock-backed).
BANNED_PREFIXES = ("secrets.",)


def ambient_call(
    context: ModuleContext, node: ast.Call
) -> Optional[Tuple[str, str]]:
    """If ``node`` calls an ambient source, return ``(target, reason)``.

    ``random.<fn>()`` for any ``fn`` other than the ``Random`` class is
    the canonical offender: it draws from the interpreter-global RNG,
    whose stream is shared by everything in the process, so one extra
    consumer silently perturbs every other simulation.
    """
    target = context.resolve_call(node.func)
    if target is None:
        return None
    if target.startswith("random."):
        tail = target[len("random.") :]
        if tail == "Random":
            return None
        if tail == "SystemRandom":
            return target, "draws OS entropy (irreproducible by construction)"
        return (
            target,
            "uses the process-global RNG; thread randomness through the "
            "`rng: random.Random` argument instead",
        )
    if target in BANNED_CALLS:
        return target, "reads ambient process state (wall clock / OS entropy)"
    for prefix in BANNED_PREFIXES:
        if target.startswith(prefix):
            return target, "draws OS entropy (irreproducible by construction)"
    return None


def iter_ambient_calls(
    context: ModuleContext, root: ast.AST
) -> Iterator[Tuple[ast.Call, str, str]]:
    """Every ambient call under ``root`` as ``(node, target, reason)``."""
    for node in ast.walk(root):
        if isinstance(node, ast.Call):
            found = ambient_call(context, node)
            if found is not None:
                yield node, found[0], found[1]
