"""RL005: public constructors that consume randomness take ``rng``/``seed``.

Reproducibility is only as strong as its narrowest API: a constructor
that builds its own RNG from a seed the caller cannot set re-introduces
a hidden stream — every sweep cell, worker, and replay shares it, and no
experiment seed reaches it.  The repo's convention (and the paper's
implicit one — "the world makes a single non-deterministic choice",
which experiments model by *quantifying over seeds*) is that randomness
enters a component exactly once, through an explicit ``rng`` or ``seed``
parameter.

Flagged, for ``__init__`` of public classes and public module-level
functions whose signature has no ``rng``/``seed``-like parameter:

* constructing ``random.Random(...)`` (any seed — the caller cannot
  control it);
* calling any ambient randomness source (also RL001, but here the
  finding is about the *signature*: the function has no way to be given
  randomness, which is why its author reached for the ambient stream).

Private helpers (leading underscore) are exempt: they receive their
randomness from the public entry points this rule polices.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.rules._ambient import iter_ambient_calls
from repro.lint.rules.base import Rule
from repro.lint.violations import Violation


def _has_seed_param(fn: ast.FunctionDef) -> bool:
    names = [a.arg for a in fn.args.args + fn.args.kwonlyargs + fn.args.posonlyargs]
    return any(
        name == "rng"
        or name == "seed"
        or name.endswith("_rng")
        or name.endswith("_seed")
        or name.endswith("seeds")
        or name == "seeds"
        for name in names
    )


def _consumes_randomness(context: ModuleContext, fn: ast.FunctionDef) -> Iterator[ast.Call]:
    """RNG constructions in ``fn``'s own body (nested defs excluded)."""
    stack: list = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            if context.resolve_call(node.func) == "random.Random":
                yield node
        stack.extend(ast.iter_child_nodes(node))


class SeedPlumbingRule(Rule):
    code = "RL005"
    #: Library API only: a test's helper pinning `random.Random(0)` is the
    #: *caller* choosing a seed, which is exactly the plumbed-through case.
    scopes = frozenset({"src"})
    summary = "public constructors that consume randomness accept rng/seed"
    rationale = (
        "Experiments quantify over seeds; a hidden RNG inside a public "
        "constructor is a stream no experiment seed reaches, so sweeps "
        "stop being functions of (strategies, seed)."
    )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for cls in context.iter_classes():
            if cls.name.startswith("_"):
                continue
            for node in cls.body:
                if isinstance(node, ast.FunctionDef) and node.name == "__init__":
                    yield from self._check_callable(
                        context, f"`{cls.name}.__init__`", node
                    )
        for node in context.tree.body:
            if (
                isinstance(node, ast.FunctionDef)
                and not node.name.startswith("_")
            ):
                yield from self._check_callable(
                    context, f"`{node.name}`", node
                )

    def _check_callable(
        self, context: ModuleContext, where: str, fn: ast.FunctionDef
    ) -> Iterator[Violation]:
        if _has_seed_param(fn):
            return
        for call in _consumes_randomness(context, fn):
            yield self.violation(
                context,
                call.lineno,
                call.col_offset,
                f"{where} builds a `random.Random` but accepts no "
                "`rng`/`seed` parameter: callers (and sweeps) cannot "
                "control the stream — plumb the seed through the signature",
            )
        for call, target, _reason in iter_ambient_calls(context, fn):
            if _inside_nested_function(fn, call):
                continue
            yield self.violation(
                context,
                call.lineno,
                call.col_offset,
                f"{where} draws from `{target}` but accepts no `rng`/`seed` "
                "parameter: add one and thread the randomness explicitly",
            )


def _inside_nested_function(fn: ast.FunctionDef, target: ast.Call) -> bool:
    """Whether ``target`` sits inside a def/lambda nested under ``fn``."""
    for node in ast.walk(fn):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            and node is not fn
        ):
            for sub in ast.walk(node):
                if sub is target:
                    return True
    return False
