"""RL003: sensing is a pure predicate of the user's local view.

Theorem 1 calls sensing "trustworthy indications": the safety and
viability properties are defined for *predicates of the view*, so an
``indicate`` that mutates its object, performs I/O, or reads ambient
state is outside the theorem — its verdicts can differ between the run
that was judged and the replay that is audited, and the grace/incremental
machinery (which consults the inner sensing at different times on
different paths) is only sound because verdicts depend on nothing but
the view prefix.

Flagged inside ``indicate`` of any ``Sensing`` subclass, and inside
lambdas passed directly to ``FunctionSensing``:

* writes to ``self`` or to the view parameter (including mutating
  method calls on either);
* ``global``/``nonlocal`` declarations — closure over mutable state;
* I/O: ``open``/``input``/``print``;
* ambient nondeterminism (same detector as RL001).

Stateful *incremental monitors* (``IncrementalSensing.observe``) are
exempt by design: a monitor is single-trial and owns its state — its
contract is equivalence with the pure ``indicate`` on the observed
prefix, which the equivalence tests check dynamically.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.context import (
    MUTATING_METHODS,
    ModuleContext,
    attribute_root,
    iter_methods,
)
from repro.lint.rules._ambient import iter_ambient_calls
from repro.lint.rules.base import Rule
from repro.lint.violations import Violation

_IO_CALLS = frozenset({"open", "input", "print"})


def _is_sensing_class(context: ModuleContext, cls: ast.ClassDef) -> bool:
    bases = context.transitive_bases(cls.name)
    return any(base == "Sensing" or base.endswith("Sensing") for base in bases)


class SensingPurityRule(Rule):
    code = "RL003"
    summary = "sensing `indicate` must be a pure, I/O-free predicate of the view"
    rationale = (
        "Safety/viability (Theorem 1) are properties of view-predicates; "
        "impure sensing can return different verdicts on the replayed "
        "prefix than it did live, voiding the empirical certificates."
    )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for cls in context.iter_classes():
            if not _is_sensing_class(context, cls):
                continue
            for method in iter_methods(cls, {"indicate"}):
                view = _view_param(method)
                yield from self._check_body(
                    context, f"`{cls.name}.indicate`", method, view
                )
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call) and _is_function_sensing(node):
                for arg in list(node.args[:1]) + [
                    kw.value for kw in node.keywords if kw.arg == "fn"
                ]:
                    if isinstance(arg, ast.Lambda):
                        yield from self._check_body(
                            context, "sensing lambda", arg, None
                        )

    def _check_body(
        self,
        context: ModuleContext,
        where: str,
        root: ast.AST,
        view: Optional[str],
    ) -> Iterator[Violation]:
        watched = {"self"} | ({view} if view else set())
        for node in ast.walk(root):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    hit = _deref_write(target, watched)
                    if hit is not None:
                        yield self.violation(
                            context,
                            node.lineno,
                            node.col_offset,
                            f"{where} writes `{hit}`: sensing must not carry "
                            "state between calls (use an IncrementalSensing "
                            "monitor for per-trial state)",
                        )
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                yield self.violation(
                    context,
                    node.lineno,
                    node.col_offset,
                    f"{where} declares `{type(node).__name__.lower()}`: "
                    "closure over mutable state makes the verdict depend on "
                    "call history, not the view",
                )
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id in _IO_CALLS:
                    yield self.violation(
                        context,
                        node.lineno,
                        node.col_offset,
                        f"{where} performs I/O (`{func.id}`): sensing runs "
                        "inside the simulation hot loop and must stay a pure "
                        "predicate (attach a tracer for observability)",
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_METHODS
                ):
                    root_name = attribute_root(func.value)
                    if root_name is not None and root_name.id in watched:
                        if not isinstance(func.value, ast.Name) or root_name.id != "self":
                            yield self.violation(
                                context,
                                node.lineno,
                                node.col_offset,
                                f"{where} mutates `{root_name.id}` via "
                                f"`.{func.attr}(...)`",
                            )
        for node, target, reason in iter_ambient_calls(context, root):
            yield self.violation(
                context,
                node.lineno,
                node.col_offset,
                f"{where} calls `{target}`: {reason}",
            )


def _view_param(method: ast.FunctionDef) -> Optional[str]:
    names = [a.arg for a in method.args.args]
    if len(names) >= 2 and names[0] == "self":
        return names[1]
    return None


def _is_function_sensing(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "FunctionSensing"
    return isinstance(func, ast.Attribute) and func.attr == "FunctionSensing"


def _deref_write(target: ast.expr, roots: "set[str]") -> Optional[str]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            hit = _deref_write(element, roots)
            if hit is not None:
                return hit
        return None
    if not isinstance(target, (ast.Attribute, ast.Subscript)):
        return None
    root = attribute_root(target)
    if root is not None and root.id in roots:
        return root.id
    return None
