"""RL002: strategy ``step``/``initial_state`` must not mutate the strategy.

A strategy object is *shared*: the same instance serves every execution
of a sweep cell, every trial of a universal user's enumeration, and — on
the serial path — every seed of a cell.  The engine threads all
per-execution dynamics through the explicit ``state`` value; anything a
``step`` writes onto ``self`` instead leaks between executions, which is
precisely the ``ResettableServer`` bug PR 3 caught by hand (a reset
counter stored on the wrapper survived into the next run and skewed the
fault grid).  Levin-style enumeration is only sound when a candidate
cannot corrupt the shared enumeration state behind the cursor's back.

The *threaded state* is deliberately out of scope: states are created
per-execution by ``initial_state`` and owned by the caller (the mutable
dataclass state of the universal users is the documented idiom, see
``CompactUniversalState``).  What RL002 also flags is mutation of the
``inbox`` — inboxes are build-once views of the channel and must read
the same to every observer (transcripts, tracers, views).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.lint.context import (
    MUTATING_METHODS,
    ModuleContext,
    attribute_root,
    iter_methods,
)
from repro.lint.rules.base import Rule
from repro.lint.violations import Violation

#: Base-class names that mark a class as a strategy implementation.
_STRATEGY_BASE_RE = re.compile(r"(Strategy|User|Server|World|Party)$")

#: The engine-called methods that must leave the strategy untouched.
_CHECKED_METHODS = {"step", "initial_state", "react"}


def is_strategy_class(context: ModuleContext, cls: ast.ClassDef) -> bool:
    """Heuristic: any (transitive, textual) base looks like a strategy.

    Matches the repo's naming convention (`*Strategy`, `*User`,
    `*Server`, `*World`, `*Party`); same-module inheritance is resolved
    transitively, cross-module inheritance falls back to the base's
    written name — which is exactly the suffix the convention fixes.
    """
    bases = {base for base in context.transitive_bases(cls.name)}
    return any(_STRATEGY_BASE_RE.search(base) for base in bases)


class MutatingStepRule(Rule):
    code = "RL002"
    summary = "strategy step/initial_state must not mutate self (or the inbox)"
    rationale = (
        "Strategy objects are shared across executions, sweep cells, and "
        "enumeration trials; hidden state on `self` breaks per-seed "
        "determinism and the soundness of enumeration (Levin 1973)."
    )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for cls in context.iter_classes():
            if not is_strategy_class(context, cls):
                continue
            for method in iter_methods(cls, _CHECKED_METHODS):
                targets = {"self"}
                inbox = _inbox_param(method)
                if inbox is not None:
                    targets.add(inbox)
                yield from self._check_method(context, cls, method, targets)

    def _check_method(
        self,
        context: ModuleContext,
        cls: ast.ClassDef,
        method: ast.FunctionDef,
        targets: "set[str]",
    ) -> Iterator[Violation]:
        where = f"`{cls.name}.{method.name}`"
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                assign_targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in assign_targets:
                    hit = _written_target(target, targets)
                    if hit is not None:
                        yield self.violation(
                            context,
                            node.lineno,
                            node.col_offset,
                            f"{where} writes `{hit}`: strategies are shared "
                            "across executions — thread per-run dynamics "
                            "through the returned state instead",
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    hit = _written_target(target, targets)
                    if hit is not None:
                        yield self.violation(
                            context,
                            node.lineno,
                            node.col_offset,
                            f"{where} deletes `{hit}` (shared strategy state)",
                        )
            elif isinstance(node, ast.Call):
                hit = _mutating_call_target(node, targets)
                if hit is not None:
                    yield self.violation(
                        context,
                        node.lineno,
                        node.col_offset,
                        f"{where} calls a mutating method on `{hit}`: "
                        "strategies are shared across executions — keep "
                        "containers on the threaded state",
                    )


def _inbox_param(method: ast.FunctionDef) -> Optional[str]:
    """The inbox parameter of an engine-shaped ``step``/``react``."""
    if method.name not in ("step", "react"):
        return None
    names = [a.arg for a in method.args.args]
    # step(self, state, inbox, rng) / react(self, round_index, inbox, rng)
    if len(names) >= 3 and names[0] == "self":
        return names[2]
    return None


def _written_target(target: ast.expr, roots: "set[str]") -> Optional[str]:
    """If the assignment/delete target dereferences a watched root, name it.

    Bare rebinding of the name itself (``state = ...``) is fine — it
    changes a local binding, not the shared object.  Writes *through* the
    name (``self.x = ...``, ``self.x[k] = ...``) are not.
    """
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            hit = _written_target(element, roots)
            if hit is not None:
                return hit
        return None
    if not isinstance(target, (ast.Attribute, ast.Subscript)):
        return None
    root = attribute_root(target)
    if root is not None and root.id in roots:
        return root.id
    return None


def _mutating_call_target(node: ast.Call, roots: "set[str]") -> Optional[str]:
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in MUTATING_METHODS:
        return None
    root = attribute_root(func.value)
    if root is None or root.id not in roots:
        return None
    # `self.foo()` with foo in MUTATING_METHODS would be a method *on the
    # strategy itself*; only container access through an attribute or
    # subscript (self.cache.append, inbox.messages.pop) is mutation.
    if isinstance(func.value, ast.Name):
        return None
    return root.id
