"""RL103: no unawaited coroutines, no fire-and-forget tasks.

Calling an ``async def`` without ``await`` builds a coroutine object
and throws it away — the body never runs, and Python only mentions it
in a warning that CI logs swallow.  ``asyncio.create_task`` with the
handle discarded is the subtler version: the task *runs*, but nothing
observes its exception (silently dropped at GC time) and nothing can
drain it at shutdown — the serve engine's graceful-drain guarantee dies
exactly there.

Flagged:

* an expression statement that calls a project ``async def`` without
  ``await`` (the coroutine is created and dropped);
* ``asyncio.create_task`` / ``ensure_future`` (module call or method
  form) whose result is discarded or bound to a name that is never read
  again — keep the handle and either ``await`` it, register an
  ``add_done_callback``, or park it where shutdown can find it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from repro.lint.dataflow import read_names
from repro.lint.graph import FunctionInfo, Project
from repro.lint.rules.base import ProjectRule
from repro.lint.violations import Violation

_SPAWNERS = frozenset({"asyncio.create_task", "asyncio.ensure_future"})
_SPAWNER_ATTRS = frozenset({"create_task", "ensure_future"})


class OrphanTaskRule(ProjectRule):
    code = "RL103"
    scopes = frozenset({"src", "scripts"})
    summary = "coroutines must be awaited; task handles must be kept"
    rationale = (
        "A dropped coroutine never runs; a dropped task handle hides "
        "its exception and escapes graceful drain — both turn 'served' "
        "into 'silently lost' under load."
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        for fn in project.functions.values():
            if fn.module.kind not in self.scopes:
                continue
            yield from self._check_function(project, fn)

    def _check_function(
        self, project: Project, fn: FunctionInfo
    ) -> Iterator[Violation]:
        sites: Dict[int, "tuple[str, ...]"] = {
            id(site.node): site.targets for site in fn.calls
        }
        reads = read_names(fn.node)
        for stmt in _own_statements(fn.node):
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                call = stmt.value
                if self._is_spawner(fn, call):
                    yield self.project_violation(
                        fn.module.path,
                        call.lineno,
                        call.col_offset,
                        "fire-and-forget task: the handle is discarded, so "
                        "its exception is lost and shutdown cannot drain it "
                        "— keep the handle and await it or add a "
                        "done-callback",
                    )
                    continue
                targets = sites.get(id(call), ())
                if any(
                    (callee := project.functions.get(t)) is not None
                    and callee.is_async
                    for t in targets
                ):
                    yield self.project_violation(
                        fn.module.path,
                        call.lineno,
                        call.col_offset,
                        "coroutine is never awaited: the async body will "
                        "not run — `await` it (or create_task and keep the "
                        "handle)",
                    )
            elif (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
                and self._is_spawner(fn, stmt.value)
            ):
                name = stmt.targets[0].id
                if name != "_" and name not in reads:
                    yield self.project_violation(
                        fn.module.path,
                        stmt.lineno,
                        stmt.col_offset,
                        f"task handle `{name}` is never read: the task "
                        "outlives anyone who could observe its failure — "
                        "await it, add a done-callback, or track it for "
                        "drain",
                    )

    @staticmethod
    def _is_spawner(fn: FunctionInfo, call: ast.Call) -> bool:
        dotted = fn.module.context.resolve_call(call.func)
        if dotted in _SPAWNERS:
            return True
        return (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _SPAWNER_ATTRS
        )


def _own_statements(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.stmt]:
    stack: list[ast.stmt] = list(reversed(fn.body))
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield stmt
        for name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, name, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                stack.extend(reversed(block))
        for handler in getattr(stmt, "handlers", []) or []:
            stack.extend(reversed(handler.body))
