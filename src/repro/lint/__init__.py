"""reprolint: domain-invariant static analysis for the simulation core.

The paper's guarantees lean on contracts the runtime never checks: sensing
must be a pure predicate of the user's local view (Theorem 1's
"trustworthy indications"), strategies must not smuggle state past the
engine's explicit threading (the determinism contract of
``docs/ROBUSTNESS.md``), and sweep cells must survive a process boundary.
The dynamic checks — per-seed replay tests, ``ensure_picklable``
pre-flights — only certify the runs they saw.  This package certifies the
*code*: an AST pass over ``src/`` and ``tests/`` with ruff-style rule
codes, line pragmas, and JSON/GitHub output for CI.

Rules (see ``docs/STATIC_ANALYSIS.md`` for the full catalogue):

* ``RL001`` — no ambient nondeterminism: randomness flows through the
  threaded ``rng``, never through module-level ``random``, wall clocks,
  OS entropy, or hash-order-dependent ``set`` iteration.
* ``RL002`` — non-mutating ``step``: strategy objects are shared across
  executions and sweeps; per-round dynamics live in the threaded state.
* ``RL003`` — sensing purity: ``indicate`` is a read-only predicate of
  the view — no self-mutation, no I/O, no ambient randomness.
* ``RL004`` — picklability: no lambdas, local functions, or open handles
  stored on objects that a process-pool sweep must pickle.
* ``RL005`` — seed plumbing: public constructors that consume randomness
  accept an explicit ``rng``/``seed``.

Run ``python -m repro.lint src tests`` (exit 0 iff clean), or
``python -m repro.lint --help`` for output formats and the baseline
ratchet used over ``benchmarks/``.
"""

from repro.lint.engine import LintReport, lint_paths, lint_source
from repro.lint.rules import ALL_RULES, rule_codes
from repro.lint.violations import Violation

__all__ = [
    "ALL_RULES",
    "LintReport",
    "Violation",
    "lint_paths",
    "lint_source",
    "rule_codes",
]
