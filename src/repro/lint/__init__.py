"""reprolint: domain-invariant static analysis for the simulation core.

The paper's guarantees lean on contracts the runtime never checks: sensing
must be a pure predicate of the user's local view (Theorem 1's
"trustworthy indications"), strategies must not smuggle state past the
engine's explicit threading (the determinism contract of
``docs/ROBUSTNESS.md``), and sweep cells must survive a process boundary.
The dynamic checks — per-seed replay tests, ``ensure_picklable``
pre-flights — only certify the runs they saw.  This package certifies the
*code*: an AST pass over ``src/`` and ``tests/`` with ruff-style rule
codes, line pragmas, and JSON/GitHub output for CI.

Rules (see ``docs/STATIC_ANALYSIS.md`` for the full catalogue):

* ``RL001`` — no ambient nondeterminism: randomness flows through the
  threaded ``rng``, never through module-level ``random``, wall clocks,
  OS entropy, or hash-order-dependent ``set`` iteration.
* ``RL002`` — non-mutating ``step``: strategy objects are shared across
  executions and sweeps; per-round dynamics live in the threaded state.
* ``RL003`` — sensing purity: ``indicate`` is a read-only predicate of
  the view — no self-mutation, no I/O, no ambient randomness.
* ``RL004`` — picklability: no lambdas, local functions, or open handles
  stored on objects that a process-pool sweep must pickle.
* ``RL005`` — seed plumbing: public constructors that consume randomness
  accept an explicit ``rng``/``seed``.

The async/serve era added project-level families, backed by the
whole-program view in :mod:`repro.lint.graph` (import + call graph) and
:mod:`repro.lint.dataflow` (intra-function def-use facts):

* ``RL101`` — async-hazard: nothing reachable from ``async def`` blocks
  the event loop (subprocess, sleep, file/socket I/O, pool spin-up),
  with witness chains through the call graph.
* ``RL102`` — await interleaving: no shared-attribute read-modify-write
  split by an ``await`` (the asyncio lost-update).
* ``RL103`` — orphan tasks: no unawaited coroutines, no fire-and-forget
  ``create_task`` with a discarded handle.
* ``RL201`` — seed flow: accepted ``seed``/``rng`` parameters reach a
  sink (interprocedural, to a fixed point over the call graph).
* ``RL202`` — seed sinks: derived draws are consumed, never discarded.
* ``RL203`` — stream aliasing: one seed expression never feeds two
  independent stream constructors.
* ``RL301``/``RL302``/``RL303`` — event contract: every registered
  event kind is emitted by real code, handled by the trace consumers
  (certify/analyze/overhead), and constructed with the declared fields.

Run ``python -m repro.lint src tests`` (exit 0 iff clean), or
``python -m repro.lint --help`` for output formats and the baseline
ratchet used over ``benchmarks/``.
"""

from repro.lint.engine import LintReport, lint_paths, lint_source, lint_sources
from repro.lint.rules import ALL_RULES, rule_codes
from repro.lint.violations import Violation

__all__ = [
    "ALL_RULES",
    "LintReport",
    "Violation",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "rule_codes",
]
