"""Intra-function dataflow facts for the RL1xx/RL2xx rule families.

``graph.py`` answers *who calls whom*; this module answers *what one
function does with its values*: which names and ``self.*`` attributes
each statement reads and writes, where the ``await`` points are, and
which locals are never read again.  The facts are deliberately simple —
statement-ordered, path-insensitive — because the rules built on them
(RL102 lost-update detection, RL2xx dropped-entropy detection) only need
happens-after relationships that survive any interleaving, not precise
path conditions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Set, Tuple


def attr_path(node: ast.expr) -> Optional[str]:
    """Dotted path of an attribute chain rooted at a Name, else None.

    ``self._open`` → ``"self._open"``; ``a.b.c`` → ``"a.b.c"``;
    anything rooted at a call or subscript → None.
    """
    parts: List[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    parts.append(cursor.id)
    return ".".join(reversed(parts))


@dataclass
class StatementFacts:
    """What one statement reads, writes, and awaits."""

    stmt: ast.stmt
    #: Nesting context: how many While loops enclose this statement
    #: (inside the function).  A read-check-write under a While is the
    #: condition-variable idiom, not a lost update.
    while_depth: int
    #: Attribute paths read in Load context (``self.x``, ``a.b``).
    attr_reads: Set[str] = field(default_factory=set)
    #: Attribute paths written by assignment/augassign targets.
    attr_writes: Set[str] = field(default_factory=set)
    #: Local names read in Load context.
    name_reads: Set[str] = field(default_factory=set)
    #: Local names bound by this statement.
    name_writes: Set[str] = field(default_factory=set)
    #: True when the statement contains an ``await`` expression.
    has_await: bool = False


def _iter_own_statements(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[Tuple[ast.stmt, int]]:
    """(statement, while-depth) pairs in source order, nested defs skipped."""

    def visit(
        body: Sequence[ast.stmt], depth: int
    ) -> Iterator[Tuple[ast.stmt, int]]:
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield stmt, depth
            child_depth = depth + 1 if isinstance(stmt, ast.While) else depth
            for name in ("body", "orelse", "finalbody"):
                block = getattr(stmt, name, None)
                if isinstance(block, list) and block:
                    first = block[0]
                    if isinstance(first, ast.stmt):
                        yield from visit(block, child_depth)
            for handler in getattr(stmt, "handlers", []) or []:
                yield from visit(handler.body, child_depth)

    yield from visit(fn.body, 0)


def _walk_expressions(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Expression nodes of one statement, nested defs/lambdas skipped."""
    stack: List[ast.AST] = [
        child
        for child in ast.iter_child_nodes(stmt)
        if not isinstance(child, ast.stmt)
    ]
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def statement_facts(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> List[StatementFacts]:
    """Statement-ordered read/write/await facts for ``fn``'s own body."""
    result: List[StatementFacts] = []
    for stmt, depth in _iter_own_statements(fn):
        facts = StatementFacts(stmt=stmt, while_depth=depth)
        for node in _walk_expressions(stmt):
            if isinstance(node, (ast.Await,)):
                facts.has_await = True
            elif isinstance(node, ast.Attribute):
                path = attr_path(node)
                if path is None:
                    continue
                if isinstance(node.ctx, ast.Load):
                    facts.attr_reads.add(path)
                else:
                    facts.attr_writes.add(path)
            elif isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    facts.name_reads.add(node.id)
                else:
                    facts.name_writes.add(node.id)
        # While/If tests live on the statement node itself and were
        # covered by _walk_expressions; comprehension generators too.
        result.append(facts)
    return result


def read_names(node: ast.AST) -> Set[str]:
    """All Name loads inside ``node`` (nested defs included)."""
    return {
        child.id
        for child in ast.walk(node)
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load)
    }


def contains_await(node: ast.AST) -> bool:
    """True when ``node`` contains an Await outside nested functions."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            if current is not node:
                continue
        if isinstance(current, ast.Await):
            return True
        stack.extend(ast.iter_child_nodes(current))
    return False


def self_attr_reads(node: ast.AST) -> Set[str]:
    """``self.*`` attribute paths read (Load) anywhere inside ``node``."""
    found: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and isinstance(child.ctx, ast.Load):
            path = attr_path(child)
            if path is not None and path.startswith("self."):
                found.add(path)
    return found


__all__ = [
    "StatementFacts",
    "attr_path",
    "contains_await",
    "read_names",
    "self_attr_reads",
    "statement_facts",
]
