"""Measurement and reporting harness for the experiments.

Per-run metrics (:mod:`.metrics`), user × server-class sweeps
(:mod:`.runner`), parallel sweep backends (:mod:`.parallel`), the ASCII
tables/series the benchmarks print (:mod:`.tables`), and the fast
one-command reproduction report (:mod:`.report`, runnable as
``python -m repro.analysis.report``).
"""

from repro.analysis.metrics import (
    RunMetrics,
    collect_metrics,
    Summary,
    success_rate,
    rounds_summary,
)
from repro.analysis.runner import (
    CellTask,
    CellTelemetry,
    SweepCell,
    SweepResult,
    merge_telemetry,
    sweep,
    sweep_goals,
)
from repro.analysis.batch import (
    BatchExecutor,
)
from repro.analysis.parallel import (
    BatchProcessExecutor,
    ProcessExecutor,
    SerialExecutor,
    ensure_picklable,
)
from repro.analysis.tables import (
    format_table,
    format_series,
    format_sparkline,
    format_telemetry,
)

__all__ = [
    "RunMetrics",
    "collect_metrics",
    "Summary",
    "success_rate",
    "rounds_summary",
    "CellTask",
    "CellTelemetry",
    "SweepCell",
    "SweepResult",
    "merge_telemetry",
    "sweep",
    "sweep_goals",
    "SerialExecutor",
    "ProcessExecutor",
    "BatchExecutor",
    "BatchProcessExecutor",
    "ensure_picklable",
    "format_table",
    "format_series",
    "format_sparkline",
    "format_telemetry",
]
