"""Batched sweep backend: thousands of cells per process, in lockstep.

:class:`BatchExecutor` is the ``executor=`` backend built on
:mod:`repro.core.batch`.  It partitions a sweep's cells into two tiers:

* cells whose whole cast compiles to finite-state tables over a shared
  alphabet (see :func:`repro.core.batch.compile_tabular_cast`) run on the
  **vectorized** kernel — one numpy gather per party per round across all
  slots of a chunk, which is where the 100×+ ``cells_per_s`` lives;
* everything else runs on the **scalar lockstep** engine
  (:func:`repro.core.batch.run_execution_batch`), which interleaves
  arbitrary strategies round by round with bitwise-identical results to
  the serial engine.

Either way the determinism contract of :mod:`repro.analysis.parallel`
holds: same seeds in, equal :class:`~repro.analysis.runner.SweepCell` out
— metrics, verdicts, telemetry totals, and cell order all match the
serial sweep (``tests/analysis/test_parallel_pool.py`` and
``tests/core/test_batch.py`` pin this cell by cell).

Two deliberate semantic notes:

* The vectorized tier exploits that compiled casts are RNG-free (the
  :class:`~repro.core.batch.TabularStrategy` contract): every seed of a
  cell produces the identical run, so the kernel executes one slot per
  cell and replicates the per-seed metrics.  The parity tests confirm
  this equals running every seed.
* Telemetry in batch mode is **counters-only** — totals equal the serial
  sweep's, but there is no ordered event stream, so traces/certificates
  are unavailable (see "Batched execution" in ``docs/PERFORMANCE.md``).

Cell timing (``wall_time_s``/``cpu_time_s``) is attributed per chunk and
split evenly across the chunk's cells — lockstep cells do not have
individually measurable times.  Timing is excluded from cell equality.
"""

from __future__ import annotations

import copy
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import RunMetrics, collect_metrics
from repro.analysis.runner import CellTask, CellTelemetry, SweepCell
from repro.core.batch import (
    BatchItem,
    TabularCast,
    TabularOutcome,
    compile_tabular_cast,
    run_execution_batch,
    run_tabular_batch,
)
from repro.obs.tracer import Tracer

#: Default lockstep width: big enough to amortise per-round numpy/Python
#: overhead, small enough to keep per-chunk arrays cache-resident.
DEFAULT_BATCH_WIDTH = 1024


class BatchExecutor:
    """Lockstep sweep execution — satisfies ``SweepExecutorLike``.

    Parameters
    ----------
    width:
        Maximum number of cells advanced together in one lockstep chunk
        (both tiers).  Width changes scheduling only, never results.
    """

    #: Ledger identity (see :class:`repro.obs.ledger.SweepManifest`).
    backend_name = "batch"

    def __init__(self, width: int = DEFAULT_BATCH_WIDTH) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1: {width}")
        self._width = width

    @property
    def batch_width(self) -> int:
        return self._width

    def map_cells(self, tasks: Sequence[CellTask]) -> List[SweepCell]:
        results: List[Optional[SweepCell]] = [None] * len(tasks)
        # Vector chunks must share (alphabet, horizon, telemetry); the
        # grouping is deterministic (dict preserves first-seen order).
        vector: Dict[
            Tuple[Tuple[str, ...], int, bool],
            List[Tuple[int, CellTask, TabularCast]],
        ] = {}
        scalar: List[Tuple[int, CellTask]] = []
        # Sweeps tile a handful of strategy objects across many cells
        # (the tasks hold references, so ids stay stable for the cache's
        # lifetime); compiling each distinct cast once turns the compile
        # cost from O(cells) into O(distinct casts).
        compiled: Dict[
            Tuple[int, int, int, int], Optional[TabularCast]
        ] = {}
        for pos, task in enumerate(tasks):
            cache_key = (
                id(task.user), id(task.server), id(task.goal), id(task.channel)
            )
            if cache_key in compiled:
                cast = compiled[cache_key]
            else:
                cast = compile_tabular_cast(
                    task.user, task.server, task.goal.world, task.goal,
                    channel=task.channel,
                )
                compiled[cache_key] = cast
            if cast is None:
                scalar.append((pos, task))
            else:
                key = (cast.alphabet, task.max_rounds, task.telemetry)
                vector.setdefault(key, []).append((pos, task, cast))
        for (_, max_rounds, telemetry), entries in vector.items():
            for start in range(0, len(entries), self._width):
                _run_vector_chunk(
                    entries[start : start + self._width],
                    max_rounds, telemetry, results,
                )
        for start in range(0, len(scalar), self._width):
            _run_scalar_chunk(scalar[start : start + self._width], results)
        return [cell for cell in results if cell is not None]


def _vector_metrics(outcome: TabularOutcome) -> RunMetrics:
    """Exactly what ``collect_metrics`` extracts from a tabular cast's run.

    Compiled casts never halt, produce no output, and carry no
    universal-user state, so the optional fields are all ``None`` — the
    parity suite checks this equals the scalar path field by field.
    """
    return RunMetrics(
        achieved=outcome.achieved,
        halted=False,
        rounds=outcome.rounds,
        bad_prefixes=outcome.bad_prefixes,
        last_bad_round=outcome.last_bad_round,
    )


def _vector_telemetry(outcome: TabularOutcome, n_seeds: int) -> CellTelemetry:
    """Reconstruct the serial tracer's counter tuple for one cell.

    Counter *order* follows creation order in a serial run: the tracer
    creates ``messages``/``message_bytes`` before ``rounds`` iff the first
    round of the first seed emitted a message (MessageSent events precede
    that round's RoundExecuted); compiled casts are deterministic, so all
    seeds replay the first.
    """
    rounds = ("rounds", outcome.rounds * n_seeds)
    if outcome.messages == 0:
        return CellTelemetry(counters=(rounds,))
    sent = (
        ("messages", outcome.messages * n_seeds),
        ("message_bytes", outcome.message_bytes * n_seeds),
    )
    if outcome.first_round_messages:
        return CellTelemetry(counters=(*sent, rounds))
    return CellTelemetry(counters=(rounds, *sent))


def _run_vector_chunk(
    entries: Sequence[Tuple[int, CellTask, TabularCast]],
    max_rounds: int,
    telemetry: bool,
    results: List[Optional[SweepCell]],
) -> None:
    """One vectorized lockstep chunk: one kernel slot per cell."""
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    outcomes = run_tabular_batch(
        [cast for _, _, cast in entries],
        max_rounds=max_rounds,
        count_messages=telemetry,
    )
    wall = round((time.perf_counter() - wall_start) / len(entries), 6)
    cpu = round((time.process_time() - cpu_start) / len(entries), 6)
    for (pos, task, _), outcome in zip(entries, outcomes):
        metrics = _vector_metrics(outcome)
        results[pos] = SweepCell(
            user_name=task.user.name,
            server_name=task.server.name,
            runs=tuple(metrics for _ in task.seeds),
            telemetry=(
                _vector_telemetry(outcome, len(task.seeds)) if telemetry else None
            ),
            channel_name=None,
            wall_time_s=wall,
            cpu_time_s=cpu,
        )


def _run_scalar_chunk(
    entries: Sequence[Tuple[int, CellTask]],
    results: List[Optional[SweepCell]],
) -> None:
    """One scalar lockstep chunk: every (cell, seed) pair is one slot.

    Cells needing per-cell telemetry get a *copied* user so each copy can
    carry its own borrowed ``tracer`` while slots interleave (serial
    sweeps borrow-and-restore sequentially; lockstep cannot).  A user
    that refuses to ``deepcopy`` falls back to running its cell serially
    — a semantics-preserving escape hatch, like the scalar fallback of
    the vector tier.
    """
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    items: List[BatchItem] = []
    spans: List[Tuple[int, CellTask, Optional[Tracer], int]] = []
    for pos, task in entries:
        tracer = Tracer() if task.telemetry else None
        user = task.user
        if task.telemetry and hasattr(user, "tracer"):
            try:
                user = copy.deepcopy(task.user)
            except Exception:
                results[pos] = task.run()
                continue
            user.tracer = tracer
        spans.append((pos, task, tracer, len(items)))
        for seed in task.seeds:
            items.append(
                BatchItem(
                    user=user,
                    server=task.server,
                    world=task.goal.world,
                    seed=seed,
                    max_rounds=task.max_rounds,
                    recording=task.recording,
                    channel=task.channel,
                    tracer=tracer,
                )
            )
    executions = run_execution_batch(items)
    wall = round((time.perf_counter() - wall_start) / len(entries), 6)
    cpu = round((time.process_time() - cpu_start) / len(entries), 6)
    for pos, task, tracer, first in spans:
        runs = tuple(
            collect_metrics(execution, task.goal)
            for execution in executions[first : first + len(task.seeds)]
        )
        results[pos] = SweepCell(
            user_name=task.user.name,
            server_name=task.server.name,
            runs=runs,
            telemetry=(
                CellTelemetry.from_tracer(tracer) if tracer is not None else None
            ),
            channel_name=(
                None
                if task.channel is None
                else getattr(task.channel, "name", "channel")
            ),
            wall_time_s=wall,
            cpu_time_s=cpu,
        )


__all__ = ["DEFAULT_BATCH_WIDTH", "BatchExecutor"]
