"""ASCII tables and series for benchmark output.

The paper has no tables of its own, so the benchmarks *are* the tables;
these helpers render them uniformly (aligned columns, explicit headers)
so EXPERIMENTS.md can quote benchmark output verbatim.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple, Union

Cell = Union[str, int, float, bool, None]


def _render(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["a", "b"], [[1, 2.5], ["x", None]]))
    a | b
    --+-----
    1 | 2.50
    x | -
    """
    rendered: List[List[str]] = [list(headers)]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}: {row}"
            )
        rendered.append([_render(cell) for cell in row])
    widths = [
        max(len(r[col]) for r in rendered) for col in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(f"== {title} ==")
    header_line = " | ".join(h.ljust(w) for h, w in zip(rendered[0], widths))
    lines.append(header_line.rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_telemetry(
    entries: Sequence[Tuple[str, Mapping[str, Cell]]], title: str = "telemetry"
) -> str:
    """Render labelled counter snapshots as one aligned table.

    ``entries`` is a sequence of ``(label, counters)`` pairs — e.g. one per
    sweep cell.  Columns are the union of counter names in first-seen
    order, so cells missing a counter (a non-universal user has no
    ``switches``) render as ``-`` rather than breaking alignment.

    >>> print(format_telemetry([("a", {"rounds": 3}), ("b", {"rounds": 5, "switches": 1})]))
    == telemetry ==
    cell | rounds | switches
    -----+--------+---------
    a    | 3      | -
    b    | 5      | 1
    """
    columns: List[str] = []
    for _, counters in entries:
        for name in counters:
            if name not in columns:
                columns.append(name)
    rows: List[List[Cell]] = [
        [label] + [counters.get(name) for name in columns]
        for label, counters in entries
    ]
    return format_table(["cell"] + columns, rows, title=title)


def format_series(
    name: str, points: Sequence[Tuple[Cell, Cell]], x_label: str = "x", y_label: str = "y"
) -> str:
    """Render an (x, y) series — the textual stand-in for a figure."""
    return format_table([x_label, y_label], points, title=name)


def format_sparkline(values: Sequence[float], width: int = 60) -> str:
    """A unicode sparkline for quick visual trends in benchmark logs.

    Down-samples to ``width`` buckets (max within each bucket) and maps onto
    eight block heights; returns an empty string for no data.
    """
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    if len(values) > width:
        bucket = len(values) / width
        sampled = [
            max(values[int(i * bucket): max(int(i * bucket) + 1, int((i + 1) * bucket))])
            for i in range(width)
        ]
    else:
        sampled = list(values)
    low = min(sampled)
    high = max(sampled)
    span = high - low
    if span == 0:
        return blocks[0] * len(sampled)
    return "".join(
        blocks[min(len(blocks) - 1, int((v - low) / span * len(blocks)))]
        for v in sampled
    )
