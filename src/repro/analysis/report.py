"""One-command reproduction summary: ``python -m repro.analysis.report``.

Runs a fast, self-contained subset of every experiment family and prints
one verdict line per claim — the ninety-second version of EXPERIMENTS.md
for someone who just installed the package.  The full experiments (bigger
classes, more seeds, the printed tables) live in ``benchmarks/``; this
module trades their coverage for speed and zero pytest dependency.

Each check returns ``(claim, ok, detail)``; the process exits non-zero if
any check fails, so the report doubles as a smoke gate for packaging.

The report ends with a telemetry section — the E1 sweep re-run with
``telemetry=True`` — showing the per-cell counters (rounds, messages,
bytes, sensing verdicts, switches) that :mod:`repro.obs` collects; see
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import random
import sys
from typing import Callable, List, Tuple

from repro.analysis.runner import sweep
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.mathx.modular import Field

Check = Tuple[str, bool, str]


def check_compact_universal(seed: int = 1) -> Check:
    """E1: compact universal user over an advisor class.

    ``seed`` pins the random law; the default reproduces the published
    report line (RL005: randomness enters through the signature).
    """
    from repro.servers.advisors import advisor_server_class
    from repro.universal.compact import CompactUniversalUser
    from repro.universal.enumeration import ListEnumeration
    from repro.users.control_users import follower_user_class
    from repro.worlds.control import control_goal, control_sensing, random_law

    codecs = codec_family(4)
    law = random_law(random.Random(seed))
    goal = control_goal(law)
    user = CompactUniversalUser(
        ListEnumeration(follower_user_class(codecs)), control_sensing()
    )
    result = sweep(
        user, advisor_server_class(law, codecs), goal, seeds=(0,), max_rounds=1500
    )
    return (
        "E1  compact universal succeeds with every helpful advisor",
        result.universal_success,
        f"{len(result.cells)} servers",
    )


def check_finite_universal() -> Check:
    """E2: finite universal printing over dialects x codecs."""
    from repro.servers.printer_servers import DIALECTS, printer_server_class
    from repro.universal.enumeration import ListEnumeration
    from repro.universal.finite import FiniteUniversalUser
    from repro.universal.schedules import doubling_sweep_trials
    from repro.users.printer_users import printer_user_class
    from repro.worlds.printer import printing_goal, printing_sensing

    codecs = codec_family(2)
    goal = printing_goal(["report"])
    servers = printer_server_class(DIALECTS, codecs)
    user = FiniteUniversalUser(
        ListEnumeration(printer_user_class(DIALECTS, codecs)),
        printing_sensing(),
        schedule_factory=lambda cap: doubling_sweep_trials(
            None if cap is None else cap - 1
        ),
    )
    result = sweep(user, servers, goal, seeds=(0,), max_rounds=3000)
    return (
        "E2  finite universal prints on every dialect/codec printer",
        result.universal_success,
        f"{len(result.cells)} printers",
    )


def check_delegation(seed: int = 2) -> Check:
    """E5: TQBF delegation — correct with honest, never wrong with cheaters.

    ``seed`` pins the random TQBF instance; the default reproduces the
    published report line.
    """
    from repro.qbf.generators import random_qbf
    from repro.servers.provers import CheatingProverServer, HonestProverServer
    from repro.servers.wrappers import EncodedServer
    from repro.universal.enumeration import ListEnumeration
    from repro.universal.finite import FiniteUniversalUser
    from repro.universal.schedules import doubling_sweep_trials
    from repro.users.delegation_users import delegation_user_class
    from repro.worlds.computation import delegation_goal, delegation_sensing

    field = Field()
    codecs = codec_family(3)
    goal = delegation_goal([random_qbf(random.Random(seed), 3)])

    def universal() -> FiniteUniversalUser:
        return FiniteUniversalUser(
            ListEnumeration(delegation_user_class(codecs, field)),
            delegation_sensing(),
            schedule_factory=lambda cap: doubling_sweep_trials(
                None if cap is None else cap - 1
            ),
        )

    honest_ok = all(
        goal.evaluate(
            run_execution(
                universal(), EncodedServer(HonestProverServer(field), codec),
                goal.world, max_rounds=4000, seed=0,
            )
        ).achieved
        for codec in codecs
    )
    cheat_run = run_execution(
        universal(), CheatingProverServer(field, "constant"), goal.world,
        max_rounds=2000, seed=0,
    )
    never_fooled = (not cheat_run.halted) or goal.evaluate(cheat_run).achieved
    return (
        "E5  delegation: correct vs honest provers, never fooled by cheaters",
        honest_ok and never_fooled,
        f"{len(codecs)} codecs + 1 cheater",
    )


def check_overhead_necessity() -> Check:
    """E3: password class forces enumeration-order trials."""
    from repro.comm.codecs import IdentityCodec
    from repro.servers.password import all_passwords, password_server_class
    from repro.universal.compact import CompactUniversalUser
    from repro.universal.enumeration import ListEnumeration
    from repro.users.control_users import AdvisorFollowingUser, password_user_class
    from repro.worlds.control import control_goal, control_sensing

    law = {"red": "blue", "blue": "red"}
    goal = control_goal(law)
    bits = 3
    users = password_user_class(
        all_passwords(bits), lambda: AdvisorFollowingUser(IdentityCodec())
    )
    server = password_server_class(bits, law)[5]
    user = CompactUniversalUser(ListEnumeration(users), control_sensing())
    result = run_execution(user, server, goal.world, max_rounds=6000, seed=0)
    state = result.rounds[-1].user_state_after
    ok = goal.evaluate(result).achieved and state.switches == 5
    return (
        "E3  password lower bound: trials equal the password's position",
        ok,
        f"switches={state.switches} (expected 5)",
    )


def check_learning_gap() -> Check:
    """E8: halving beats enumeration on late targets."""
    from repro.online.equivalence import (
        enumeration_user,
        halving_user,
        mistakes_in_world,
    )

    domain, theta = 16, 14
    enum = mistakes_in_world(
        enumeration_user(domain), theta, domain, horizon=2500, seed=1
    )
    halv = mistakes_in_world(halving_user(domain), theta, domain, horizon=2500, seed=1)
    return (
        "E8  halving (log) beats enumeration (linear) on late targets",
        halv < enum,
        f"halving={halv} vs enumeration={enum}",
    )


def check_multiparty() -> Check:
    """E10/E13: reduction preserves behaviour; universal newcomer joins."""
    from repro.multiparty.babel import (
        agreement_sensing,
        babel_rendezvous_goal,
        babel_server,
        babel_user_class,
        community_names,
    )
    from repro.universal.compact import CompactUniversalUser
    from repro.universal.enumeration import ListEnumeration

    codecs = codec_family(3)
    names = community_names(3)
    goal = babel_rendezvous_goal(names)
    server = babel_server(codecs[2], names, ["red", "green"])
    user = CompactUniversalUser(
        ListEnumeration(babel_user_class(codecs, names)), agreement_sensing()
    )
    result = run_execution(user, server, goal.world, max_rounds=1000, seed=0)
    return (
        "E13 universal newcomer joins a community of unknown language",
        goal.evaluate(result).achieved,
        "3-party reduction",
    )


def telemetry_section(seed: int = 1) -> str:
    """The E1 sweep's per-cell counters, rendered as a table.

    ``seed`` pins the random law, matching :func:`check_compact_universal`.

    Universal-user rows carry sensing/switch/trial counts because
    ``sweep(telemetry=True)`` threads one tracer through both the engine
    and the user; a plain user would show engine counters only.
    """
    from repro.analysis.tables import format_telemetry
    from repro.servers.advisors import advisor_server_class
    from repro.universal.compact import CompactUniversalUser
    from repro.universal.enumeration import ListEnumeration
    from repro.users.control_users import follower_user_class
    from repro.worlds.control import control_goal, control_sensing, random_law

    codecs = codec_family(4)
    law = random_law(random.Random(seed))
    goal = control_goal(law)
    user = CompactUniversalUser(
        ListEnumeration(follower_user_class(codecs)), control_sensing()
    )
    result = sweep(
        user, advisor_server_class(law, codecs), goal,
        seeds=(0,), max_rounds=1500, telemetry=True,
    )
    entries = [
        (cell.server_name, cell.telemetry.as_dict()) for cell in result.cells
    ]
    return format_telemetry(
        entries, title=f"telemetry: E1 sweep ({result.goal_name})"
    )


ALL_CHECKS: List[Callable[[], Check]] = [
    check_compact_universal,
    check_finite_universal,
    check_overhead_necessity,
    check_delegation,
    check_learning_gap,
    check_multiparty,
]


def main(argv: List[str] = ()) -> int:
    """Run every check; print one verdict line each; return the exit code."""
    print("repro — goal-oriented communication, fast reproduction report")
    print("(full tables: pytest benchmarks/ --benchmark-only -s)\n")
    failures = 0
    for check in ALL_CHECKS:
        claim, ok, detail = check()
        mark = "ok " if ok else "FAIL"
        print(f"  [{mark}] {claim}  ({detail})")
        if not ok:
            failures += 1
    print()
    print(telemetry_section())
    print()
    print("all claims reproduced" if failures == 0 else f"{failures} claim(s) FAILED")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
