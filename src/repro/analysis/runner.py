"""Experiment runner: sweep a user over a server class with seeds.

The benchmarks all have the same skeleton — "pair this user with every
member of this server class, under these seeds, and report per-server
metrics" — so it lives here once.  The runner is deliberately dumb and
sequential: executions are cheap, and determinism (fixed seed schedule, no
shared state across runs) is worth more to a reproduction than parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.analysis.metrics import RunMetrics, collect_metrics, success_rate
from repro.core.execution import run_execution
from repro.core.goals import Goal
from repro.core.strategy import ServerStrategy, UserStrategy


@dataclass(frozen=True)
class SweepCell:
    """All runs of one (user, server) pairing."""

    user_name: str
    server_name: str
    runs: Tuple[RunMetrics, ...]

    @property
    def success_rate(self) -> float:
        return success_rate(self.runs)

    @property
    def all_achieved(self) -> bool:
        return all(m.achieved for m in self.runs)

    def mean_rounds(self) -> float:
        achieved = [m.rounds for m in self.runs if m.achieved]
        if not achieved:
            return float("nan")
        return sum(achieved) / len(achieved)


@dataclass(frozen=True)
class SweepResult:
    """A full user × server-class sweep."""

    goal_name: str
    cells: Tuple[SweepCell, ...]

    @property
    def universal_success(self) -> bool:
        """Did the user succeed with *every* server, on *every* seed?

        This is the paper's universality statement, checked literally.
        """
        return all(cell.all_achieved for cell in self.cells)

    def failures(self) -> List[SweepCell]:
        return [cell for cell in self.cells if not cell.all_achieved]


def sweep(
    user: UserStrategy,
    servers: Sequence[ServerStrategy],
    goal: Goal,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    max_rounds: int = 2000,
) -> SweepResult:
    """Run ``user`` against every server under every seed."""
    cells: List[SweepCell] = []
    for server in servers:
        runs = []
        for seed in seeds:
            execution = run_execution(
                user, server, goal.world, max_rounds=max_rounds, seed=seed
            )
            runs.append(collect_metrics(execution, goal))
        cells.append(
            SweepCell(user_name=user.name, server_name=server.name, runs=tuple(runs))
        )
    return SweepResult(goal_name=goal.name, cells=tuple(cells))


def sweep_goals(
    user_factory: Callable[[], UserStrategy],
    pairs: Sequence[Tuple[Goal, ServerStrategy]],
    *,
    seeds: Sequence[int] = (0, 1),
    max_rounds: int = 2000,
) -> List[SweepCell]:
    """Sweep over (goal, server) pairs — for world-class non-determinism.

    Used when the adversary picks the *world* too (e.g. one control goal
    per hidden law): each pair gets a fresh user instance from the factory.
    """
    cells: List[SweepCell] = []
    for goal, server in pairs:
        user = user_factory()
        runs = []
        for seed in seeds:
            execution = run_execution(
                user, server, goal.world, max_rounds=max_rounds, seed=seed
            )
            runs.append(collect_metrics(execution, goal))
        cells.append(
            SweepCell(user_name=user.name, server_name=server.name, runs=tuple(runs))
        )
    return cells
