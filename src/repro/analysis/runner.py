"""Experiment runner: sweep a user over a server class with seeds.

The benchmarks all have the same skeleton — "pair this user with every
member of this server class, under these seeds, and report per-server
metrics" — so it lives here once.  The runner is deliberately dumb and
sequential: executions are cheap, and determinism (fixed seed schedule, no
shared state across runs) is worth more to a reproduction than parallelism.

With ``telemetry=True`` the runner attaches one counters-only
:class:`~repro.obs.Tracer` per cell (shared across that cell's seeds) and
snapshots the totals into :attr:`SweepCell.telemetry` — rounds, messages,
bytes, and, for universal users, sensing/switch/trial counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import RunMetrics, collect_metrics, success_rate
from repro.core.execution import run_execution
from repro.core.goals import Goal
from repro.core.strategy import ServerStrategy, UserStrategy
from repro.obs.tracer import Tracer


@dataclass(frozen=True)
class CellTelemetry:
    """Counter totals for one sweep cell, aggregated over its seeds.

    ``counters`` preserves the tracer's creation order as an immutable
    tuple of ``(name, value)`` pairs; :meth:`as_dict` re-inflates it.
    User-level counters (``switches``, ``sensing_negative``, …) appear
    only when the swept user exposes a ``tracer`` attribute (the
    universal users do).
    """

    counters: Tuple[Tuple[str, int], ...]

    @staticmethod
    def from_tracer(tracer: Tracer) -> "CellTelemetry":
        return CellTelemetry(
            counters=tuple(
                (name, value)
                for name, value in tracer.counters.snapshot().items()
                if isinstance(value, int)
            )
        )

    def as_dict(self) -> Dict[str, int]:
        return dict(self.counters)

    def get(self, name: str, default: int = 0) -> int:
        return self.as_dict().get(name, default)


@dataclass(frozen=True)
class SweepCell:
    """All runs of one (user, server) pairing."""

    user_name: str
    server_name: str
    runs: Tuple[RunMetrics, ...]
    telemetry: Optional[CellTelemetry] = None

    @property
    def success_rate(self) -> float:
        return success_rate(self.runs)

    @property
    def all_achieved(self) -> bool:
        return all(m.achieved for m in self.runs)

    def mean_rounds(self) -> float:
        achieved = [m.rounds for m in self.runs if m.achieved]
        if not achieved:
            return float("nan")
        return sum(achieved) / len(achieved)


@dataclass(frozen=True)
class SweepResult:
    """A full user × server-class sweep."""

    goal_name: str
    cells: Tuple[SweepCell, ...]

    @property
    def universal_success(self) -> bool:
        """Did the user succeed with *every* server, on *every* seed?

        This is the paper's universality statement, checked literally.
        """
        return all(cell.all_achieved for cell in self.cells)

    def failures(self) -> List[SweepCell]:
        return [cell for cell in self.cells if not cell.all_achieved]


def _run_cell(
    user: UserStrategy,
    server: ServerStrategy,
    goal: Goal,
    seeds: Sequence[int],
    max_rounds: int,
    telemetry: bool,
) -> SweepCell:
    """One (user, server) cell: all seeds, optional shared-tracer telemetry."""
    tracer = Tracer() if telemetry else None
    # Universal users expose a public, reassignable ``tracer`` attribute;
    # borrow it for the cell so user-level events land in the same counters.
    user_traced = telemetry and hasattr(user, "tracer")
    saved = user.tracer if user_traced else None
    if user_traced:
        user.tracer = tracer
    try:
        runs = []
        for seed in seeds:
            execution = run_execution(
                user, server, goal.world,
                max_rounds=max_rounds, seed=seed, tracer=tracer,
            )
            runs.append(collect_metrics(execution, goal))
    finally:
        if user_traced:
            user.tracer = saved
    return SweepCell(
        user_name=user.name,
        server_name=server.name,
        runs=tuple(runs),
        telemetry=CellTelemetry.from_tracer(tracer) if telemetry else None,
    )


def sweep(
    user: UserStrategy,
    servers: Sequence[ServerStrategy],
    goal: Goal,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    max_rounds: int = 2000,
    telemetry: bool = False,
) -> SweepResult:
    """Run ``user`` against every server under every seed.

    ``telemetry=True`` additionally aggregates per-cell counters (see
    :class:`CellTelemetry`); it does not change any run's outcome.
    """
    cells: List[SweepCell] = []
    for server in servers:
        cells.append(_run_cell(user, server, goal, seeds, max_rounds, telemetry))
    return SweepResult(goal_name=goal.name, cells=tuple(cells))


def sweep_goals(
    user_factory: Callable[[], UserStrategy],
    pairs: Sequence[Tuple[Goal, ServerStrategy]],
    *,
    seeds: Sequence[int] = (0, 1),
    max_rounds: int = 2000,
    telemetry: bool = False,
) -> List[SweepCell]:
    """Sweep over (goal, server) pairs — for world-class non-determinism.

    Used when the adversary picks the *world* too (e.g. one control goal
    per hidden law): each pair gets a fresh user instance from the factory.
    """
    cells: List[SweepCell] = []
    for goal, server in pairs:
        user = user_factory()
        cells.append(_run_cell(user, server, goal, seeds, max_rounds, telemetry))
    return cells
