"""Experiment runner: sweep a user over a server class with seeds.

The benchmarks all have the same skeleton — "pair this user with every
member of this server class, under these seeds, and report per-server
metrics" — so it lives here once.  Cells are *shared-nothing*: every run
derives all randomness from its own seed and no state crosses cells, which
is what lets a sweep be executed serially (the default, and the reference
semantics) or fanned out across processes via ``executor=`` (see
:mod:`repro.analysis.parallel`) with byte-identical results — same seeds
in, equal :class:`SweepResult` out, regardless of backend or worker count.

With ``telemetry=True`` the runner attaches one counters-only
:class:`~repro.obs.Tracer` per cell (shared across that cell's seeds) and
snapshots the totals into :attr:`SweepCell.telemetry` — rounds, messages,
bytes, and, for universal users, sensing/switch/trial counts.  Because the
tracer is per-cell, a parallel sweep aggregates into exactly the totals a
serial sweep produces; :func:`merge_telemetry` further folds cell totals
into sweep-wide totals (see ``docs/OBSERVABILITY.md``).

``recording=`` selects the engine's retention policy for every run in the
sweep; metric-only sweeps should pass
:data:`~repro.core.execution.METRICS_RECORDING` to skip per-round history
allocations (see ``docs/PERFORMANCE.md``).

``ledger_dir=`` writes run provenance — one :class:`repro.obs.ledger.RunManifest`
per cell plus a linking sweep manifest — after the cells return, so every
sweep output stays attributable to the seeds/config/version that produced
it (see the "Run ledger" section of ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

if TYPE_CHECKING:
    from repro.obs.ledger import SweepManifest

from repro.analysis.metrics import RunMetrics, collect_metrics, success_rate
from repro.core.execution import (
    FULL_RECORDING,
    FaultyChannelLike,
    RecordingPolicy,
    run_execution,
)
from repro.core.goals import Goal
from repro.core.strategy import ServerStrategy, UserStrategy
from repro.obs.tracer import Tracer


@dataclass(frozen=True)
class CellTelemetry:
    """Counter totals for one sweep cell, aggregated over its seeds.

    ``counters`` preserves the tracer's creation order as an immutable
    tuple of ``(name, value)`` pairs; :meth:`as_dict` re-inflates it
    (once — the dict is cached on first use).  User-level counters
    (``switches``, ``sensing_negative``, …) appear only when the swept
    user exposes a ``tracer`` attribute (the universal users do).
    """

    counters: Tuple[Tuple[str, int], ...]
    _dict_cache: Optional[Dict[str, int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @staticmethod
    def from_tracer(tracer: Tracer) -> "CellTelemetry":
        return CellTelemetry(
            counters=tuple(
                (name, value)
                for name, value in tracer.counters.snapshot().items()
                if isinstance(value, int)
            )
        )

    def as_dict(self) -> Dict[str, int]:
        """The counters as a name→value dict (built once, then cached)."""
        cached = self._dict_cache
        if cached is None:
            cached = dict(self.counters)
            # Frozen dataclass: route the one-time cache fill around the
            # immutability guard.  The cache never affects eq/hash/repr.
            object.__setattr__(self, "_dict_cache", cached)
        return cached

    def get(self, name: str, default: int = 0) -> int:
        return self.as_dict().get(name, default)


def merge_telemetry(
    telemetries: Sequence[Optional[CellTelemetry]],
) -> CellTelemetry:
    """Fold per-cell counter totals into sweep-wide totals.

    Counter order follows first appearance across the inputs, so merging
    the cells of a parallel sweep (whatever order the workers finished
    in, since cells are returned in deterministic cell order) equals
    merging the serial sweep's cells.  ``None`` entries (cells swept with
    ``telemetry=False``) are skipped.
    """
    totals: Dict[str, int] = {}
    for telemetry in telemetries:
        if telemetry is None:
            continue
        for name, value in telemetry.counters:
            totals[name] = totals.get(name, 0) + value
    return CellTelemetry(counters=tuple(totals.items()))


@dataclass(frozen=True)
class SweepCell:
    """All runs of one (user, server) pairing.

    ``channel_name`` names the fault-channel configuration the cell ran
    under (``None`` = perfect link), distinguishing the cells of a
    ``faults=`` sweep that share a server.
    """

    user_name: str
    server_name: str
    runs: Tuple[RunMetrics, ...]
    telemetry: Optional[CellTelemetry] = None
    channel_name: Optional[str] = None
    #: Wall/CPU seconds the cell took where it ran (its worker process for
    #: parallel sweeps).  Excluded from equality — the determinism contract
    #: (`parallel == serial`) is about *results*, never timing — and read
    #: by the run ledger (see :func:`sweep`'s ``ledger_dir``).
    wall_time_s: float = field(default=0.0, compare=False)
    cpu_time_s: float = field(default=0.0, compare=False)

    @property
    def success_rate(self) -> float:
        return success_rate(self.runs)

    @property
    def all_achieved(self) -> bool:
        return all(m.achieved for m in self.runs)

    def mean_rounds(self) -> float:
        achieved = [m.rounds for m in self.runs if m.achieved]
        if not achieved:
            return float("nan")
        return sum(achieved) / len(achieved)


@dataclass(frozen=True)
class SweepResult:
    """A full user × server-class sweep."""

    goal_name: str
    cells: Tuple[SweepCell, ...]

    @property
    def universal_success(self) -> bool:
        """Did the user succeed with *every* server, on *every* seed?

        This is the paper's universality statement, checked literally.
        """
        return all(cell.all_achieved for cell in self.cells)

    def failures(self) -> List[SweepCell]:
        return [cell for cell in self.cells if not cell.all_achieved]


@dataclass(frozen=True)
class CellTask:
    """One sweep cell as a self-contained, picklable work item.

    Everything a worker needs to reproduce the cell: the strategies, the
    goal, the seed schedule, and the knobs.  Pickling the task is what
    gives a process worker its *fresh* user/server/goal instances — the
    shared-nothing guarantee — so every object reachable from a task must
    be picklable for :class:`~repro.analysis.parallel.ProcessExecutor`
    (module-level predicates instead of lambdas in sensing and referees).
    """

    index: int
    user: UserStrategy
    server: ServerStrategy
    goal: Goal
    seeds: Tuple[int, ...]
    max_rounds: int
    telemetry: bool
    recording: RecordingPolicy = FULL_RECORDING
    channel: Optional[FaultyChannelLike] = None

    def run(self) -> SweepCell:
        """Execute the cell in the current process."""
        return _run_cell(
            self.user, self.server, self.goal, self.seeds,
            self.max_rounds, self.telemetry, self.recording, self.channel,
        )


def _run_cell(
    user: UserStrategy,
    server: ServerStrategy,
    goal: Goal,
    seeds: Sequence[int],
    max_rounds: int,
    telemetry: bool,
    recording: RecordingPolicy = FULL_RECORDING,
    channel: Optional[FaultyChannelLike] = None,
) -> SweepCell:
    """One (user, server) cell: all seeds, optional shared-tracer telemetry."""
    tracer = Tracer() if telemetry else None
    # Universal users expose a public, reassignable ``tracer`` attribute;
    # borrow it for the cell so user-level events land in the same counters.
    user_traced = telemetry and hasattr(user, "tracer")
    saved = user.tracer if user_traced else None
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    if user_traced:
        user.tracer = tracer
    try:
        runs = []
        for seed in seeds:
            execution = run_execution(
                user, server, goal.world,
                max_rounds=max_rounds, seed=seed, tracer=tracer,
                recording=recording, channel=channel,
            )
            runs.append(collect_metrics(execution, goal))
    finally:
        if user_traced:
            user.tracer = saved
    return SweepCell(
        user_name=user.name,
        server_name=server.name,
        runs=tuple(runs),
        telemetry=CellTelemetry.from_tracer(tracer) if telemetry else None,
        channel_name=None if channel is None else getattr(channel, "name", "channel"),
        wall_time_s=round(time.perf_counter() - wall_start, 6),
        cpu_time_s=round(time.process_time() - cpu_start, 6),
    )


def sweep(
    user: UserStrategy,
    servers: Sequence[ServerStrategy],
    goal: Goal,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    max_rounds: int = 2000,
    telemetry: bool = False,
    recording: RecordingPolicy = FULL_RECORDING,
    executor: Optional["SweepExecutorLike"] = None,
    batch: Optional[int] = None,
    faults: Optional[Sequence[Optional[FaultyChannelLike]]] = None,
    ledger_dir: Optional[Union[str, Path]] = None,
    certify: bool = False,
) -> SweepResult:
    """Run ``user`` against every server under every seed.

    ``telemetry=True`` additionally aggregates per-cell counters (see
    :class:`CellTelemetry`); it does not change any run's outcome.
    ``executor`` dispatches the cells (``None`` = in-process, in order;
    see :mod:`repro.analysis.parallel` for the process-pool backend) —
    cells are independent, so every backend returns the same result.
    ``batch=N`` is shorthand for
    ``executor=repro.analysis.batch.BatchExecutor(width=N)`` — the
    lockstep backend that steps up to N cells together per round,
    vectorizing table-compilable casts (see ``docs/PERFORMANCE.md``);
    passing both ``executor`` and ``batch`` is a ``ValueError``.

    ``faults`` adds a degradation axis: a sequence of fault-channel
    configurations (``None`` entries mean a perfect link), crossed with
    the server class — the sweep covers ``len(servers) × len(faults)``
    cells, server-major, each tagged with its
    :attr:`SweepCell.channel_name`.  Omitting ``faults`` keeps the
    classical one-cell-per-server sweep.

    ``ledger_dir`` writes run provenance (see :mod:`repro.obs.ledger`):
    one ``cell-NNN-<run_id>.json`` manifest per cell — seeds, goal, user,
    server, channel (fault schedule included), recording policy, rounds,
    wall/CPU time — plus a top-level ``sweep.json`` linking them, so a
    directory of sweep outputs is self-describing.  Ledger writing
    happens after the cells return and never changes any result.

    ``certify=True`` (requires ``ledger_dir``) re-checks the written
    ledger's integrity — every cell manifest present and the sweep
    manifest's ``cells_sha256`` digest matching — raising
    :class:`repro.obs.certify.CertificationError` on any mismatch.
    """
    if certify and ledger_dir is None:
        raise ValueError("sweep(certify=True) requires ledger_dir")
    executor = _resolve_executor(executor, batch)
    channels = list(faults) if faults is not None else [None]
    tasks = [
        CellTask(
            index=i * len(channels) + j, user=user, server=server, goal=goal,
            seeds=tuple(seeds), max_rounds=max_rounds,
            telemetry=telemetry, recording=recording, channel=chan,
        )
        for i, server in enumerate(servers)
        for j, chan in enumerate(channels)
    ]
    wall_start = time.perf_counter()
    result = SweepResult(goal_name=goal.name, cells=tuple(_dispatch(tasks, executor)))
    if ledger_dir is not None:
        _write_sweep_ledger(
            result, tasks, Path(ledger_dir), time.perf_counter() - wall_start,
            backend=(
                "serial"
                if executor is None
                else getattr(executor, "backend_name", type(executor).__name__)
            ),
            batch_width=getattr(executor, "batch_width", None),
        )
        if certify:
            from repro.obs.certify import certify_sweep

            certify_sweep(Path(ledger_dir))
    return result


def _resolve_executor(
    executor: Optional["SweepExecutorLike"], batch: Optional[int]
) -> Optional["SweepExecutorLike"]:
    """Turn the ``batch=`` shorthand into a lockstep executor.

    Lazy import: sweeps that never batch (the default path) must not load
    the batch backend.
    """
    if batch is None:
        return executor
    if executor is not None:
        raise ValueError("pass either executor= or batch=, not both")
    from repro.analysis.batch import BatchExecutor

    return BatchExecutor(width=batch)


def _write_sweep_ledger(
    result: SweepResult,
    tasks: Sequence[CellTask],
    directory: Path,
    wall_time_s: float,
    *,
    backend: str = "serial",
    batch_width: Optional[int] = None,
) -> "SweepManifest":
    """One manifest per cell plus the linking sweep manifest.

    Deliberately a lazy import: the ledger is analysis-side code, and
    sweeps without ``ledger_dir`` (the hot path) must not load it.
    """
    from repro.obs.certify import sweep_cells_digest
    from repro.obs.ledger import RunManifest, SweepManifest, git_sha, write_manifest

    sha = git_sha()
    cell_files: List[str] = []
    for task, cell in zip(tasks, result.cells):
        manifest = RunManifest(
            kind="cell",
            goal=result.goal_name,
            user=cell.user_name,
            server=cell.server_name,
            channel=cell.channel_name,
            recording=task.recording.label,
            seeds=task.seeds,
            max_rounds=task.max_rounds,
            rounds=sum(m.rounds for m in cell.runs),
            achieved=sum(1 for m in cell.runs if m.achieved),
            halted=sum(1 for m in cell.runs if m.halted),
            wall_time_s=cell.wall_time_s,
            cpu_time_s=cell.cpu_time_s,
            git_sha=sha,
        )
        filename = f"cell-{task.index:03d}-{manifest.run_id()}.json"
        write_manifest(manifest, directory / filename)
        cell_files.append(filename)
    sweep_manifest = SweepManifest(
        goal=result.goal_name,
        user=tasks[0].user.name if tasks else "",
        cells=tuple(cell_files),
        seeds=tasks[0].seeds if tasks else (),
        max_rounds=tasks[0].max_rounds if tasks else 0,
        cells_sha256=sweep_cells_digest(directory, cell_files),
        wall_time_s=round(wall_time_s, 6),
        git_sha=sha,
        backend=backend,
        batch_width=batch_width,
    )
    write_manifest(sweep_manifest, directory / "sweep.json")
    return sweep_manifest


def sweep_goals(
    user_factory: Callable[[], UserStrategy],
    pairs: Sequence[Tuple[Goal, ServerStrategy]],
    *,
    seeds: Sequence[int] = (0, 1),
    max_rounds: int = 2000,
    telemetry: bool = False,
    recording: RecordingPolicy = FULL_RECORDING,
    executor: Optional["SweepExecutorLike"] = None,
    batch: Optional[int] = None,
) -> List[SweepCell]:
    """Sweep over (goal, server) pairs — for world-class non-determinism.

    Used when the adversary picks the *world* too (e.g. one control goal
    per hidden law): each pair gets a fresh user instance from the factory.
    ``batch=`` selects the lockstep backend exactly as in :func:`sweep`.
    """
    executor = _resolve_executor(executor, batch)
    tasks = [
        CellTask(
            index=i, user=user_factory(), server=server, goal=goal,
            seeds=tuple(seeds), max_rounds=max_rounds,
            telemetry=telemetry, recording=recording,
        )
        for i, (goal, server) in enumerate(pairs)
    ]
    return _dispatch(tasks, executor)


def _dispatch(
    tasks: Sequence[CellTask], executor: Optional["SweepExecutorLike"]
) -> List[SweepCell]:
    """Run the tasks on the chosen backend, results in cell order."""
    if executor is None:
        return [task.run() for task in tasks]
    return executor.map_cells(tasks)


@runtime_checkable
class SweepExecutorLike(Protocol):
    """Structural interface for ``executor=`` arguments.

    Concrete executors live in :mod:`repro.analysis.parallel`; anything
    with a conforming ``map_cells`` works — a Protocol, so custom
    backends need not inherit from anything and ``mypy --strict`` checks
    both implementations and call sites.  A backend may only change
    *where* cells run, never what they compute (the determinism contract
    tested by ``tests/analysis/test_parallel.py``).
    """

    def map_cells(self, tasks: Sequence[CellTask]) -> List[SweepCell]:
        """Run every task; return the cells sorted by ``task.index``."""
        ...
