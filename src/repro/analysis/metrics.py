"""Run metrics: what the experiments measure.

A :class:`RunMetrics` is the per-execution record the benchmarks aggregate;
:func:`collect_metrics` extracts one from an execution + goal pair, pulling
universal-user statistics (enumeration index, switch count) out of the
final user state when present.  :class:`Summary` holds the usual
order statistics over a batch.

Empty-batch contract
--------------------
The two aggregators are deliberately asymmetric on empty input:

* :func:`success_rate` returns **0.0** — it answers "what fraction of runs
  succeeded?", and claiming any success for zero runs would let an empty
  sweep pass a universality check vacuously;
* :meth:`Summary.of` returns ``count=0`` with **NaN** statistics — the
  mean/median/min/max of nothing is undefined, and NaN (unlike a sentinel
  like 0) poisons any arithmetic that forgets to check ``count`` first.

Both are exercised in ``tests/analysis/test_metrics.py``; check ``count``
(or the batch's truthiness) before consuming ``Summary`` statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.execution import ExecutionResult
from repro.core.goals import Goal, GoalOutcome
from repro.universal.compact import CompactUniversalState
from repro.universal.finite import FiniteUniversalState


@dataclass(frozen=True)
class RunMetrics:
    """One execution's worth of measurements."""

    achieved: bool
    halted: bool
    rounds: int
    switches: Optional[int] = None     # Compact universal: strategy switches.
    final_index: Optional[int] = None  # Compact universal: settled index.
    trials: Optional[int] = None       # Finite universal: trials started.
    bad_prefixes: Optional[int] = None # Compact goals: referee's count.
    last_bad_round: Optional[int] = None
    user_output: Optional[str] = None


def collect_metrics(execution: ExecutionResult, goal: Goal) -> RunMetrics:
    """Evaluate the goal and extract universal-user stats if available."""
    outcome: GoalOutcome = goal.evaluate(execution)
    switches = final_index = trials = None
    # The engine fills ``final_user_state`` under every recording policy;
    # the round-list fallback covers hand-built ExecutionResults in tests.
    state = execution.final_user_state
    if state is None and execution.rounds:
        state = execution.rounds[-1].user_state_after
    if state is not None:
        if isinstance(state, CompactUniversalState):
            switches = state.switches
            final_index = state.index
        elif isinstance(state, FiniteUniversalState):
            trials = state.trials_run
    verdict = outcome.compact_verdict
    return RunMetrics(
        achieved=outcome.achieved,
        halted=outcome.halted,
        rounds=outcome.rounds,
        switches=switches,
        final_index=final_index,
        trials=trials,
        bad_prefixes=None if verdict is None else verdict.bad_prefixes,
        last_bad_round=None if verdict is None else verdict.last_bad_round,
        user_output=outcome.user_output,
    )


@dataclass(frozen=True)
class Summary:
    """Order statistics over a batch of scalar observations."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float

    @property
    def is_empty(self) -> bool:
        """True when no observations were summarised (statistics are NaN)."""
        return self.count == 0

    @staticmethod
    def of(values: Sequence[float]) -> "Summary":
        """Summarise ``values``; an empty batch yields ``count=0`` and NaNs.

        See the module docstring for why this differs from
        :func:`success_rate`'s empty-batch 0.0.
        """
        if not values:
            return Summary(count=0, mean=math.nan, median=math.nan,
                           minimum=math.nan, maximum=math.nan)
        ordered = sorted(values)
        n = len(ordered)
        if n % 2:
            median = float(ordered[n // 2])
        else:
            median = (ordered[n // 2 - 1] + ordered[n // 2]) / 2.0
        return Summary(
            count=n,
            mean=sum(ordered) / n,
            median=median,
            minimum=float(ordered[0]),
            maximum=float(ordered[-1]),
        )

    def format(self, precision: int = 1) -> str:
        return (
            f"n={self.count} mean={self.mean:.{precision}f} "
            f"median={self.median:.{precision}f} "
            f"min={self.minimum:.{precision}f} max={self.maximum:.{precision}f}"
        )


def success_rate(batch: Sequence[RunMetrics]) -> float:
    """Fraction of achieved runs in a batch.

    An empty batch reads **0.0**, not NaN: a sweep with no runs has
    demonstrated no success, and universality claims must not pass
    vacuously (module docstring has the full contract).
    """
    if not batch:
        return 0.0
    return sum(1 for m in batch if m.achieved) / len(batch)


def rounds_summary(batch: Sequence[RunMetrics], achieved_only: bool = True) -> Summary:
    """Summary of rounds-to-completion (by default over successful runs)."""
    values: List[float] = [
        float(m.rounds) for m in batch if m.achieved or not achieved_only
    ]
    return Summary.of(values)
