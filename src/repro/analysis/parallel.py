"""Parallel sweep execution: pluggable backends for independent cells.

Every reproduction target is a sweep — "pair this user with every server
in the class, under these seeds" — and sweep cells are *shared-nothing* by
construction (all randomness derives from the per-run seed; nothing flows
between cells).  That makes a sweep embarrassingly parallel: this module
provides the executor backends that :func:`repro.analysis.runner.sweep`
and :func:`~repro.analysis.runner.sweep_goals` accept via ``executor=``.

* :class:`SerialExecutor` — runs the cells in-process, in order.  The
  reference backend: ``sweep(..., executor=SerialExecutor())`` is
  identical to ``sweep(...)`` with no executor.
* :class:`ProcessExecutor` — fans the cells out over a **persistent**
  :class:`concurrent.futures.ProcessPoolExecutor`.  The pool is created
  on first use and reused across ``sweep`` calls (process spawning was
  the dominant cost of the old per-call pool — the ``parallel_speedup:
  0.81`` regression in ``BENCH_history.jsonl``); the sweep's shared cast
  (user/server/goal/channel objects) is pickled **once** into a
  content-addressed blob that each worker unpickles once and caches, so
  per-chunk payloads are light :class:`CellRef` index tuples; and chunk
  sizes adapt to the measured per-cell cost (``chunk_size="auto"``).
* :class:`BatchProcessExecutor` — processes × lockstep: each worker runs
  its sub-grid through :class:`repro.analysis.batch.BatchExecutor`, so
  the process fan-out multiplies with the batched backend's per-process
  throughput (see "Batched execution" in ``docs/PERFORMANCE.md``).

Determinism contract: a backend may only change *where* cells run, never
what they compute.  The parity tests in ``tests/analysis/test_parallel.py``
and ``tests/analysis/test_parallel_pool.py`` assert serial/process
equality cell by cell, including telemetry totals.

Picklability: process workers require every object reachable from a task
to pickle — use module-level functions (not lambdas or closures) for
sensing predicates and referees.  The library's goal builders comply;
:func:`ensure_picklable` gives an actionable error before any worker is
spawned when a custom object does not.
"""

from __future__ import annotations

import atexit
import hashlib
import math
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor as _PoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TypeVar, Union

from repro.analysis.runner import CellTask, SweepCell
from repro.core.execution import (
    FULL_RECORDING,
    FaultyChannelLike,
    RecordingPolicy,
)
from repro.core.goals import Goal
from repro.core.strategy import ServerStrategy, UserStrategy
from repro.errors import ExecutionError

#: Adaptive chunking aims for work items of roughly this wall time — long
#: enough to amortise dispatch/IPC, short enough to load-balance.
TARGET_CHUNK_SECONDS = 0.2

_T = TypeVar("_T")


def run_cell_chunk(tasks: Sequence[CellTask]) -> List[Tuple[int, SweepCell]]:
    """Worker entry point: run a chunk of cells, tagged with their indices.

    Module-level (not a method) so it pickles by reference under every
    multiprocessing start method, including ``spawn``.
    """
    return [(task.index, task.run()) for task in tasks]


def ensure_picklable(task: CellTask) -> None:
    """Raise a diagnosable error if ``task`` cannot cross a process boundary.

    Checked eagerly so the failure names the real problem instead of
    surfacing as an opaque ``PicklingError`` from a worker's result
    future.  Lambdas inside sensing predicates or referees are the usual
    culprit — hoist them to module level.
    """
    try:
        pickle.dumps(task)
    except Exception as error:
        raise ExecutionError(
            f"sweep cell {task.index} ({task.user.name} vs {task.server.name}) "
            f"is not picklable for process execution: {error!r}. "
            "Process workers receive cells by pickling; replace lambdas/"
            "closures in sensing predicates and referees with module-level "
            "functions, or use SerialExecutor."
        ) from error


class SerialExecutor:
    """In-process, in-order execution — the reference backend.

    Satisfies :class:`~repro.analysis.runner.SweepExecutorLike`
    structurally (it is a Protocol; no inheritance needed).
    """

    backend_name = "serial"

    def map_cells(self, tasks: Sequence[CellTask]) -> List[SweepCell]:
        return [task.run() for task in tasks]


@dataclass(frozen=True)
class SweepCast:
    """A sweep's heavy shared objects, interned for one-time transfer.

    A sweep's tasks reference few *distinct* objects (typically one user,
    one goal, N servers); pickling them per :class:`CellTask` re-serialised
    the whole graph for every cell.  The cast holds each distinct object
    once; :class:`CellRef` entries index into it.
    """

    users: Tuple[UserStrategy, ...]
    servers: Tuple[ServerStrategy, ...]
    goals: Tuple[Goal, ...]
    channels: Tuple[FaultyChannelLike, ...]


@dataclass(frozen=True)
class CellRef:
    """A light, per-cell work item: indices into a :class:`SweepCast`."""

    index: int
    user: int
    server: int
    goal: int
    channel: Optional[int]
    seeds: Tuple[int, ...]
    max_rounds: int
    telemetry: bool
    recording: RecordingPolicy = FULL_RECORDING


def build_sweep_cast(
    tasks: Sequence[CellTask],
) -> Tuple[SweepCast, List[CellRef]]:
    """Intern the tasks' shared objects (by identity) into one cast."""
    users: List[UserStrategy] = []
    servers: List[ServerStrategy] = []
    goals: List[Goal] = []
    channels: List[FaultyChannelLike] = []
    seen: Dict[Tuple[str, int], int] = {}

    def intern(kind: str, pool: List[_T], obj: _T) -> int:
        key = (kind, id(obj))
        index = seen.get(key)
        if index is None:
            index = len(pool)
            seen[key] = index
            pool.append(obj)
        return index

    refs = [
        CellRef(
            index=task.index,
            user=intern("user", users, task.user),
            server=intern("server", servers, task.server),
            goal=intern("goal", goals, task.goal),
            channel=(
                None
                if task.channel is None
                else intern("channel", channels, task.channel)
            ),
            seeds=task.seeds,
            max_rounds=task.max_rounds,
            telemetry=task.telemetry,
            recording=task.recording,
        )
        for task in tasks
    ]
    return (
        SweepCast(
            users=tuple(users),
            servers=tuple(servers),
            goals=tuple(goals),
            channels=tuple(channels),
        ),
        refs,
    )


#: Worker-side cache of unpickled casts, keyed by blob digest: each worker
#: deserialises a given sweep's cast once, however many chunks it runs.
_WORKER_CASTS: Dict[str, SweepCast] = {}
_WORKER_CAST_LIMIT = 4


def _resolve_cast(digest: str, blob: bytes) -> SweepCast:
    cast = _WORKER_CASTS.get(digest)
    if cast is None:
        if len(_WORKER_CASTS) >= _WORKER_CAST_LIMIT:
            _WORKER_CASTS.clear()
        cast = pickle.loads(blob)
        _WORKER_CASTS[digest] = cast
    return cast


def run_cast_chunk(
    payload: Tuple[str, bytes, Tuple[CellRef, ...], Optional[int]],
) -> List[Tuple[int, SweepCell]]:
    """Worker entry point for cast-backed chunks.

    ``payload`` is ``(digest, blob, refs, batch_width)``; the cast blob is
    unpickled once per worker per digest (see :data:`_WORKER_CASTS`).
    ``batch_width=None`` runs the cells one at a time (plain process
    semantics); an integer width runs them through the lockstep
    :class:`~repro.analysis.batch.BatchExecutor` (processes × lockstep).
    """
    digest, blob, refs, batch_width = payload
    cast = _resolve_cast(digest, blob)
    tasks = [
        CellTask(
            index=ref.index,
            user=cast.users[ref.user],
            server=cast.servers[ref.server],
            goal=cast.goals[ref.goal],
            seeds=ref.seeds,
            max_rounds=ref.max_rounds,
            telemetry=ref.telemetry,
            recording=ref.recording,
            channel=None if ref.channel is None else cast.channels[ref.channel],
        )
        for ref in refs
    ]
    if batch_width is None:
        return [(task.index, task.run()) for task in tasks]
    from repro.analysis.batch import BatchExecutor

    cells = BatchExecutor(width=batch_width).map_cells(tasks)
    return [(task.index, cell) for task, cell in zip(tasks, cells)]


class ProcessExecutor:
    """Persistent-pool process execution with cast sharing and adaptive chunks.

    Satisfies :class:`~repro.analysis.runner.SweepExecutorLike`
    structurally.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.  The pool is created
        lazily on first :meth:`map_cells` and **reused across calls** —
        repeated sweeps pay process spawning once.  :meth:`close` shuts
        it down; the executor is also a context manager (``with
        ProcessExecutor() as executor: ...`` closes on exit), and an
        ``atexit`` hook — registered once per live pool, unregistered by
        :meth:`close` — catches anything still open at interpreter exit,
        so long-lived processes (e.g. one also running a
        :class:`~repro.serve.engine.ServeEngine`) never leak worker
        processes or their semaphores.
    chunk_size:
        Cells per submitted work item.  The default ``"auto"`` times the
        first cell in the parent process (its result is kept — no work is
        wasted) and sizes chunks so each work item runs for roughly
        :data:`TARGET_CHUNK_SECONDS`, capped to keep every worker busy.
        An explicit integer pins the chunk size.
    """

    backend_name = "process"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        *,
        chunk_size: Union[int, str] = "auto",
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1: {max_workers}")
        if isinstance(chunk_size, int):
            if chunk_size < 1:
                raise ValueError(f"chunk_size must be >= 1: {chunk_size}")
        elif chunk_size != "auto":
            raise ValueError(f"chunk_size must be an int or 'auto': {chunk_size!r}")
        self._max_workers = max_workers
        self._chunk_size = chunk_size
        self._pool: Optional[_PoolExecutor] = None
        self._atexit_registered = False

    @property
    def workers(self) -> int:
        """The pool size this executor runs (or will create) with."""
        return self._max_workers or os.cpu_count() or 1

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut the persistent pool down (idempotent; recreated on next use).

        Also drops this executor's ``atexit`` hook: a closed executor holds
        no worker processes, so there is nothing left for interpreter exit
        to clean up, and the hook must not pin the executor alive.  A later
        :meth:`map_cells` recreates both the pool and the hook.
        """
        pool = self._pool
        self._pool = None
        if self._atexit_registered:
            self._atexit_registered = False
            atexit.unregister(self.close)
        if pool is not None:
            pool.shutdown(wait=True)

    def _ensure_pool(self) -> _PoolExecutor:
        if self._pool is None:
            self._pool = _PoolExecutor(max_workers=self.workers)
            if not self._atexit_registered:
                # Exactly one live registration per open pool: close()
                # unregisters, so close/recreate cycles cannot stack
                # duplicate hooks in the interpreter's exit table.
                self._atexit_registered = True
                atexit.register(self.close)
        return self._pool

    def _worker_batch_width(self) -> Optional[int]:
        """Lockstep width workers should use (None = plain, one at a time)."""
        return None

    def _plan_chunk_size(self, probe_seconds: Optional[float], n_cells: int) -> int:
        """Pick the cells-per-chunk for this dispatch."""
        if isinstance(self._chunk_size, int):
            return self._chunk_size
        balance_cap = max(1, math.ceil(n_cells / self.workers))
        if probe_seconds is None:
            return balance_cap
        per_chunk = max(1, round(TARGET_CHUNK_SECONDS / max(probe_seconds, 1e-9)))
        return min(per_chunk, balance_cap)

    def map_cells(self, tasks: Sequence[CellTask]) -> List[SweepCell]:
        if not tasks:
            return []
        for task in tasks:
            ensure_picklable(task)
        cast, refs = build_sweep_cast(tasks)
        blob = pickle.dumps(cast, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(blob).hexdigest()

        indexed: List[Tuple[int, SweepCell]] = []
        pending = refs
        probe_seconds: Optional[float] = None
        if self._chunk_size == "auto" and len(tasks) > 1:
            # Probe: run the first cell here, timed; keep its result.
            probe_start = time.perf_counter()
            indexed.append((tasks[0].index, tasks[0].run()))
            probe_seconds = time.perf_counter() - probe_start
            pending = refs[1:]
        if pending:
            size = self._plan_chunk_size(probe_seconds, len(pending))
            chunks = [
                tuple(pending[i : i + size]) for i in range(0, len(pending), size)
            ]
            width = self._worker_batch_width()
            pool = self._ensure_pool()
            futures = [
                pool.submit(run_cast_chunk, (digest, blob, chunk, width))
                for chunk in chunks
            ]
            for future in futures:
                indexed.extend(future.result())
        # Deterministic merge: sort by task index whatever the completion
        # order was (futures are drained in submission order; the sort is
        # belt-and-braces for future backends).
        indexed.sort(key=lambda pair: pair[0])
        return [cell for _, cell in indexed]


class BatchProcessExecutor(ProcessExecutor):
    """Processes × lockstep: every worker batch-steps its sub-grid.

    The multiplicative backend: process fan-out from
    :class:`ProcessExecutor` (persistent pool, shared cast), per-worker
    throughput from :class:`~repro.analysis.batch.BatchExecutor` (lockstep
    width ``width``).  Defaults to one contiguous sub-grid per worker —
    lockstep efficiency grows with slot count, so bigger chunks beat finer
    load-balancing here.
    """

    backend_name = "batch-process"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        *,
        width: int = 1024,
        chunk_size: Union[int, str] = "auto",
    ) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1: {width}")
        super().__init__(max_workers, chunk_size=chunk_size)
        self._width = width

    @property
    def batch_width(self) -> int:
        return self._width

    def _worker_batch_width(self) -> Optional[int]:
        return self._width

    def _plan_chunk_size(self, probe_seconds: Optional[float], n_cells: int) -> int:
        if isinstance(self._chunk_size, int):
            return self._chunk_size
        # Even sub-grids, no cost probing: a lockstep worker amortises
        # per-round overhead across its whole chunk, so maximal chunks win.
        return max(1, math.ceil(n_cells / self.workers))

    def map_cells(self, tasks: Sequence[CellTask]) -> List[SweepCell]:
        if not tasks:
            return []
        for task in tasks:
            ensure_picklable(task)
        cast, refs = build_sweep_cast(tasks)
        blob = pickle.dumps(cast, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(blob).hexdigest()
        size = self._plan_chunk_size(None, len(refs))
        chunks = [tuple(refs[i : i + size]) for i in range(0, len(refs), size)]
        pool = self._ensure_pool()
        futures = [
            pool.submit(run_cast_chunk, (digest, blob, chunk, self._width))
            for chunk in chunks
        ]
        indexed: List[Tuple[int, SweepCell]] = []
        for future in futures:
            indexed.extend(future.result())
        indexed.sort(key=lambda pair: pair[0])
        return [cell for _, cell in indexed]
