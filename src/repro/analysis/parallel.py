"""Parallel sweep execution: pluggable backends for independent cells.

Every reproduction target is a sweep — "pair this user with every server
in the class, under these seeds" — and sweep cells are *shared-nothing* by
construction (all randomness derives from the per-run seed; nothing flows
between cells).  That makes a sweep embarrassingly parallel: this module
provides the executor backends that :func:`repro.analysis.runner.sweep`
and :func:`~repro.analysis.runner.sweep_goals` accept via ``executor=``.

* :class:`SerialExecutor` — runs the cells in-process, in order.  The
  reference backend: ``sweep(..., executor=SerialExecutor())`` is
  identical to ``sweep(...)`` with no executor.
* :class:`ProcessExecutor` — fans the cells out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker receives
  its cells as pickled :class:`~repro.analysis.runner.CellTask` work
  items, so it operates on *fresh* user/server/goal instances (unpickling
  is the cheapest possible "fresh instance per worker" factory), and
  results are merged back in deterministic cell order.  Same seeds in,
  equal :class:`~repro.analysis.runner.SweepResult` out, regardless of
  worker count or chunking.

Determinism contract: a backend may only change *where* cells run, never
what they compute.  The parity tests in ``tests/analysis/test_parallel.py``
assert serial/process equality cell by cell, including telemetry totals.

Picklability: process workers require every object reachable from a task
to pickle — use module-level functions (not lambdas or closures) for
sensing predicates and referees.  The library's goal builders comply;
:func:`ensure_picklable` gives an actionable error before any worker is
spawned when a custom object does not.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor as _PoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.analysis.runner import CellTask, SweepCell
from repro.errors import ExecutionError


def run_cell_chunk(tasks: Sequence[CellTask]) -> List[Tuple[int, SweepCell]]:
    """Worker entry point: run a chunk of cells, tagged with their indices.

    Module-level (not a method) so it pickles by reference under every
    multiprocessing start method, including ``spawn``.
    """
    return [(task.index, task.run()) for task in tasks]


def ensure_picklable(task: CellTask) -> None:
    """Raise a diagnosable error if ``task`` cannot cross a process boundary.

    Checked eagerly so the failure names the real problem instead of
    surfacing as an opaque ``PicklingError`` from a worker's result
    future.  Lambdas inside sensing predicates or referees are the usual
    culprit — hoist them to module level.
    """
    try:
        pickle.dumps(task)
    except Exception as error:
        raise ExecutionError(
            f"sweep cell {task.index} ({task.user.name} vs {task.server.name}) "
            f"is not picklable for process execution: {error!r}. "
            "Process workers receive cells by pickling; replace lambdas/"
            "closures in sensing predicates and referees with module-level "
            "functions, or use SerialExecutor."
        ) from error


class SerialExecutor:
    """In-process, in-order execution — the reference backend.

    Satisfies :class:`~repro.analysis.runner.SweepExecutorLike`
    structurally (it is a Protocol; no inheritance needed).
    """

    def map_cells(self, tasks: Sequence[CellTask]) -> List[SweepCell]:
        return [task.run() for task in tasks]


class ProcessExecutor:
    """Process-pool execution with chunked cell dispatch.

    Satisfies :class:`~repro.analysis.runner.SweepExecutorLike`
    structurally.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()`` capped at the number of
        dispatched chunks (never spawns idle workers).
    chunk_size:
        Cells per submitted work item.  The default of 1 maximises load
        balance (cells are usually few and expensive); raise it when a
        sweep has many cheap cells and per-task pickling overhead shows.
    """

    def __init__(
        self, max_workers: Optional[int] = None, *, chunk_size: int = 1
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1: {max_workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1: {chunk_size}")
        self._max_workers = max_workers
        self._chunk_size = chunk_size

    def map_cells(self, tasks: Sequence[CellTask]) -> List[SweepCell]:
        if not tasks:
            return []
        for task in tasks:
            ensure_picklable(task)
        chunks = [
            list(tasks[i : i + self._chunk_size])
            for i in range(0, len(tasks), self._chunk_size)
        ]
        workers = self._max_workers or os.cpu_count() or 1
        workers = min(workers, len(chunks))
        indexed: List[Tuple[int, SweepCell]] = []
        with _PoolExecutor(max_workers=workers) as pool:
            for chunk_result in pool.map(run_cell_chunk, chunks):
                indexed.extend(chunk_result)
        # Deterministic merge: cells come back in task order whatever the
        # completion order was (pool.map preserves submission order; the
        # sort is belt-and-braces for future backends).
        indexed.sort(key=lambda pair: pair[0])
        return [cell for _, cell in indexed]
