"""Instance generators for the delegation experiments.

Random and structured QBF/CNF instances at controlled sizes.  Generators
take explicit ``random.Random`` objects (never the global RNG) so every
experiment is reproducible from its seed, and they report balanced truth
values where possible (an all-True instance family would let a trivial
"always answer 1" prover look helpful).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.qbf.formulas import And, Const, Formula, Not, Or, Var, from_cnf
from repro.qbf.qbf import EXISTS, FORALL, QBF, PrefixItem


def variable_names(n: int) -> List[str]:
    """Canonical variable names ``x1 .. xn``."""
    if n < 0:
        raise ValueError(f"n must be >= 0: {n}")
    return [f"x{i}" for i in range(1, n + 1)]


def random_cnf(
    rng: random.Random,
    n_vars: int,
    n_clauses: int,
    clause_width: int = 3,
) -> Formula:
    """A random CNF formula (variables may repeat across clauses).

    Clause literals are drawn without replacement within a clause, so no
    clause is trivially true.
    """
    if n_vars < 1:
        raise ValueError(f"n_vars must be >= 1: {n_vars}")
    names = variable_names(n_vars)
    width = min(clause_width, n_vars)
    clauses = []
    for _ in range(n_clauses):
        chosen = rng.sample(names, width)
        clauses.append([(name, rng.random() < 0.5) for name in chosen])
    return from_cnf(clauses)


def random_formula(rng: random.Random, n_vars: int, connectives: int) -> Formula:
    """A random formula tree with the given number of binary connectives."""
    names = variable_names(n_vars)
    pool: List[Formula] = [Var(rng.choice(names)) for _ in range(connectives + 1)]
    # Randomly negate some leaves.
    pool = [Not(f) if rng.random() < 0.3 else f for f in pool]
    while len(pool) > 1:
        right = pool.pop(rng.randrange(len(pool)))
        left = pool.pop(rng.randrange(len(pool)))
        node = And(left, right) if rng.random() < 0.5 else Or(left, right)
        pool.append(node)
    return pool[0]


def random_qbf(
    rng: random.Random,
    n_vars: int,
    connectives: Optional[int] = None,
) -> QBF:
    """A random closed QBF over ``n_vars`` alternating-ish quantifiers."""
    if n_vars < 1:
        raise ValueError(f"n_vars must be >= 1: {n_vars}")
    if connectives is None:
        connectives = 2 * n_vars
    names = variable_names(n_vars)
    prefix: List[PrefixItem] = [
        (FORALL if rng.random() < 0.5 else EXISTS, name) for name in names
    ]
    matrix = random_formula(rng, n_vars, connectives)
    # Ensure the matrix mentions every bound variable, so the prefix is
    # never vacuous (vacuous quantifiers make instances degenerate).
    from repro.qbf.formulas import variables as formula_vars

    missing = [name for name in names if name not in formula_vars(matrix)]
    for name in missing:
        matrix = And(matrix, Or(Var(name), Not(Var(name))))
    return QBF(prefix=tuple(prefix), matrix=matrix)


def balanced_qbf_batch(
    rng: random.Random,
    n_vars: int,
    count: int,
    *,
    max_attempts: int = 2000,
) -> List[QBF]:
    """``count`` random QBFs with truth values as balanced as possible.

    Draws instances until both truth values are represented roughly equally
    (or attempts run out, in which case whatever was drawn is returned).
    """
    want_true = count - count // 2
    want_false = count // 2
    out: List[QBF] = []
    for _ in range(max_attempts):
        if want_true == 0 and want_false == 0:
            break
        instance = random_qbf(rng, n_vars)
        if instance.evaluate():
            if want_true > 0:
                out.append(instance)
                want_true -= 1
        elif want_false > 0:
            out.append(instance)
            want_false -= 1
    return out


def parity_qbf(n_vars: int, target_parity: bool = True) -> QBF:
    """A structured family: ∃-prefix, matrix = "parity of all vars is target".

    Parity maximises arithmetization degree per variable count, stressing
    the degree schedule of the interactive proof.
    """
    names = variable_names(n_vars)
    parity: Formula = Const(not target_parity)
    for name in names:
        x: Formula = Var(name)
        # parity' = parity XOR x, with XOR(a,b) = (a ∧ ¬b) ∨ (¬a ∧ b).
        parity = Or(And(parity, Not(x)), And(Not(parity), x))
    prefix = tuple((EXISTS, name) for name in names)
    return QBF(prefix=prefix, matrix=parity)
