"""Quantified Boolean formulas and their (PSPACE) evaluation.

A :class:`QBF` is a quantifier prefix over distinct variables plus a
propositional matrix.  :meth:`QBF.evaluate` decides truth by the textbook
recursion — exponential time, polynomial space: this *is* the PSPACE oracle
of the delegation experiments, used only to (a) let honest provers answer
and (b) let referees check answers on the small instances we pose.  The
entire point of the delegation goal is that the *user* never calls it.

Wire form: ``PREFIX:MATRIX`` where the prefix is a string of ``A``/``E``
items with variable names separated by ``.``, e.g. ``Ax1.Ex2:&(x1,x2)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import FormulaError
from repro.qbf import formulas
from repro.qbf.formulas import Formula

FORALL = "A"
EXISTS = "E"

#: One prefix item: (quantifier, variable name).
PrefixItem = Tuple[str, str]


@dataclass(frozen=True)
class QBF:
    """A fully quantified Boolean formula.

    Every variable of the matrix must be bound by the prefix (closed QBF),
    so evaluation yields a truth value with no free assignment.
    """

    prefix: Tuple[PrefixItem, ...]
    matrix: Formula

    def __post_init__(self) -> None:
        names = [name for _, name in self.prefix]
        if len(set(names)) != len(names):
            raise FormulaError(f"prefix binds a variable twice: {names}")
        for quantifier, name in self.prefix:
            if quantifier not in (FORALL, EXISTS):
                raise FormulaError(f"unknown quantifier {quantifier!r} on {name!r}")
        free = formulas.variables(self.matrix) - set(names)
        if free:
            raise FormulaError(f"matrix has unbound variables: {sorted(free)}")

    @property
    def n_vars(self) -> int:
        return len(self.prefix)

    @property
    def variable_names(self) -> Tuple[str, ...]:
        return tuple(name for _, name in self.prefix)

    def evaluate(self) -> bool:
        """Decide the QBF by recursion over the prefix (exponential time)."""
        return self._evaluate(0, {})

    def _evaluate(self, depth: int, assignment: Dict[str, bool]) -> bool:
        if depth == len(self.prefix):
            return formulas.evaluate(self.matrix, assignment)
        quantifier, name = self.prefix[depth]
        results = []
        for value in (False, True):
            assignment[name] = value
            results.append(self._evaluate(depth + 1, assignment))
            del assignment[name]
            # Short-circuit: ∀ fails on first False, ∃ succeeds on first True.
            if quantifier == FORALL and not results[-1]:
                return False
            if quantifier == EXISTS and results[-1]:
                return True
        return results[0] if len(results) == 1 else (all(results) if quantifier == FORALL else any(results))

    # ------------------------------------------------------------------
    # Wire serialisation
    # ------------------------------------------------------------------
    def serialize(self) -> str:
        """Render as ``Ax1.Ex2:&(x1,x2)``."""
        prefix_text = ".".join(f"{q}{name}" for q, name in self.prefix)
        return f"{prefix_text}:{formulas.serialize(self.matrix)}"

    @staticmethod
    def deserialize(text: str) -> "QBF":
        """Parse :meth:`serialize` output; raises :class:`FormulaError` on junk."""
        if ":" not in text:
            raise FormulaError(f"QBF wire form needs ':' separator: {text!r}")
        prefix_text, matrix_text = text.split(":", 1)
        prefix: List[PrefixItem] = []
        if prefix_text:
            for item in prefix_text.split("."):
                if len(item) < 2 or item[0] not in (FORALL, EXISTS):
                    raise FormulaError(f"bad prefix item: {item!r}")
                prefix.append((item[0], item[1:]))
        return QBF(prefix=tuple(prefix), matrix=formulas.parse(matrix_text))
