"""Boolean formula ASTs.

The delegation experiments pose instances of TQBF — the canonical
PSPACE-complete problem the Juba–Sudan delegation goal builds on.  This
module provides the propositional layer: an immutable formula AST with
Boolean evaluation, a compact wire serialisation (formulas travel inside
messages between user and prover), per-variable *arithmetization degree*
(needed by the interactive proof's degree schedule), and CNF construction
helpers.

Grammar of the wire form (prefix notation, whitespace-free)::

    formula := var | '0' | '1' | '!' formula
             | '&(' formula ',' formula ')' | '|(' formula ',' formula ')'
    var     := [a-z][a-z0-9_]*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Mapping, Sequence, Tuple, Union

from repro.errors import FormulaError


@dataclass(frozen=True)
class Var:
    """A propositional variable."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha() or not self.name.islower():
            raise FormulaError(f"variable names are lowercase identifiers: {self.name!r}")


@dataclass(frozen=True)
class Const:
    """A Boolean constant."""

    value: bool


@dataclass(frozen=True)
class Not:
    child: "Formula"


@dataclass(frozen=True)
class And:
    left: "Formula"
    right: "Formula"


@dataclass(frozen=True)
class Or:
    left: "Formula"
    right: "Formula"


Formula = Union[Var, Const, Not, And, Or]


def evaluate(formula: Formula, assignment: Mapping[str, bool]) -> bool:
    """Standard Boolean evaluation; missing variables raise."""
    if isinstance(formula, Var):
        try:
            return bool(assignment[formula.name])
        except KeyError:
            raise FormulaError(f"assignment missing variable {formula.name!r}") from None
    if isinstance(formula, Const):
        return formula.value
    if isinstance(formula, Not):
        return not evaluate(formula.child, assignment)
    if isinstance(formula, And):
        return evaluate(formula.left, assignment) and evaluate(formula.right, assignment)
    if isinstance(formula, Or):
        return evaluate(formula.left, assignment) or evaluate(formula.right, assignment)
    raise FormulaError(f"not a formula node: {formula!r}")


def variables(formula: Formula) -> FrozenSet[str]:
    """The set of variable names occurring in the formula."""
    if isinstance(formula, Var):
        return frozenset({formula.name})
    if isinstance(formula, Const):
        return frozenset()
    if isinstance(formula, Not):
        return variables(formula.child)
    if isinstance(formula, (And, Or)):
        return variables(formula.left) | variables(formula.right)
    raise FormulaError(f"not a formula node: {formula!r}")


def arithmetization_degree(formula: Formula, var: str) -> int:
    """Degree of ``var`` in the arithmetized formula.

    Arithmetization maps ``x ↦ x``, ``¬f ↦ 1−f``, ``f∧g ↦ f·g`` and
    ``f∨g ↦ f+g−fg``; degrees therefore add across ∧ and ∨ and pass through
    ¬.  The interactive proof's verifier uses these bounds to cap the degree
    of each prover message.
    """
    if isinstance(formula, Var):
        return 1 if formula.name == var else 0
    if isinstance(formula, Const):
        return 0
    if isinstance(formula, Not):
        return arithmetization_degree(formula.child, var)
    if isinstance(formula, (And, Or)):
        return arithmetization_degree(formula.left, var) + arithmetization_degree(
            formula.right, var
        )
    raise FormulaError(f"not a formula node: {formula!r}")


def conj(parts: Sequence[Formula]) -> Formula:
    """Right-folded conjunction (``Const(True)`` for no parts)."""
    if not parts:
        return Const(True)
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = And(part, result)
    return result


def disj(parts: Sequence[Formula]) -> Formula:
    """Right-folded disjunction (``Const(False)`` for no parts)."""
    if not parts:
        return Const(False)
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = Or(part, result)
    return result


def from_cnf(clauses: Iterable[Iterable[Tuple[str, bool]]]) -> Formula:
    """Build a formula from CNF clauses of ``(variable, polarity)`` literals.

    ``(x, True)`` is the positive literal, ``(x, False)`` its negation.

    >>> f = from_cnf([[("x", True), ("y", False)]])
    >>> evaluate(f, {"x": False, "y": False})
    True
    """
    clause_formulas: List[Formula] = []
    for clause in clauses:
        literals: List[Formula] = []
        for name, polarity in clause:
            literal: Formula = Var(name)
            if not polarity:
                literal = Not(literal)
            literals.append(literal)
        clause_formulas.append(disj(literals))
    return conj(clause_formulas)


# ----------------------------------------------------------------------
# Wire serialisation
# ----------------------------------------------------------------------

def serialize(formula: Formula) -> str:
    """Render the formula in the prefix wire form (see module docstring)."""
    if isinstance(formula, Var):
        return formula.name
    if isinstance(formula, Const):
        return "1" if formula.value else "0"
    if isinstance(formula, Not):
        return "!" + serialize(formula.child)
    if isinstance(formula, And):
        return f"&({serialize(formula.left)},{serialize(formula.right)})"
    if isinstance(formula, Or):
        return f"|({serialize(formula.left)},{serialize(formula.right)})"
    raise FormulaError(f"not a formula node: {formula!r}")


def parse(text: str) -> Formula:
    """Parse the wire form back into an AST; inverse of :func:`serialize`."""
    formula, rest = _parse_prefix(text.strip())
    if rest:
        raise FormulaError(f"trailing characters after formula: {rest!r}")
    return formula


def _parse_prefix(text: str) -> Tuple[Formula, str]:
    if not text:
        raise FormulaError("empty formula text")
    head = text[0]
    if head == "!":
        child, rest = _parse_prefix(text[1:])
        return Not(child), rest
    if head in "&|":
        if len(text) < 2 or text[1] != "(":
            raise FormulaError(f"expected '(' after {head!r}: {text!r}")
        left, rest = _parse_prefix(text[2:])
        if not rest.startswith(","):
            raise FormulaError(f"expected ',' in {head!r} node: {rest!r}")
        right, rest = _parse_prefix(rest[1:])
        if not rest.startswith(")"):
            raise FormulaError(f"expected ')' in {head!r} node: {rest!r}")
        node = And(left, right) if head == "&" else Or(left, right)
        return node, rest[1:]
    if head == "0":
        return Const(False), text[1:]
    if head == "1":
        return Const(True), text[1:]
    if head.isalpha() and head.islower():
        end = 1
        while end < len(text) and (text[end].isalnum() or text[end] == "_"):
            end += 1
        return Var(text[:end]), text[end:]
    raise FormulaError(f"cannot parse formula at: {text!r}")
