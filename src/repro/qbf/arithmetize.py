"""Arithmetization of Boolean formulas over a prime field.

The bridge from logic to algebra that powers the interactive proofs:
``x ↦ x``, ``¬f ↦ 1−f``, ``f∧g ↦ f·g``, ``f∨g ↦ f+g−f·g``.  On Boolean
inputs the arithmetization agrees with the formula (property-tested in
``tests/qbf/``); on general field points it is the unique low-degree
extension the sumcheck and TQBF protocols manipulate.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

from repro.errors import FormulaError
from repro.mathx.modular import Field
from repro.mathx.multivariate import GridPoly
from repro.qbf.formulas import And, Const, Formula, Not, Or, Var, arithmetization_degree, variables


def arith_eval(formula: Formula, field: Field, assignment: Mapping[str, int]) -> int:
    """Evaluate the arithmetized formula at a field-point assignment."""
    if isinstance(formula, Var):
        try:
            return field.normalize(assignment[formula.name])
        except KeyError:
            raise FormulaError(f"assignment missing variable {formula.name!r}") from None
    if isinstance(formula, Const):
        return 1 if formula.value else 0
    if isinstance(formula, Not):
        return field.bool_not(arith_eval(formula.child, field, assignment))
    if isinstance(formula, And):
        return field.bool_and(
            arith_eval(formula.left, field, assignment),
            arith_eval(formula.right, field, assignment),
        )
    if isinstance(formula, Or):
        return field.bool_or(
            arith_eval(formula.left, field, assignment),
            arith_eval(formula.right, field, assignment),
        )
    raise FormulaError(f"not a formula node: {formula!r}")


def degree_vector(formula: Formula, variable_order: Sequence[str]) -> Tuple[int, ...]:
    """Per-variable arithmetization degree bounds, in the given order."""
    return tuple(arithmetization_degree(formula, var) for var in variable_order)


def base_grid(
    formula: Formula, field: Field, variable_order: Sequence[str]
) -> GridPoly:
    """Sample the arithmetized matrix onto its minimal degree grid.

    This is the starting object of both interactive proofs: the prover
    applies quantifier/linearization operators to it, the verifier uses its
    direct evaluation (:func:`arith_eval`) only once, in the final check.
    Variables of the order that do not occur in the formula get degree
    bound 0 (the polynomial is constant along those axes).
    """
    order = tuple(variable_order)
    missing = variables(formula) - set(order)
    if missing:
        raise FormulaError(f"variable order misses formula variables: {sorted(missing)}")
    degrees = degree_vector(formula, order)
    return GridPoly.from_function(
        field,
        order,
        degrees,
        lambda assignment: arith_eval(formula, field, assignment),
    )
