"""Boolean formulas, QBF, arithmetization, and instance generators.

The PSPACE substrate of the delegation goal: formula ASTs with a wire form
(:mod:`.formulas`), closed QBFs with exponential-time/poly-space evaluation
(:mod:`.qbf`), the arithmetization used by the interactive proofs
(:mod:`.arithmetize`), and reproducible instance generators
(:mod:`.generators`).
"""

from repro.qbf.formulas import (
    Var,
    Const,
    Not,
    And,
    Or,
    Formula,
    evaluate,
    variables,
    arithmetization_degree,
    conj,
    disj,
    from_cnf,
    serialize,
    parse,
)
from repro.qbf.qbf import QBF, FORALL, EXISTS, PrefixItem
from repro.qbf.arithmetize import arith_eval, degree_vector, base_grid
from repro.qbf.generators import (
    variable_names,
    random_cnf,
    random_formula,
    random_qbf,
    balanced_qbf_batch,
    parity_qbf,
)

__all__ = [
    "Var",
    "Const",
    "Not",
    "And",
    "Or",
    "Formula",
    "evaluate",
    "variables",
    "arithmetization_degree",
    "conj",
    "disj",
    "from_cnf",
    "serialize",
    "parse",
    "QBF",
    "FORALL",
    "EXISTS",
    "PrefixItem",
    "arith_eval",
    "degree_vector",
    "base_grid",
    "variable_names",
    "random_cnf",
    "random_formula",
    "random_qbf",
    "balanced_qbf_batch",
    "parity_qbf",
]
