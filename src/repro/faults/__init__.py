"""Fault injection: unreliable channels, flaky servers, robustness checks.

The paper's model assumes a perfect medium; this package removes that
assumption so the safety/viability claims can be *tested* under
degradation (see ``docs/ROBUSTNESS.md``):

- :mod:`.schedules` — deterministic fault processes (Bernoulli, burst,
  scripted) whose traces are pure functions of the execution seed;
- :mod:`.channel` — :class:`~.channel.FaultyChannel` wrappers for the
  user↔server link (drop, corrupt, duplicate, delay), accepted by
  ``run_execution(channel=...)``;
- :mod:`.servers` — :class:`~.servers.FlakyServer`,
  :class:`~.servers.CrashingServer`, and
  :class:`~.servers.ByzantineWrapper` strategy decorators, composable
  with the codec/reset wrappers in :mod:`repro.servers.wrappers`;
- :mod:`.verify` — :func:`~.verify.verify_robustness`, the fault-grid
  sweep reporting empirical safety/viability margins.

Every fault emits :class:`~repro.obs.events.FaultInjected` /
:class:`~repro.obs.events.FaultRecovered` events when a tracer is
attached, and the universal users' ``patience=`` budgets are the matching
recovery mechanism on the user side.
"""

from repro.faults.channel import (
    BOTH,
    CORRUPT,
    DELAY,
    DROP,
    DUPLICATE,
    SERVER_TO_USER,
    USER_TO_SERVER,
    ChannelFault,
    FaultyChannel,
    FaultyChannelRun,
    drop_channel,
    garble,
)
from repro.faults.schedules import (
    BernoulliSchedule,
    BurstSchedule,
    FaultSchedule,
    NeverSchedule,
    ScheduleRun,
    ScriptedSchedule,
)
from repro.faults.servers import ByzantineWrapper, CrashingServer, FlakyServer
from repro.faults.verify import (
    FaultPointReport,
    RobustnessReport,
    default_fault_grid,
    verify_robustness,
)

__all__ = [
    "BOTH",
    "CORRUPT",
    "DELAY",
    "DROP",
    "DUPLICATE",
    "SERVER_TO_USER",
    "USER_TO_SERVER",
    "ChannelFault",
    "FaultyChannel",
    "FaultyChannelRun",
    "drop_channel",
    "garble",
    "BernoulliSchedule",
    "BurstSchedule",
    "FaultSchedule",
    "NeverSchedule",
    "ScheduleRun",
    "ScriptedSchedule",
    "ByzantineWrapper",
    "CrashingServer",
    "FlakyServer",
    "FaultPointReport",
    "RobustnessReport",
    "default_fault_grid",
    "verify_robustness",
]
