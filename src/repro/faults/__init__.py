"""Fault injection: unreliable channels, flaky servers, robustness checks.

The paper's model assumes a perfect medium; this package removes that
assumption so the safety/viability claims can be *tested* under
degradation (see ``docs/ROBUSTNESS.md``):

- :mod:`.schedules` — deterministic fault processes (Bernoulli, burst,
  scripted) whose traces are pure functions of the execution seed;
- :mod:`.channel` — :class:`~.channel.FaultyChannel` wrappers for the
  user↔server link (drop, corrupt, duplicate, delay), accepted by
  ``run_execution(channel=...)``;
- :mod:`.servers` — :class:`~.servers.FlakyServer`,
  :class:`~.servers.CrashingServer`, and
  :class:`~.servers.ByzantineWrapper` strategy decorators, composable
  with the codec/reset wrappers in :mod:`repro.servers.wrappers`;
- :mod:`.verify` — :func:`~.verify.verify_robustness`, the fault-grid
  sweep reporting empirical safety/viability margins.

Every fault emits :class:`~repro.obs.events.FaultInjected` /
:class:`~repro.obs.events.FaultRecovered` events when a tracer is
attached, and the universal users' ``patience=`` budgets are the matching
recovery mechanism on the user side.

Re-exports are lazy (PEP 562), mirroring :mod:`repro.obs`: the schedule
and channel halves are engine-free and must stay importable by the
``repro.obs certify`` checker without dragging in :mod:`repro.core`,
which :mod:`.servers` and :mod:`.verify` both require.
"""

from typing import List

_LAZY_EXPORTS = {
    "BOTH": "repro.faults.channel",
    "CORRUPT": "repro.faults.channel",
    "DELAY": "repro.faults.channel",
    "DROP": "repro.faults.channel",
    "DUPLICATE": "repro.faults.channel",
    "SERVER_TO_USER": "repro.faults.channel",
    "USER_TO_SERVER": "repro.faults.channel",
    "ChannelFault": "repro.faults.channel",
    "FaultyChannel": "repro.faults.channel",
    "FaultyChannelRun": "repro.faults.channel",
    "channel_from_spec": "repro.faults.channel",
    "drop_channel": "repro.faults.channel",
    "garble": "repro.faults.channel",
    "BernoulliSchedule": "repro.faults.schedules",
    "BurstSchedule": "repro.faults.schedules",
    "FaultSchedule": "repro.faults.schedules",
    "NeverSchedule": "repro.faults.schedules",
    "ScheduleRun": "repro.faults.schedules",
    "ScriptedSchedule": "repro.faults.schedules",
    "schedule_from_spec": "repro.faults.schedules",
    "ByzantineWrapper": "repro.faults.servers",
    "CrashingServer": "repro.faults.servers",
    "FlakyServer": "repro.faults.servers",
    "FaultPointReport": "repro.faults.verify",
    "RobustnessReport": "repro.faults.verify",
    "default_fault_grid": "repro.faults.verify",
    "verify_robustness": "repro.faults.verify",
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name: str) -> object:
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target)
    value = getattr(module, name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
