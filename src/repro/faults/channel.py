"""Unreliable user↔server channels for the execution engine.

The paper's model delivers every message perfectly; a real medium does
not.  :class:`FaultyChannel` is an immutable description of an unreliable
user↔server link — a list of :class:`ChannelFault` clauses, each pairing a
fault *kind* with a :class:`~repro.faults.schedules.FaultSchedule` and a
direction — that :func:`repro.core.execution.run_execution` accepts via
``channel=``.  Only the user↔server link is faulty: the world channels are
physical reality (the printer's paper does not drop packets), exactly as
only that link is wrapped by :class:`~repro.servers.wrappers.EncodedServer`.

Fault kinds (applied to the message in flight for one round):

* ``drop`` — the payload becomes :data:`~repro.comm.messages.SILENCE`;
* ``corrupt`` — the payload is replaced by a deterministic garbling of
  itself (parsers must reject it, nobody may crash);
* ``duplicate`` — the payload is delivered again next round *if* the
  channel would otherwise be silent (a stale retransmission);
* ``delay`` — the payload is held back and delivered ``delay_rounds``
  late, unless a fresh message occupies the channel at the due round (the
  late copy loses the collision and is silently discarded).

Determinism: a channel holds no mutable state.  ``start(seed)`` builds a
:class:`FaultyChannelRun` whose schedule runs and queues derive entirely
from that seed, so one execution seed replays one fault trace — the
property the parity tests assert across recording policies and process
boundaries.  When a tracer is attached the run emits
:class:`~repro.obs.events.FaultInjected` (every applied fault) and
:class:`~repro.obs.events.FaultRecovered` (first clean delivery after a
faulted stretch on a direction); tracing never alters the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Tuple

from repro.comm.messages import SILENCE
from repro.faults.schedules import (
    BernoulliSchedule,
    FaultSchedule,
    ScheduleRun,
    schedule_from_spec,
)
from repro.obs.events import FaultInjected, FaultRecovered
from repro.obs.tracer import TracerLike, is_tracing

#: Direction labels (also the ``site`` field of fault events).
USER_TO_SERVER = "user->server"
SERVER_TO_USER = "server->user"
BOTH = "both"

#: Fault kinds.
DROP = "drop"
CORRUPT = "corrupt"
DUPLICATE = "duplicate"
DELAY = "delay"

_KINDS = (DROP, CORRUPT, DUPLICATE, DELAY)
_DIRECTIONS = (USER_TO_SERVER, SERVER_TO_USER, BOTH)


def garble(payload: str, salt: int) -> str:
    """Deterministically corrupt a payload (same length, different bytes).

    A simple position-dependent substitution over the printable range:
    reproducible (no RNG), never the identity on non-empty input, and
    guaranteed unparseable by the tagged-message convention because the
    substitution maps ``:`` away from itself.
    """
    if not payload:
        return payload
    return "".join(
        chr(33 + (ord(ch) + salt + 7 * i) % 94) for i, ch in enumerate(payload)
    )


@dataclass(frozen=True)
class ChannelFault:
    """One fault clause: *kind* happens per *schedule* on *direction*."""

    kind: str
    schedule: FaultSchedule
    direction: str = BOTH
    delay_rounds: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r} (use one of {_KINDS})")
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"unknown direction: {self.direction!r} (use one of {_DIRECTIONS})"
            )
        if self.kind == DELAY and self.delay_rounds < 1:
            raise ValueError(f"delay_rounds must be >= 1: {self.delay_rounds}")

    @property
    def name(self) -> str:
        kind = f"delay+{self.delay_rounds}" if self.kind == DELAY else self.kind
        return f"{kind}[{self.direction}]@{self.schedule.name}"

    def spec(self) -> Dict[str, Any]:
        """Plain-JSON description (raises ``NotImplementedError`` for
        custom schedules that do not describe themselves)."""
        return {
            "kind": self.kind,
            "direction": self.direction,
            "delay_rounds": self.delay_rounds,
            "schedule": self.schedule.spec(),
        }


@dataclass(frozen=True)
class FaultyChannel:
    """An immutable unreliable-link description, shareable across runs.

    ``faults`` apply in order each round (a drop firing first leaves
    nothing for a later corrupt clause to touch).  ``label`` names the
    configuration in sweep cells and reports; the default is derived from
    the clauses.
    """

    faults: Tuple[ChannelFault, ...]
    label: str = ""

    def __init__(self, faults: Iterable[ChannelFault], label: str = "") -> None:
        object.__setattr__(self, "faults", tuple(faults))
        object.__setattr__(self, "label", label)

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        if not self.faults:
            return "perfect"
        return "+".join(f.name for f in self.faults)

    def start(self, seed: int, tracer: TracerLike = None) -> "FaultyChannelRun":
        """A fresh per-execution run, fully determined by ``seed``."""
        return FaultyChannelRun(self, seed, tracer)

    def spec(self) -> Dict[str, Any]:
        """A plain-JSON description that :func:`channel_from_spec` inverts.

        Recorders (``record_run``) stamp this into the trace header so the
        ``repro.obs certify`` checker can rebuild the channel and replay
        its fault schedule from the execution seed alone.  Raises
        ``NotImplementedError`` when any clause's schedule cannot describe
        itself.
        """
        return {
            "label": self.label,
            "faults": [fault.spec() for fault in self.faults],
        }


def channel_from_spec(data: Mapping[str, Any]) -> FaultyChannel:
    """Rebuild a channel from :meth:`FaultyChannel.spec` output."""
    faults = [
        ChannelFault(
            kind=str(item["kind"]),
            schedule=schedule_from_spec(item["schedule"]),
            direction=str(item.get("direction", BOTH)),
            delay_rounds=int(item.get("delay_rounds", 1)),
        )
        for item in data.get("faults", ())
    ]
    return FaultyChannel(faults, label=str(data.get("label", "")))


def drop_channel(rate: float, *, direction: str = BOTH, salt: int = 0) -> FaultyChannel:
    """A Bernoulli drop channel — the workhorse of the robustness grid."""
    return FaultyChannel(
        [ChannelFault(DROP, BernoulliSchedule(rate, salt=salt), direction)],
        label=f"drop({rate})[{direction}]" if direction != BOTH else f"drop({rate})",
    )


class _DirectionState:
    """Mutable per-direction run state: schedule runs, queues, outage flag."""

    __slots__ = ("runs", "pending", "duplicate", "faulted")

    def __init__(self, runs: List[Tuple[ChannelFault, ScheduleRun]]) -> None:
        self.runs = runs
        self.pending: Dict[int, str] = {}  # due round -> delayed payload
        self.duplicate: str = SILENCE  # payload to replay next round
        self.faulted = False  # inside a faulted stretch (for recovery events)


class FaultyChannelRun:
    """Applies one channel description to one execution.

    The engine calls :meth:`apply` once per round, after the parties'
    outboxes were delivered; the returned pair replaces the in-flight
    user↔server payloads.  Every schedule run is advanced every round —
    including silent ones — so the fault trace is independent of traffic.
    """

    __slots__ = ("_directions", "_tracer")

    def __init__(
        self, channel: FaultyChannel, seed: int, tracer: TracerLike = None
    ) -> None:
        self._tracer = tracer
        self._directions: Dict[str, _DirectionState] = {}
        for index, direction in enumerate((USER_TO_SERVER, SERVER_TO_USER)):
            runs = [
                (fault, fault.schedule.start(seed * 2 + index))
                for fault in channel.faults
                if fault.direction in (direction, BOTH)
            ]
            self._directions[direction] = _DirectionState(runs)

    def apply(
        self, round_index: int, user_to_server: str, server_to_user: str
    ) -> Tuple[str, str]:
        """Pass this round's in-flight payloads through the fault clauses."""
        return (
            self._apply_direction(round_index, USER_TO_SERVER, user_to_server),
            self._apply_direction(round_index, SERVER_TO_USER, server_to_user),
        )

    def _apply_direction(self, round_index: int, direction: str, payload: str) -> str:
        state = self._directions[direction]
        tracing = is_tracing(self._tracer)
        faulted_now = False

        # Retransmissions first: a duplicate fills an otherwise-idle round,
        # and a delayed payload comes due (losing any collision with fresh
        # traffic, like a late packet beaten by a retry).
        if state.duplicate and payload == SILENCE:
            payload = state.duplicate
        state.duplicate = SILENCE
        due = state.pending.pop(round_index, None)
        if due is not None and payload == SILENCE:
            payload = due

        for fault, run in state.runs:
            fired = run.fires(round_index)
            if not fired or payload == SILENCE:
                # Schedules advance unconditionally (determinism); faults
                # only *count* when there was a message to disturb.
                continue
            faulted_now = True
            if tracing:
                self._tracer.emit(
                    FaultInjected(
                        round_index=round_index, site=direction, fault=fault.kind
                    )
                )
            if fault.kind == DROP:
                payload = SILENCE
            elif fault.kind == CORRUPT:
                payload = garble(payload, salt=round_index)
            elif fault.kind == DUPLICATE:
                state.duplicate = payload
            elif fault.kind == DELAY:
                state.pending[round_index + fault.delay_rounds] = payload
                payload = SILENCE

        if faulted_now:
            state.faulted = True
        elif state.faulted and payload != SILENCE:
            state.faulted = False
            if tracing:
                self._tracer.emit(
                    FaultRecovered(round_index=round_index, site=direction)
                )
        return payload
