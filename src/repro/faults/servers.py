"""Flaky, crashing, and byzantine server wrappers.

Where :mod:`repro.faults.channel` degrades the *medium*, these wrappers
degrade the *server* — and, being ordinary
:class:`~repro.core.strategy.ServerStrategy` decorators, they compose
freely with :class:`~repro.servers.wrappers.EncodedServer` (language
mismatch) and :class:`~repro.servers.wrappers.ResettableServer`
(re-entrancy): ``FlakyServer(ResettableServer(EncodedServer(base, c)))``
is a service that speaks codec *c*, times out stale sessions, and
sometimes just doesn't answer.

All three derive their fault randomness from the schedule seeded by the
server's engine RNG at ``initial_state`` time, so a run's fault trace is a
pure function of the execution seed (the engine gives every party an
independent stream derived from the master seed).

Like the universal users, each wrapper has a public reassignable
``tracer`` attribute; when tracing it emits
:class:`~repro.obs.events.FaultInjected` /
:class:`~repro.obs.events.FaultRecovered` events with ``site="server"``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Tuple

from repro.comm.messages import ServerInbox, ServerOutbox
from repro.core.strategy import ServerStrategy
from repro.faults.schedules import FaultSchedule, ScheduleRun
from repro.obs.events import FaultInjected, FaultRecovered
from repro.obs.tracer import TracerLike, is_tracing


@dataclass
class _FaultyServerState:
    """Inner state plus the wrapper's per-run fault machinery."""

    inner_state: Any
    schedule_run: ScheduleRun
    clock: int = 0
    down: bool = False


class _ScheduledWrapper(ServerStrategy):
    """Shared plumbing: schedule lifecycle, clock, and fault events."""

    _site = "server"

    def __init__(
        self, inner: ServerStrategy, schedule: FaultSchedule, tracer: TracerLike = None
    ) -> None:
        self._inner = inner
        self._schedule = schedule
        self.tracer = tracer

    @property
    def inner(self) -> ServerStrategy:
        return self._inner

    def initial_state(self, rng: random.Random) -> _FaultyServerState:
        return _FaultyServerState(
            inner_state=self._inner.initial_state(rng),
            schedule_run=self._schedule.start(rng.getrandbits(64)),
        )

    def _note(self, clock: int, down: bool, kind: str, faulted: bool) -> bool:
        """Emit injected/recovered events; return the new outage flag."""
        tracing = is_tracing(self.tracer)
        if faulted:
            if tracing:
                self.tracer.emit(
                    FaultInjected(round_index=clock, site=self._site, fault=kind)
                )
            return True
        if down and tracing:
            self.tracer.emit(FaultRecovered(round_index=clock, site=self._site))
        return False


class FlakyServer(_ScheduledWrapper):
    """Transiently unresponsive: frozen on rounds where the schedule fires.

    During a faulted round the inner server neither hears nor speaks (as
    if unplugged); on the next clean round it resumes from exactly the
    state it froze in — transient unresponsiveness *with recovery*, the
    behaviour retry/backoff machinery must survive.
    """

    @property
    def name(self) -> str:
        return f"flaky({self._schedule.name})({self._inner.name})"

    def step(
        self, state: _FaultyServerState, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[_FaultyServerState, ServerOutbox]:
        # Fresh state per step (no in-place mutation): under FULL recording
        # the engine keeps the previous state as the round's snapshot.
        fired = state.schedule_run.fires(state.clock)
        down = self._note(state.clock, state.down, "flaky", fired)
        inner_state = state.inner_state
        if fired:
            outbox = ServerOutbox()
        else:
            inner_state, outbox = self._inner.step(inner_state, inbox, rng)
        return (
            _FaultyServerState(inner_state, state.schedule_run, state.clock + 1, down),
            outbox,
        )


class CrashingServer(_ScheduledWrapper):
    """Fail-stop: dead forever from the first round its schedule fires.

    The strongest outage model — after the crash the server is silent for
    the rest of the execution (no recovery event is ever emitted).  With a
    :class:`~repro.faults.schedules.ScriptedSchedule` the crash round is
    exact; with a Bernoulli schedule it is a geometric lifetime.
    """

    @property
    def name(self) -> str:
        return f"crashing({self._schedule.name})({self._inner.name})"

    def step(
        self, state: _FaultyServerState, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[_FaultyServerState, ServerOutbox]:
        down = state.down
        if not down and state.schedule_run.fires(state.clock):
            down = self._note(state.clock, state.down, "crash", True)
        inner_state = state.inner_state
        if down:
            outbox = ServerOutbox()
        else:
            inner_state, outbox = self._inner.step(inner_state, inbox, rng)
        return (
            _FaultyServerState(inner_state, state.schedule_run, state.clock + 1, down),
            outbox,
        )


class ByzantineWrapper(_ScheduledWrapper):
    """Adversarial replies while the schedule fires (a bounded lie window).

    On faulted rounds the inner server still runs (its state advances and
    its world-side effects happen — the physical world cannot be forged)
    but its reply to the *user* is replaced by an adversarial message.
    The default forgery echoes a plausible-looking but wrong payload;
    pass ``forge=`` to script a sharper attack.  Safety claims are tested
    against exactly this wrapper: a safely-sensed user may waste the lie
    window but must never accept on the strength of forged replies.
    """

    def __init__(
        self,
        inner: ServerStrategy,
        schedule: FaultSchedule,
        forge: str = "ACK:forged",
        tracer: TracerLike = None,
    ) -> None:
        super().__init__(inner, schedule, tracer)
        self._forge = forge

    @property
    def name(self) -> str:
        return f"byzantine({self._schedule.name})({self._inner.name})"

    def step(
        self, state: _FaultyServerState, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[_FaultyServerState, ServerOutbox]:
        fired = state.schedule_run.fires(state.clock)
        down = self._note(state.clock, state.down, "byzantine", fired)
        inner_state, outbox = self._inner.step(state.inner_state, inbox, rng)
        if fired:
            outbox = ServerOutbox(to_user=self._forge, to_world=outbox.to_world)
        return (
            _FaultyServerState(inner_state, state.schedule_run, state.clock + 1, down),
            outbox,
        )
