"""Robustness verification: safety and viability across a fault grid.

Theorem 1's guarantees are stated for a noiseless medium; this module
measures what survives on a noisy one.  :func:`verify_robustness` runs a
(user, server, goal, sensing) system across a grid of fault-channel
configurations and reports, per grid point:

* the **empirical viability margin** — the fraction of runs that still
  achieve the goal (how much universality the noise costs);
* the **empirical safety margin** — whether any run produced a *false
  positive indication*: for finite goals, a halt the sensing endorsed on a
  history the referee rejects; for compact goals, a failing tail the
  sensing nevertheless scored all-positive (the settling criterion of
  :func:`repro.core.properties.check_compact_safety`);
* the **mean enumeration overhead** — for universal users (anything
  exposing a reassignable ``tracer``), the mean
  :attr:`~repro.obs.overhead.OverheadReport.overhead_ratio` across the
  point's runs, measured by :func:`repro.obs.overhead.compute_overhead`
  on each run's trace — noise should raise the overhead before it dents
  the success rate, and this column shows exactly that.

Safety is the property the paper makes unconditional — faults may delay
success but must never make failure look like success — so a single false
positive anywhere on the grid is a verification failure
(:attr:`RobustnessReport.safe` is False), while degraded success rates are
expected and merely quantified.

The grid is deterministic end to end: every run's fault trace derives
from its execution seed (see :mod:`repro.faults.schedules`), so a failing
grid point names an exactly replayable execution.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.execution import ExecutionResult, FaultyChannelLike, run_execution
from repro.core.goals import Goal
from repro.core.properties import _indications_per_round
from repro.core.sensing import Sensing
from repro.core.strategy import ServerStrategy, UserStrategy
from repro.faults.channel import (
    BOTH,
    CORRUPT,
    DROP,
    ChannelFault,
    FaultyChannel,
    drop_channel,
)
from repro.faults.schedules import BernoulliSchedule, BurstSchedule
from repro.obs.overhead import compute_overhead
from repro.obs.sinks import MemorySink
from repro.obs.tracer import Tracer


def default_fault_grid() -> List[Optional[FaultyChannel]]:
    """The standard degradation surface: perfect → drops → noise → bursts.

    Small enough to run inside a test, broad enough to cover the three
    qualitatively different failure modes (loss, corruption, outage).
    """
    return [
        None,
        drop_channel(0.05),
        drop_channel(0.10),
        FaultyChannel(
            [ChannelFault(CORRUPT, BernoulliSchedule(0.10, salt=1), BOTH)],
            label="corrupt(0.1)",
        ),
        FaultyChannel(
            [ChannelFault(DROP, BurstSchedule(period=32, burst=4, phase=8), BOTH)],
            label="burst-outage(4/32)",
        ),
    ]


@dataclass(frozen=True)
class FaultPointReport:
    """Aggregated outcomes for one fault-grid point."""

    channel_name: str
    runs: int
    achieved: int
    halted: int
    false_positives: int
    mean_rounds: float
    #: Mean enumeration-overhead ratio across the point's runs (NaN when
    #: the user is not universal / emitted no trials).
    mean_overhead_ratio: float = math.nan

    @property
    def success_rate(self) -> float:
        return self.achieved / self.runs if self.runs else math.nan

    @property
    def safe(self) -> bool:
        return self.false_positives == 0


@dataclass(frozen=True)
class RobustnessReport:
    """The full grid verdict: per-point margins plus headline properties."""

    goal_name: str
    user_name: str
    points: Tuple[FaultPointReport, ...]

    @property
    def safe(self) -> bool:
        """No false positive indication anywhere on the grid."""
        return all(point.safe for point in self.points)

    @property
    def viability_floor(self) -> float:
        """The worst success rate across the grid (1.0 = fully robust)."""
        return min((point.success_rate for point in self.points), default=math.nan)

    def point(self, channel_name: str) -> FaultPointReport:
        """Look up one grid point by its channel name."""
        for p in self.points:
            if p.channel_name == channel_name:
                return p
        raise KeyError(f"no grid point named {channel_name!r}")

    def format(self) -> str:
        """A fixed-width table of the grid (for logs and reports)."""
        from repro.analysis.tables import format_table

        rows = [
            [
                p.channel_name,
                f"{p.achieved}/{p.runs}",
                f"{p.success_rate:.2f}",
                str(p.false_positives),
                "-" if math.isnan(p.mean_rounds) else f"{p.mean_rounds:.0f}",
                "-"
                if math.isnan(p.mean_overhead_ratio)
                else f"{p.mean_overhead_ratio:.3f}",
            ]
            for p in self.points
        ]
        return format_table(
            [
                "fault channel", "achieved", "rate", "false-pos",
                "mean rounds", "overhead",
            ],
            rows,
            title=f"robustness: {self.user_name} on {self.goal_name}",
        )


def _false_positive(goal: Goal, sensing: Sensing, execution: ExecutionResult) -> bool:
    """Did sensing endorse a failure?  (The safety violation we hunt.)"""
    if goal.is_compact:
        verdict = goal.referee.judge(execution)
        half = execution.rounds_executed // 2
        failing_late = (
            verdict.last_bad_round is not None and verdict.last_bad_round > half
        )
        if not failing_late:
            return False
        indications = _indications_per_round(sensing, execution.user_view)
        return all(indications[half:])
    if not execution.halted:
        return False
    if not sensing.indicate(execution.user_view):
        return False
    return not goal.evaluate(execution).achieved


def _point_runs(
    user: UserStrategy,
    servers: Sequence[ServerStrategy],
    goal: Goal,
    channel: Optional[FaultyChannelLike],
    seeds: Sequence[int],
    max_rounds: int,
    batch: int,
    user_traceable: bool,
) -> List[Tuple[ServerStrategy, int, ExecutionResult, Optional[MemorySink]]]:
    """All of one grid point's runs, server-major, on either engine path.

    ``batch == 1`` is the serial reference: one :func:`run_execution` per
    (server, seed), borrowing the original user's ``tracer``.  ``batch > 1``
    steps chunks of runs in lockstep; each slot carries a deep-copied user
    holding a private :class:`~repro.obs.tracer.Tracer`, so per-run event
    streams stay in-order and complete (what overhead + certification
    consume).  Both paths return identical executions — the lockstep
    engine's parity contract, pinned by ``tests/faults`` / ``tests/core``.
    """
    pairs = [(server, seed) for server in servers for seed in seeds]
    results: List[
        Tuple[ServerStrategy, int, ExecutionResult, Optional[MemorySink]]
    ] = []
    if batch == 1:
        for server, seed in pairs:
            sink = MemorySink() if user_traceable else None
            saved = user.tracer if user_traceable else None
            if user_traceable:
                user.tracer = Tracer(sink=sink)
            try:
                execution = run_execution(
                    user,
                    server,
                    goal.world,
                    max_rounds=max_rounds,
                    seed=seed,
                    channel=channel,
                )
            finally:
                if user_traceable:
                    user.tracer = saved
            results.append((server, seed, execution, sink))
        return results
    from repro.core.batch import BatchItem, run_execution_batch

    for start in range(0, len(pairs), batch):
        chunk = pairs[start : start + batch]
        items: List[BatchItem] = []
        sinks: List[Optional[MemorySink]] = []
        for server, seed in chunk:
            slot_user = user
            slot_sink: Optional[MemorySink] = None
            if user_traceable:
                slot_sink = MemorySink()
                slot_user = copy.deepcopy(user)
                slot_user.tracer = Tracer(sink=slot_sink)
            sinks.append(slot_sink)
            items.append(
                BatchItem(
                    user=slot_user,
                    server=server,
                    world=goal.world,
                    seed=seed,
                    max_rounds=max_rounds,
                    channel=channel,
                )
            )
        executions = run_execution_batch(items)
        for (server, seed), execution, sink in zip(chunk, executions, sinks):
            results.append((server, seed, execution, sink))
    return results


def verify_robustness(
    user: UserStrategy,
    servers: Sequence[ServerStrategy],
    goal: Goal,
    sensing: Sensing,
    *,
    grid: Optional[Sequence[Optional[FaultyChannelLike]]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    max_rounds: int = 2000,
    batch: int = 1,
    certify: bool = False,
) -> RobustnessReport:
    """Sweep the fault grid and measure empirical safety/viability margins.

    Every (channel, server, seed) triple is one full execution under the
    default (FULL) recording policy — the safety check replays the user's
    view through the sensing function, so per-round history is required.

    ``batch=N`` steps up to N of a grid point's runs in lockstep through
    :func:`repro.core.batch.run_execution_batch` instead of one at a time
    — results are identical (the lockstep engine's contract), and every
    run still carries its *own* in-order event stream (each lockstep slot
    gets a deep-copied user with a private tracer), so the per-run
    overhead accounting and ``certify=True`` work unchanged.

    With ``certify=True`` (universal users only), every run's in-memory
    event stream is additionally handed to
    :func:`repro.obs.certify.certify_events`; any internal inconsistency
    — an unjustified strategy switch, a trial closed with an
    out-of-vocabulary reason — raises
    :class:`~repro.obs.certify.CertificationError` naming the offending
    grid point, so a grid that passes was not merely safe but internally
    coherent event-by-event.
    """
    if grid is None:
        grid = default_fault_grid()
    if batch < 1:
        raise ValueError(f"batch must be >= 1: {batch}")
    # Universal users expose a reassignable ``tracer``; borrowing it per
    # run yields the event stream the overhead accounting reads.  Tracing
    # is read-only, so every traced run is bitwise-identical to untraced.
    user_traceable = hasattr(user, "tracer")
    points: List[FaultPointReport] = []
    for channel in grid:
        name = "perfect" if channel is None else getattr(channel, "name", "channel")
        runs = achieved = halted = false_positives = 0
        achieved_rounds: List[int] = []
        overhead_ratios: List[float] = []
        for server, seed, execution, sink in _point_runs(
            user, servers, goal, channel, seeds, max_rounds, batch, user_traceable
        ):
            runs += 1
            outcome = goal.evaluate(execution)
            if outcome.achieved:
                achieved += 1
                achieved_rounds.append(outcome.rounds)
            if execution.halted:
                halted += 1
            if _false_positive(goal, sensing, execution):
                false_positives += 1
            if sink is not None:
                events = sink.events
                overhead = compute_overhead(events)
                if overhead.trials:
                    overhead_ratios.append(overhead.overhead_ratio)
                if certify:
                    # Lazy: the checker is analysis-side code and must
                    # not load on the plain verification path.
                    from repro.obs.certify import (
                        CertificationError,
                        certify_events,
                    )

                    label = f"{name}/server={server.name}/seed={seed}"
                    certificate = certify_events(events, trace=label)
                    if not certificate.ok:
                        raise CertificationError(certificate.format())
        points.append(
            FaultPointReport(
                channel_name=name,
                runs=runs,
                achieved=achieved,
                halted=halted,
                false_positives=false_positives,
                mean_rounds=(
                    sum(achieved_rounds) / len(achieved_rounds)
                    if achieved_rounds
                    else math.nan
                ),
                mean_overhead_ratio=(
                    sum(overhead_ratios) / len(overhead_ratios)
                    if overhead_ratios
                    else math.nan
                ),
            )
        )
    return RobustnessReport(
        goal_name=goal.name, user_name=user.name, points=tuple(points)
    )
