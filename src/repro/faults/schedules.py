"""Deterministic fault schedules: *when* a fault fires.

A :class:`FaultSchedule` is a picklable, immutable description of a fault
process; :meth:`FaultSchedule.start` instantiates it for one execution as
a :class:`ScheduleRun` whose :meth:`~ScheduleRun.fires` is consulted once
per round.  All randomness derives from the seed passed to ``start`` —
which the engine in turn derives from the run's master seed — so the same
execution seed replays the exact same fault trace, serially or inside a
process-pool worker, under any recording policy.

The determinism contract every schedule honours:

* ``fires`` is called with consecutive round indices ``0, 1, 2, ...`` and
  consumes a fixed amount of randomness per call (independent of channel
  traffic), so the firing pattern is a pure function of ``(schedule,
  seed)``;
* ``start`` never mutates the schedule — a schedule can be shared across
  the cells of a sweep, and each run replays its own trace.

Three shapes cover the experiments:

* :class:`BernoulliSchedule` — i.i.d. faults at a fixed rate (the
  memoryless channel of classical noisy-channel models);
* :class:`BurstSchedule` — periodic outage windows (Gilbert–Elliott-style
  bad states with deterministic phase, so recovery timing is exact in
  tests);
* :class:`ScriptedSchedule` — an explicit set of fault rounds (replaying
  a trace, or pinning a regression to one adversarial round).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Mapping


class ScheduleRun:
    """Per-execution state of a schedule: feed it every round, in order."""

    def fires(self, round_index: int) -> bool:
        """True iff the fault fires on this round."""
        raise NotImplementedError


class FaultSchedule:
    """An immutable description of a fault process."""

    def start(self, seed: int) -> ScheduleRun:
        """A fresh run of this schedule, fully determined by ``seed``."""
        raise NotImplementedError

    def spec(self) -> Dict[str, Any]:
        """A plain-JSON description that :func:`schedule_from_spec` inverts.

        Specs make fault configurations self-describing in trace headers,
        which is what lets ``repro.obs certify`` replay a run's fault
        schedule without the recording process.  Custom schedules may
        decline (the default): recorders then omit the spec and the run is
        simply not fault-replayable.
        """
        raise NotImplementedError(f"{type(self).__name__} has no spec")

    @property
    def name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"<FaultSchedule {self.name}>"


@dataclass(frozen=True)
class NeverSchedule(FaultSchedule):
    """The fault never fires (the identity element for fault grids)."""

    @property
    def name(self) -> str:
        return "never"

    def start(self, seed: int) -> ScheduleRun:
        return _NeverRun()

    def spec(self) -> Dict[str, Any]:
        return {"type": "never"}


class _NeverRun(ScheduleRun):
    __slots__ = ()

    def fires(self, round_index: int) -> bool:
        return False


@dataclass(frozen=True)
class BernoulliSchedule(FaultSchedule):
    """Fires independently each round with probability ``rate``.

    ``salt`` decorrelates several Bernoulli schedules driven by the same
    execution seed (e.g. independent drop processes on the two directions
    of a channel): runs with different salts consume independent streams.
    """

    rate: float
    salt: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1]: {self.rate}")

    @property
    def name(self) -> str:
        return f"bernoulli({self.rate})"

    def start(self, seed: int) -> ScheduleRun:
        # String seeding hashes via SHA-512 inside random.Random — stable
        # across processes and Python versions, unlike hash()-based mixing.
        return _BernoulliRun(random.Random(f"{seed}/{self.salt}"), self.rate)

    def spec(self) -> Dict[str, Any]:
        return {"type": "bernoulli", "rate": self.rate, "salt": self.salt}


class _BernoulliRun(ScheduleRun):
    """One coin per round, drawn whether or not the channel is busy.

    Drawing unconditionally is what makes the firing pattern independent
    of traffic: two runs with the same seed agree on every round even if
    an earlier fault changed what the parties said afterwards.
    """

    __slots__ = ("_rng", "_rate", "_next_round")

    def __init__(self, rng: random.Random, rate: float) -> None:
        self._rng = rng
        self._rate = rate
        self._next_round = 0

    def fires(self, round_index: int) -> bool:
        if round_index != self._next_round:
            raise ValueError(
                f"schedule consulted out of order: round {round_index}, "
                f"expected {self._next_round}"
            )
        self._next_round += 1
        return self._rng.random() < self._rate


@dataclass(frozen=True)
class BurstSchedule(FaultSchedule):
    """Fires during a window of each period: rounds ``r`` with
    ``phase <= r % period < phase + burst``.

    Deterministic (no randomness at all), so tests can assert recovery
    timing exactly; ``BurstSchedule(period=10, burst=3)`` is down for
    rounds 0-2, 10-12, 20-22, ...  The window wraps modulo the period, so
    the firing predicate is exactly ``(r - phase) % period < burst``.
    """

    period: int
    burst: int
    phase: int = 0

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be >= 1: {self.period}")
        if not 0 <= self.burst <= self.period:
            raise ValueError(
                f"burst must be in [0, period={self.period}]: {self.burst}"
            )
        if not 0 <= self.phase < self.period:
            raise ValueError(
                f"phase must be in [0, period={self.period}): {self.phase}"
            )

    @property
    def name(self) -> str:
        return f"burst({self.burst}/{self.period}@{self.phase})"

    def start(self, seed: int) -> ScheduleRun:
        return _BurstRun(self.period, self.burst, self.phase)

    def spec(self) -> Dict[str, Any]:
        return {
            "type": "burst",
            "period": self.period,
            "burst": self.burst,
            "phase": self.phase,
        }


class _BurstRun(ScheduleRun):
    __slots__ = ("_period", "_burst", "_phase")

    def __init__(self, period: int, burst: int, phase: int) -> None:
        self._period = period
        self._burst = burst
        self._phase = phase

    def fires(self, round_index: int) -> bool:
        return (round_index - self._phase) % self._period < self._burst


@dataclass(frozen=True)
class ScriptedSchedule(FaultSchedule):
    """Fires on exactly the listed rounds.

    The precision instrument: replay a recorded fault trace, or pin a
    regression test to the one round where the fault matters (e.g. "drop
    the server's positive indication, and only it").
    """

    rounds: FrozenSet[int]

    def __init__(self, rounds: Iterable[int]) -> None:
        # Normalise any iterable (the natural call is a list literal) into
        # the hashable frozen field the dataclass machinery expects.
        object.__setattr__(self, "rounds", frozenset(rounds))
        if any(r < 0 for r in self.rounds):
            raise ValueError(f"rounds must be non-negative: {sorted(self.rounds)}")

    @property
    def name(self) -> str:
        shown = ",".join(str(r) for r in sorted(self.rounds)[:4])
        suffix = ",..." if len(self.rounds) > 4 else ""
        return f"scripted({shown}{suffix})"

    def start(self, seed: int) -> ScheduleRun:
        return _ScriptedRun(self.rounds)

    def spec(self) -> Dict[str, Any]:
        return {"type": "scripted", "rounds": sorted(self.rounds)}


class _ScriptedRun(ScheduleRun):
    __slots__ = ("_rounds",)

    def __init__(self, rounds: FrozenSet[int]) -> None:
        self._rounds = rounds

    def fires(self, round_index: int) -> bool:
        return round_index in self._rounds


def schedule_from_spec(data: Mapping[str, Any]) -> FaultSchedule:
    """Rebuild a schedule from :meth:`FaultSchedule.spec` output.

    The inverse is exact: ``schedule_from_spec(s.spec()) == s`` for every
    built-in schedule, so a replay drives the identical firing pattern.
    Raises ``ValueError`` on an unknown ``type`` tag.
    """
    schedule_type = data.get("type")
    if schedule_type == "never":
        return NeverSchedule()
    if schedule_type == "bernoulli":
        return BernoulliSchedule(
            rate=float(data["rate"]), salt=int(data.get("salt", 0))
        )
    if schedule_type == "burst":
        return BurstSchedule(
            period=int(data["period"]),
            burst=int(data["burst"]),
            phase=int(data.get("phase", 0)),
        )
    if schedule_type == "scripted":
        return ScriptedSchedule(int(r) for r in data["rounds"])
    raise ValueError(f"unknown schedule spec type: {schedule_type!r}")
