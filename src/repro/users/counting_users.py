"""Counting users: the sumcheck verifier as a user strategy.

The #SAT sibling of :class:`repro.users.delegation_users.DelegationUser`:
reads the instance from the counting world, runs the sumcheck with the
server through a codec guess, and halts with ``COUNT:<n>`` only when the
proof verified.  State exposes ``proof_accepted`` for the goal's sensing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.comm.codecs import Codec
from repro.comm.messages import SILENCE, UserInbox, UserOutbox, parse_tagged
from repro.core.strategy import UserStrategy
from repro.errors import AlgebraError, CodecError, FormulaError
from repro.ip.sumcheck import SumcheckVerifierSession
from repro.ip.transcript import transcript_events
from repro.mathx.modular import Field
from repro.mathx.polynomials import Poly
from repro.obs.tracer import TracerLike, is_tracing
from repro.qbf import formulas
from repro.worlds.counting import canonical_order

_WAIT_INSTANCE = "wait-instance"
_WAIT_CLAIM = "wait-claim"
_WAIT_POLY = "wait-poly"
_FAILED = "failed"


@dataclass
class CountingUserState:
    """State of one counting attempt; ``proof_accepted`` feeds sensing."""

    phase: str = _WAIT_INSTANCE
    instance: Optional[str] = None
    session: Optional[SumcheckVerifierSession] = None
    claim: Optional[int] = None
    expected_round: int = 0
    last_request: str = SILENCE
    rounds_waiting: int = 0
    proof_accepted: bool = False


class CountingUser(UserStrategy):
    """Verifies a delegated #SAT count through one codec guess."""

    def __init__(
        self,
        codec: Codec,
        field_: Field,
        *,
        resend_every: int = 8,
        proof_seed: int = 0,
        tracer: TracerLike = None,
    ) -> None:
        if resend_every < 1:
            raise ValueError(f"resend_every must be >= 1: {resend_every}")
        self._codec = codec
        self._field = field_
        self._resend_every = resend_every
        self._proof_seed = proof_seed
        #: Public and reassignable so ``record_run`` can borrow it.
        self.tracer: TracerLike = tracer

    @property
    def name(self) -> str:
        return f"count@{self._codec.name}"

    def initial_state(self, rng: random.Random) -> CountingUserState:
        return CountingUserState()

    def step(
        self, state: CountingUserState, inbox: UserInbox, rng: random.Random
    ) -> Tuple[CountingUserState, UserOutbox]:
        if state.phase == _FAILED:
            return state, UserOutbox()
        if state.phase == _WAIT_INSTANCE:
            return state, self._read_instance(state, inbox)

        server_says = self._decode(inbox.from_server)
        if state.phase == _WAIT_CLAIM:
            outbox = self._read_claim(state, server_says, rng)
        else:
            outbox = self._read_poly(state, server_says)
        if outbox is not None:
            return state, outbox

        state.rounds_waiting += 1
        if state.rounds_waiting >= self._resend_every and state.last_request:
            state.rounds_waiting = 0
            return state, UserOutbox(to_server=self._codec.encode(state.last_request))
        return state, UserOutbox()

    # ------------------------------------------------------------------
    def _read_instance(
        self, state: CountingUserState, inbox: UserInbox
    ) -> UserOutbox:
        parsed = parse_tagged(inbox.from_world)
        if parsed is None or parsed[0] != "COUNT-INSTANCE":
            return UserOutbox()
        try:
            formulas.parse(parsed[1])
        except FormulaError:
            return UserOutbox()
        state.instance = parsed[1]
        state.phase = _WAIT_CLAIM
        return self._request(state, f"COUNT:{state.instance}")

    def _read_claim(
        self, state: CountingUserState, server_says: Optional[str], rng: random.Random
    ) -> Optional[UserOutbox]:
        parsed = parse_tagged(server_says or "")
        if parsed is None or parsed[0] != "CLAIMSUM":
            return None
        try:
            claim = int(parsed[1])
        except ValueError:
            return None
        assert state.instance is not None
        formula = formulas.parse(state.instance)
        order = canonical_order(formula)
        # Integer range check BEFORE the algebra: the sumcheck verifies the
        # claim modulo p, so a prover could claim ``count + p`` — field-equal
        # to the truth, integer-wrong.  A count of n variables lies in
        # [0, 2^n]; anything else is a lie no polynomial can launder.
        if not 0 <= claim <= 2 ** len(order):
            state.phase = _FAILED
            return UserOutbox()
        session_rng = random.Random(rng.getrandbits(64) ^ self._proof_seed)
        state.session = SumcheckVerifierSession(
            formula, self._field, order, session_rng
        )
        state.claim = claim
        state.session.begin(claim)
        state.phase = _WAIT_POLY
        state.expected_round = 0
        return self._request(state, "SROUND:0")

    def _read_poly(
        self, state: CountingUserState, server_says: Optional[str]
    ) -> Optional[UserOutbox]:
        parsed = parse_tagged(server_says or "")
        if parsed is None or parsed[0] != "SPOLY":
            return None
        index_text, _, coeffs_text = parsed[1].partition(":")
        try:
            index = int(index_text)
        except ValueError:
            return None
        if index != state.expected_round:
            return None
        assert state.session is not None
        try:
            poly = Poly.deserialize(self._field, coeffs_text)
        except AlgebraError:
            state.phase = _FAILED
            return UserOutbox()
        challenge = state.session.receive_poly(poly)
        if state.session.finished:
            self._emit_proof(state.session)
            if state.session.accepted:
                state.proof_accepted = True
                return UserOutbox(halt=True, output=f"COUNT:{state.claim}")
            state.phase = _FAILED
            return UserOutbox()
        state.expected_round = index + 1
        return self._request(state, f"SROUND:{index + 1}:{challenge}")

    def _emit_proof(self, session: SumcheckVerifierSession) -> None:
        """Serialise the finished session's transcript into the trace."""
        if not is_tracing(self.tracer):
            return
        transcript = session.transcript
        if transcript is None or transcript.accepted is None:
            return
        for event in transcript_events(
            transcript, protocol="sumcheck", modulus=self._field.p
        ):
            self.tracer.emit(event)

    # ------------------------------------------------------------------
    def _request(self, state: CountingUserState, plain: str) -> UserOutbox:
        state.last_request = plain
        state.rounds_waiting = 0
        return UserOutbox(to_server=self._codec.encode(plain))

    def _decode(self, message: str) -> Optional[str]:
        if message == SILENCE:
            return None
        try:
            return self._codec.decode(message)
        except CodecError:
            return None


def counting_user_class(
    codecs: Sequence[Codec], field_: Field
) -> List[CountingUser]:
    """One counting user per codec guess, in enumeration order."""
    return [CountingUser(codec, field_) for codec in codecs]
