"""Navigation users: follow the guide through a codec guess.

:class:`GuidedNavigator` relays decoded ``GO:<direction>`` advice as
``MOVE:<direction>`` commands and halts the moment the world reports
arrival.  With a wrong codec guess the advice is noise, the agent stands
still, and the candidate never halts — burning exactly the trial budget
the finite universal user allotted it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.comm.codecs import Codec
from repro.comm.messages import SILENCE, UserInbox, UserOutbox, parse_tagged
from repro.core.strategy import UserStrategy
from repro.errors import CodecError
from repro.worlds.navigation import DIRECTIONS


@dataclass
class _NavigatorState:
    rounds: int = 0
    last_moved_from: Optional[str] = None


class GuidedNavigator(UserStrategy):
    """Moves as advised (through one codec); halts on the arrival report.

    Two disciplines keep the two-round channel latency from steering the
    agent in circles: advice is only followed when it names the *currently
    reported* position, and at most one move is issued per reported
    position (the world's report lags the move by two rounds, during which
    the same advice keeps arriving).
    """

    def __init__(self, codec: Codec) -> None:
        self._codec = codec

    @property
    def name(self) -> str:
        return f"navigate@{self._codec.name}"

    def initial_state(self, rng: random.Random) -> _NavigatorState:
        return _NavigatorState()

    def step(
        self, state: _NavigatorState, inbox: UserInbox, rng: random.Random
    ) -> Tuple[_NavigatorState, UserOutbox]:
        state.rounds += 1
        position, arrived = self._parse_world(inbox.from_world)
        if arrived:
            return state, UserOutbox(halt=True, output="ARRIVED")
        advice = self._decode_advice(inbox.from_server)
        if advice is None or position is None:
            return state, UserOutbox()
        advice_position, direction = advice
        if advice_position != position or position == state.last_moved_from:
            return state, UserOutbox()
        state.last_moved_from = position
        return state, UserOutbox(to_server=SILENCE, to_world=f"MOVE:{direction}")

    @staticmethod
    def _parse_world(message: str) -> Tuple[Optional[str], bool]:
        """Extract (position text, arrived flag) from a world report."""
        if not message:
            return None, False
        body, _, at = message.partition(";AT:")
        parsed = parse_tagged(body)
        if parsed is None or parsed[0] != "POS":
            return None, False
        return parsed[1], at == "1"

    def _decode_advice(self, message: str) -> Optional[Tuple[str, str]]:
        if message == SILENCE:
            return None
        try:
            decoded = self._codec.decode(message)
        except CodecError:
            return None
        parsed = parse_tagged(decoded)
        if parsed is None or parsed[0] != "GO":
            return None
        position, sep, direction = parsed[1].partition("=")
        if not sep or direction not in DIRECTIONS:
            return None
        return position, direction


def navigator_user_class(codecs: Sequence[Codec]) -> List[GuidedNavigator]:
    """One navigator per codec guess, in enumeration order."""
    return [GuidedNavigator(codec) for codec in codecs]
