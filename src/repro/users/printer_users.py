"""Printer user protocols: one per (dialect, codec) hypothesis.

:class:`PrinterProtocolUser` is the base protocol that *would* print
correctly if its dialect/codec guess matches the server; the enumeration of
all such guesses (:func:`printer_user_class`) is the candidate class fed to
the finite universal user in experiments E2/E9.

The protocol: read the job from the world, perform the dialect's handshake
if any, send the print command (re-sending periodically — commands may be
ignored by a mismatched server, and the world's feedback lags by the
channel latency), and halt as soon as the world's feedback shows the
document printed.  With a wrong guess the feedback never shows the
document, the user never halts, and a universal user's trial budget expires
— which is exactly how Theorem 1's construction is supposed to spend its
overhead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.comm.codecs import Codec
from repro.comm.messages import UserInbox, UserOutbox, parse_tagged
from repro.core.strategy import UserStrategy
from repro.servers.printer_servers import DIALECTS


@dataclass
class _PrinterUserState:
    document: Optional[str] = None
    handshake_sent: bool = False
    rounds_since_send: int = 0
    rounds_since_first_send: int = 0
    sent_once: bool = False
    rounds: int = 0


class PrinterProtocolUser(UserStrategy):
    """Prints via one fixed dialect/codec guess; halts on confirmed success.

    ``blind_halt_after`` supports the feedback-free world of experiment E9:
    when set, the user halts that many rounds after first sending the
    command, *without* evidence — the best a blind user can do, and
    provably not safe.
    """

    def __init__(
        self,
        dialect: str,
        codec: Codec,
        *,
        resend_every: int = 6,
        blind_halt_after: Optional[int] = None,
    ) -> None:
        if dialect not in DIALECTS:
            raise ValueError(f"unknown dialect: {dialect!r}")
        if resend_every < 1:
            raise ValueError(f"resend_every must be >= 1: {resend_every}")
        self._dialect = dialect
        self._codec = codec
        self._resend_every = resend_every
        self._blind_halt_after = blind_halt_after

    @property
    def name(self) -> str:
        return f"print-{self._dialect}@{self._codec.name}"

    def initial_state(self, rng: random.Random) -> _PrinterUserState:
        return _PrinterUserState()

    def step(
        self, state: _PrinterUserState, inbox: UserInbox, rng: random.Random
    ) -> Tuple[_PrinterUserState, UserOutbox]:
        state.rounds += 1
        document, tail = self._parse_world(inbox.from_world)
        if document is not None:
            state.document = document

        if state.document is None:
            return state, UserOutbox()  # Waiting for the job announcement.

        if tail is not None and state.document in tail:
            return state, UserOutbox(halt=True, output="PRINTED")
        if state.sent_once:
            state.rounds_since_first_send += 1
        if (
            self._blind_halt_after is not None
            and state.sent_once
            and state.rounds_since_first_send >= self._blind_halt_after
        ):
            return state, UserOutbox(halt=True, output="PRINTED-BLIND")

        if self._dialect == "handshake" and not state.handshake_sent:
            state.handshake_sent = True
            return state, UserOutbox(to_server=self._codec.encode("HELLO"))

        state.rounds_since_send += 1
        if not state.sent_once or state.rounds_since_send >= self._resend_every:
            state.sent_once = True
            state.rounds_since_send = 0
            return state, UserOutbox(to_server=self._command(state.document))
        return state, UserOutbox()

    def _command(self, document: str) -> str:
        if self._dialect == "space":
            plain = f"PRINT {document}"
        elif self._dialect == "tagged":
            plain = f"JOB:{document}"
        else:
            plain = f"DATA {document}"
        return self._codec.encode(plain)

    @staticmethod
    def _parse_world(message: str) -> Tuple[Optional[str], Optional[str]]:
        """Extract (document, printed tail) from a world announcement."""
        if not message:
            return None, None
        job_part, _, tail_part = message.partition(";")
        job = parse_tagged(job_part)
        if job is None or job[0] != "JOB":
            return None, None
        tail = parse_tagged(tail_part) if tail_part else None
        if tail is not None and tail[0] != "TAIL":
            tail = None
        return job[1], tail[1] if tail is not None else None


def printer_user_class(
    dialects: Sequence[str],
    codecs: Sequence[Codec],
    *,
    blind_halt_after: Optional[int] = None,
) -> List[PrinterProtocolUser]:
    """The candidate class ``dialects × codecs``, in enumeration order.

    The order matches :func:`repro.servers.printer_servers.printer_server_class`
    so experiments can plant a matching pair at a known index.
    """
    return [
        PrinterProtocolUser(dialect, codec, blind_halt_after=blind_halt_after)
        for dialect in dialects
        for codec in codecs
    ]
