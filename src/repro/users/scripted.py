"""Scripted and composite user strategies (test and harness utilities).

:class:`ScriptedUser` replays a fixed message script — the workhorse of
engine tests.  :class:`JunkThenUser` runs a junk strategy for a fixed
number of rounds and then hands over to a real one: it realises the
*forgivingness* check ("any finite partial history extends to success") and
the "server started from any initial state" clause of helpfulness, by
materialising an arbitrary prefix before the strategy under test begins.
:class:`BabblingUser` emits pseudo-random noise — the canonical junk.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

from repro.comm.messages import UserInbox, UserOutbox
from repro.core.strategy import UserStrategy


class ScriptedUser(UserStrategy):
    """Plays a fixed sequence of outboxes, then stays silent (or halts).

    ``script`` entries are :class:`UserOutbox` instances; after the script
    runs out the user sends nothing, unless ``halt_after`` is set, in which
    case it halts with the given output right after the script.
    """

    def __init__(
        self,
        script: Sequence[UserOutbox],
        *,
        halt_after: Optional[str] = None,
        label: str = "scripted",
    ) -> None:
        self._script = list(script)
        self._halt_after = halt_after
        self._label = label

    @property
    def name(self) -> str:
        return f"{self._label}[{len(self._script)}]"

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: UserInbox, rng: random.Random
    ) -> Tuple[int, UserOutbox]:
        if state < len(self._script):
            return state + 1, self._script[state]
        if state == len(self._script) and self._halt_after is not None:
            return state + 1, UserOutbox(halt=True, output=self._halt_after)
        return state + 1, UserOutbox()


class BabblingUser(UserStrategy):
    """Sends pseudo-random printable junk to both counterparts every round.

    Used as the junk phase of forgivingness checks, and as a stress peer
    for servers (nothing a babbler says may crash anyone).
    """

    _ALPHABET = string.ascii_letters + string.digits + " !?#"

    def __init__(self, message_length: int = 8) -> None:
        if message_length < 1:
            raise ValueError(f"message_length must be >= 1: {message_length}")
        self._length = message_length

    @property
    def name(self) -> str:
        return f"babbler({self._length})"

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: UserInbox, rng: random.Random
    ) -> Tuple[int, UserOutbox]:
        def babble() -> str:
            return "".join(rng.choice(self._ALPHABET) for _ in range(self._length))

        return state + 1, UserOutbox(to_server=babble(), to_world=babble())


@dataclass
class _CompositeState:
    rounds: int
    junk_state: Any
    then_state: Any
    then_started: bool


class JunkThenUser(UserStrategy):
    """Runs ``junk`` for ``junk_rounds`` rounds, then switches to ``then``.

    The handover never carries state across: ``then`` starts fresh, exactly
    like a universal user starting a new trial after abandoned ones.  Any
    halt signal emitted by the junk phase is suppressed (junk must not end
    the execution).
    """

    def __init__(
        self, junk: UserStrategy, then: UserStrategy, junk_rounds: int
    ) -> None:
        if junk_rounds < 0:
            raise ValueError(f"junk_rounds must be >= 0: {junk_rounds}")
        self._junk = junk
        self._then = then
        self._junk_rounds = junk_rounds

    @property
    def name(self) -> str:
        return f"junk({self._junk_rounds})+{self._then.name}"

    def initial_state(self, rng: random.Random) -> _CompositeState:
        return _CompositeState(
            rounds=0,
            junk_state=self._junk.initial_state(rng),
            then_state=None,
            then_started=False,
        )

    def step(
        self, state: _CompositeState, inbox: UserInbox, rng: random.Random
    ) -> Tuple[_CompositeState, UserOutbox]:
        state.rounds += 1
        if state.rounds <= self._junk_rounds:
            state.junk_state, outbox = self._junk.step(state.junk_state, inbox, rng)
            if outbox.halt:
                outbox = UserOutbox(to_server=outbox.to_server, to_world=outbox.to_world)
            return state, outbox
        if not state.then_started:
            state.then_state = self._then.initial_state(rng)
            state.then_started = True
        state.then_state, outbox = self._then.step(state.then_state, inbox, rng)
        return state, outbox
