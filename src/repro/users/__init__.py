"""User strategies: base protocols and candidate classes.

Scripted/composite utilities (:mod:`.scripted`), printer protocols
(:mod:`.printer_users`), delegation verifiers (:mod:`.delegation_users`)
and control followers with password authentication (:mod:`.control_users`).
Composed with the enumerations of :mod:`repro.universal`, these classes
instantiate the paper's universal users on every experiment.
"""

from repro.users.scripted import ScriptedUser, BabblingUser, JunkThenUser
from repro.users.printer_users import PrinterProtocolUser, printer_user_class
from repro.users.delegation_users import (
    DelegationUser,
    DelegationUserState,
    delegation_user_class,
    RepeatedDelegationUser,
    RepeatedDelegationState,
    repeated_delegation_user_class,
)
from repro.users.counting_users import (
    CountingUser,
    CountingUserState,
    counting_user_class,
)
from repro.users.navigation_users import (
    GuidedNavigator,
    navigator_user_class,
)
from repro.users.control_users import (
    AdvisorFollowingUser,
    follower_user_class,
    AuthenticatingUser,
    password_user_class,
)

__all__ = [
    "ScriptedUser",
    "BabblingUser",
    "JunkThenUser",
    "PrinterProtocolUser",
    "printer_user_class",
    "DelegationUser",
    "DelegationUserState",
    "delegation_user_class",
    "RepeatedDelegationUser",
    "RepeatedDelegationState",
    "repeated_delegation_user_class",
    "CountingUser",
    "CountingUserState",
    "counting_user_class",
    "GuidedNavigator",
    "navigator_user_class",
    "AdvisorFollowingUser",
    "follower_user_class",
    "AuthenticatingUser",
    "password_user_class",
]
