"""Delegation users: the polynomial-time verifier as a user strategy.

:class:`DelegationUser` wraps the :class:`~repro.ip.qbf_protocol.QBFVerifierSession`
into the three-party model: it reads the instance from the world, runs the
interactive proof with the server *through a codec guess*, and halts with
``ANSWER:<bit>`` only if the proof verified.  Its state exposes
``proof_accepted``, which the delegation goal's sensing
(:class:`repro.worlds.computation.VerifiedProofSensing`) reads — making the
IP's soundness literally the *safety* of the sensing.

Behaviour under mismatch or malice, by construction:

* wrong codec — the server's replies decode to junk; the user waits, nudges
  (re-sends its last request after ``resend_every`` rounds) and never
  halts, so a universal wrapper's trial budget expires and the next
  candidate runs;
* cheating prover — some check fails; the user marks the trial failed and
  goes quiet (same outcome, rejection instead of timeout);
* lazy prover — a bare ``CLAIM`` never reaches the halt path, because only
  a finished, *accepted* verifier session can halt the user.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.comm.codecs import Codec
from repro.comm.messages import SILENCE, UserInbox, UserOutbox, parse_tagged
from repro.core.strategy import UserStrategy
from repro.errors import AlgebraError, CodecError, FormulaError
from repro.ip.qbf_protocol import QBFVerifierSession
from repro.ip.transcript import transcript_events
from repro.mathx.modular import Field
from repro.mathx.polynomials import Poly
from repro.obs.tracer import TracerLike, is_tracing
from repro.qbf.qbf import QBF

#: Protocol phases of the delegation user.
_WAIT_INSTANCE = "wait-instance"
_WAIT_CLAIM = "wait-claim"
_WAIT_POLY = "wait-poly"
_FAILED = "failed"


@dataclass
class DelegationUserState:
    """State of one delegation attempt; ``proof_accepted`` feeds sensing."""

    phase: str = _WAIT_INSTANCE
    instance: Optional[str] = None
    session: Optional[QBFVerifierSession] = None
    claim: Optional[int] = None
    expected_round: int = 0
    last_request: str = SILENCE
    rounds_waiting: int = 0
    proof_accepted: bool = False


class DelegationUser(UserStrategy):
    """Verifies a delegated TQBF answer through one codec guess."""

    def __init__(
        self,
        codec: Codec,
        field_: Field,
        *,
        resend_every: int = 8,
        proof_seed: int = 0,
        tracer: TracerLike = None,
    ) -> None:
        if resend_every < 1:
            raise ValueError(f"resend_every must be >= 1: {resend_every}")
        self._codec = codec
        self._field = field_
        self._resend_every = resend_every
        self._proof_seed = proof_seed
        #: Public and reassignable so ``record_run`` can borrow it, exactly
        #: like the universal users' tracer attribute.
        self.tracer: TracerLike = tracer

    @property
    def name(self) -> str:
        return f"delegate@{self._codec.name}"

    def initial_state(self, rng: random.Random) -> DelegationUserState:
        return DelegationUserState()

    # ------------------------------------------------------------------
    def step(
        self, state: DelegationUserState, inbox: UserInbox, rng: random.Random
    ) -> Tuple[DelegationUserState, UserOutbox]:
        if state.phase == _FAILED:
            return state, UserOutbox()

        if state.phase == _WAIT_INSTANCE:
            return state, self._read_instance(state, inbox)

        server_says = self._decode(inbox.from_server)

        if state.phase == _WAIT_CLAIM:
            outbox = self._read_claim(state, server_says, rng)
        else:  # _WAIT_POLY
            outbox = self._read_poly(state, server_says)
        if outbox is not None:
            return state, outbox

        # Nothing useful arrived: wait, and nudge the server periodically in
        # case our request was lost or ignored.
        state.rounds_waiting += 1
        if state.rounds_waiting >= self._resend_every and state.last_request:
            state.rounds_waiting = 0
            return state, UserOutbox(to_server=self._codec.encode(state.last_request))
        return state, UserOutbox()

    # ------------------------------------------------------------------
    def _read_instance(
        self, state: DelegationUserState, inbox: UserInbox
    ) -> UserOutbox:
        parsed = parse_tagged(inbox.from_world)
        if parsed is None or parsed[0] != "INSTANCE":
            return UserOutbox()
        try:
            QBF.deserialize(parsed[1])
        except FormulaError:
            return UserOutbox()
        state.instance = parsed[1]
        state.phase = _WAIT_CLAIM
        return self._request(state, f"PROVE:{state.instance}")

    def _read_claim(
        self, state: DelegationUserState, server_says: Optional[str], rng: random.Random
    ) -> Optional[UserOutbox]:
        parsed = parse_tagged(server_says or "")
        if parsed is None or parsed[0] != "CLAIM" or parsed[1] not in ("0", "1"):
            return None
        assert state.instance is not None
        qbf = QBF.deserialize(state.instance)
        # The verifier's challenges must be unpredictable to the prover but
        # reproducible per execution: derive them from the engine-provided
        # user RNG (plus a fixed tweak so tests can pin them).
        session_rng = random.Random(rng.getrandbits(64) ^ self._proof_seed)
        state.session = QBFVerifierSession(qbf, self._field, session_rng)
        state.claim = int(parsed[1])
        state.session.begin(state.claim)
        state.phase = _WAIT_POLY
        state.expected_round = 0
        return self._request(state, "ROUND:0")

    def _read_poly(
        self, state: DelegationUserState, server_says: Optional[str]
    ) -> Optional[UserOutbox]:
        parsed = parse_tagged(server_says or "")
        if parsed is None or parsed[0] != "POLY":
            return None
        index_text, _, coeffs_text = parsed[1].partition(":")
        try:
            index = int(index_text)
        except ValueError:
            return None
        if index != state.expected_round:
            return None
        assert state.session is not None
        try:
            poly = Poly.deserialize(self._field, coeffs_text)
        except AlgebraError:
            state.phase = _FAILED
            return UserOutbox()
        challenge = state.session.receive_poly(poly)
        if state.session.finished:
            self._emit_proof(state.session)
            if state.session.accepted:
                state.proof_accepted = True
                return UserOutbox(halt=True, output=f"ANSWER:{state.claim}")
            state.phase = _FAILED
            return UserOutbox()
        state.expected_round = index + 1
        return self._request(state, f"ROUND:{index + 1}:{challenge}")

    def _emit_proof(self, session: QBFVerifierSession) -> None:
        """Serialise the finished session's transcript into the trace."""
        if not is_tracing(self.tracer):
            return
        transcript = session.transcript
        if transcript is None or transcript.accepted is None:
            return
        for event in transcript_events(
            transcript, protocol="qbf", modulus=self._field.p
        ):
            self.tracer.emit(event)

    # ------------------------------------------------------------------
    def _request(self, state: DelegationUserState, plain: str) -> UserOutbox:
        state.last_request = plain
        state.rounds_waiting = 0
        return UserOutbox(to_server=self._codec.encode(plain))

    def _decode(self, message: str) -> Optional[str]:
        if message == SILENCE:
            return None
        try:
            return self._codec.decode(message)
        except CodecError:
            return None


def delegation_user_class(
    codecs: Sequence[Codec], field_: Field
) -> List[DelegationUser]:
    """One delegation user per codec guess, in enumeration order."""
    return [DelegationUser(codec, field_) for codec in codecs]


@dataclass
class RepeatedDelegationState:
    """State of the multi-session wrapper: inner verifier + session id.

    ``done_with_session`` guards against the stale-announcement race: after
    answering session k, the world's k-announcements are still in flight
    for a round; re-verifying one would pair the *old* instance's CLAIM
    with the *next* instance and poison that session.
    """

    inner: DelegationUserState
    session: Optional[str] = None
    done_with_session: bool = False


class RepeatedDelegationUser(UserStrategy):
    """Runs one :class:`DelegationUser` per session, forever.

    Adapts the finite delegation protocol to the repeated-computation
    world (:mod:`repro.worlds.repeated`): it tracks the world's session id,
    restarts a fresh inner verifier whenever the session changes, strips
    the session framing off the instance announcement, and converts the
    inner verifier's halt into a session-tagged ``ANSWER:<k>=<bit>`` to the
    world.  A failed proof simply idles the session out — the deadline
    scores it and the next session begins, which is what lets a universal
    wrapper's sensing evict a wrong codec guess.
    """

    def __init__(
        self,
        codec: Codec,
        field_: Field,
        *,
        resend_every: int = 8,
        proof_seed: int = 0,
        tracer: TracerLike = None,
    ) -> None:
        self._verifier = DelegationUser(
            codec, field_, resend_every=resend_every, proof_seed=proof_seed,
            tracer=tracer,
        )
        self._codec = codec

    @property
    def name(self) -> str:
        return f"redelegate@{self._codec.name}"

    @property
    def tracer(self) -> TracerLike:
        """Forwarded to the inner verifier, which emits the proof events."""
        return self._verifier.tracer

    @tracer.setter
    def tracer(self, value: TracerLike) -> None:
        self._verifier.tracer = value

    def initial_state(self, rng: random.Random) -> RepeatedDelegationState:
        return RepeatedDelegationState(inner=self._verifier.initial_state(rng))

    def step(
        self, state: RepeatedDelegationState, inbox: UserInbox, rng: random.Random
    ) -> Tuple[RepeatedDelegationState, UserOutbox]:
        session, instance = self._parse_world(inbox.from_world)
        if session is not None and session != state.session:
            state.session = session
            state.inner = self._verifier.initial_state(rng)
            state.done_with_session = False

        announce = instance if not state.done_with_session else None
        synthetic = UserInbox(
            from_server=inbox.from_server,
            from_world=f"INSTANCE:{announce}" if announce else SILENCE,
        )
        state.inner, outbox = self._verifier.step(state.inner, synthetic, rng)

        if outbox.halt:
            parsed = parse_tagged(outbox.output or "")
            bit = parsed[1] if parsed is not None and parsed[0] == "ANSWER" else ""
            answer = (
                f"ANSWER:{state.session}={bit}"
                if bit in ("0", "1") and state.session is not None
                else SILENCE
            )
            # Idle until the world opens the next session (its id changes).
            state.inner = self._verifier.initial_state(rng)
            state.done_with_session = True
            return state, UserOutbox(to_server=outbox.to_server, to_world=answer)
        return state, outbox

    @staticmethod
    def _parse_world(message: str) -> Tuple[Optional[str], Optional[str]]:
        """Extract (session id, instance wire form) from an announcement."""
        if not message:
            return None, None
        body, _, _fb = message.partition(";FB:")
        parsed = parse_tagged(body)
        if parsed is None or parsed[0] != "INSTANCE":
            return None, None
        session, sep, instance = parsed[1].partition(":")
        if not sep or not session or not instance:
            return None, None
        return session, instance


def repeated_delegation_user_class(
    codecs: Sequence[Codec], field_: Field
) -> List[RepeatedDelegationUser]:
    """One repeated-delegation user per codec guess, in enumeration order."""
    return [RepeatedDelegationUser(codec, field_) for codec in codecs]
