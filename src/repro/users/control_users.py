"""Control users: follow the advisor through a codec guess.

:class:`AdvisorFollowingUser` decodes the server's advice with one fixed
codec and relays the named action to the world.  With the right codec its
actions are always correct; with a wrong one the decoded "advice" is
garbage (or a wrong-but-well-formed action), it acts wrongly or not at all,
the world scores mistakes, and the compact universal user's sensing evicts
it — the enumerate-and-switch dynamics of Theorem 1's compact case in its
simplest incarnation.

:class:`AuthenticatingUser` prepends a password guess (for the
password-locked server class of the lower-bound experiment E3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.comm.codecs import Codec
from repro.comm.messages import SILENCE, UserInbox, UserOutbox, parse_tagged
from repro.core.strategy import UserStrategy
from repro.errors import CodecError


@dataclass
class _FollowerState:
    rounds: int = 0


class AdvisorFollowingUser(UserStrategy):
    """Acts on each piece of advice, decoded via one codec guess.

    Advice that does not decode to ``ADV:<action>`` is ignored — acting on
    garbage would only add mistakes, and silence is already penalised by
    the world's deadline, so "don't understand, don't act" is the right
    policy for a candidate that is going to be evicted anyway.
    """

    def __init__(self, codec: Codec) -> None:
        self._codec = codec

    @property
    def name(self) -> str:
        return f"follow@{self._codec.name}"

    def initial_state(self, rng: random.Random) -> _FollowerState:
        return _FollowerState()

    def step(
        self, state: _FollowerState, inbox: UserInbox, rng: random.Random
    ) -> Tuple[_FollowerState, UserOutbox]:
        state.rounds += 1
        advice = self._decode_advice(inbox.from_server)
        if advice is None:
            return state, UserOutbox()
        observation, action = advice
        return state, UserOutbox(to_world=f"ACT:{observation}={action}")

    def _decode_advice(self, message: str) -> Optional[Tuple[str, str]]:
        if message == SILENCE:
            return None
        try:
            decoded = self._codec.decode(message)
        except CodecError:
            return None
        parsed = parse_tagged(decoded)
        if parsed is None or parsed[0] != "ADV":
            return None
        observation, sep, action = parsed[1].partition("=")
        if not sep or not observation or not action:
            return None
        return observation, action


def follower_user_class(codecs: Sequence[Codec]) -> List[AdvisorFollowingUser]:
    """One follower per codec guess, in enumeration order (E1/E4's class)."""
    return [AdvisorFollowingUser(codec) for codec in codecs]


@dataclass
class _AuthState:
    sent_auth: bool = False
    inner_state: Any = None
    inner_started: bool = False


class AuthenticatingUser(UserStrategy):
    """Sends ``AUTH:<password>`` once, then behaves as the inner user.

    The candidate class ``{AuthenticatingUser(pw, follower)}`` over all
    k-bit passwords is the user side of the lower-bound experiment: exactly
    one member unlocks a given :class:`~repro.servers.password.PasswordServer`,
    and nothing observable distinguishes the others' failures from each
    other — which is *why* enumeration cost is unavoidable there.
    """

    def __init__(self, password: str, inner: UserStrategy) -> None:
        if not password:
            raise ValueError("password must be non-empty")
        self._password = password
        self._inner = inner

    @property
    def name(self) -> str:
        return f"auth[{self._password}]+{self._inner.name}"

    def initial_state(self, rng: random.Random) -> _AuthState:
        return _AuthState()

    def step(
        self, state: _AuthState, inbox: UserInbox, rng: random.Random
    ) -> Tuple[_AuthState, UserOutbox]:
        if not state.sent_auth:
            state.sent_auth = True
            return state, UserOutbox(to_server=f"AUTH:{self._password}")
        if not state.inner_started:
            state.inner_state = self._inner.initial_state(rng)
            state.inner_started = True
        state.inner_state, outbox = self._inner.step(state.inner_state, inbox, rng)
        return state, outbox


def password_user_class(
    passwords: Sequence[str], inner_factory
) -> List[AuthenticatingUser]:
    """One authenticating candidate per password, in the given order.

    ``inner_factory`` builds a fresh inner user per candidate (candidates
    must not share mutable strategy objects).
    """
    return [AuthenticatingUser(pw, inner_factory()) for pw in passwords]
