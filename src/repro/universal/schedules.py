"""Trial schedules for the universal users.

The finite-goal universal user enumerates strategies "in parallel, as in
Levin's approach" [Levin 1973]: rather than truly interleaving (which the
single-conversation setting forbids), it runs *trials* — candidate index
plus round budget — in an order that gives strategy *i* a total budget
doubling with each phase.  Strategy *i* first runs in phase *i+1* with
budget 1; in phase *t ≥ i+1* it runs with budget ``2**(t-i-1)``.  The
classic property follows: if strategy *i* succeeds within *b* rounds, the
universal user succeeds within ``O(2**i · b · log b)`` total rounds — the
multiplicative overhead depends on the index, not on the horizon.

:func:`sequential_trials` is the naive baseline used in experiment E2's
comparison: one candidate at a time with a fixed budget (which must be
guessed in advance — guessing too small breaks completeness, which is the
point the comparison makes).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

#: A trial: (candidate index, round budget for this attempt).
Trial = Tuple[int, int]


def levin_trials(max_index: Optional[int] = None) -> Iterator[Trial]:
    """Yield Levin-style trials ``(index, budget)`` forever.

    Phase ``t`` (t = 1, 2, ...) runs candidates ``0 .. t-1`` with budgets
    ``2**(t-1-i)`` — newly introduced candidates get budget 1, and every
    existing candidate's budget doubles each phase.  ``max_index`` caps the
    candidate indices for finite classes (budgets keep doubling, so every
    candidate still gets unbounded total budget).

    >>> trials = levin_trials()
    >>> [next(trials) for _ in range(6)]
    [(0, 1), (0, 2), (1, 1), (0, 4), (1, 2), (2, 1)]
    """
    t = 1
    while True:
        for i in range(t):
            if max_index is not None and i > max_index:
                break
            yield (i, 2 ** (t - 1 - i))
        t += 1


def sequential_trials(
    budget: int, max_index: Optional[int] = None, repeat: bool = True
) -> Iterator[Trial]:
    """Yield each candidate once (or cyclically) with a fixed budget.

    This is the strawman scheduler: it commits to ``budget`` rounds per
    candidate.  A candidate needing more rounds than ``budget`` can never
    succeed, no matter how early it appears — the failure mode experiment
    E2 demonstrates against the Levin schedule.
    """
    if budget <= 0:
        raise ValueError(f"budget must be positive: {budget}")
    while True:
        i = 0
        while max_index is None or i <= max_index:
            yield (i, budget)
            i += 1
        if not repeat or max_index is None:
            return


def doubling_sweep_trials(max_index: Optional[int] = None) -> Iterator[Trial]:
    """Sweep all candidates with a budget that doubles per sweep.

    A simpler cousin of the Levin schedule with the same total-budget
    guarantee but worse constants for late candidates; used in schedule
    ablations.
    """
    budget = 1
    while True:
        i = 0
        while max_index is None or i <= max_index:
            yield (i, budget)
            i += 1
            if max_index is None and i > budget:
                # For infinite classes, bound each sweep so early candidates
                # are revisited: sweep k covers candidates 0..2**k.
                break
        budget *= 2
