"""The finite-goal universal user (Theorem 1, finite case).

"In the finite case, strategies are enumerated 'in parallel' as in Levin's
approach, and sensing is used to decide when to stop."  The single
conversation cannot literally run candidates in parallel, so — as in
Levin's universal search — parallelism becomes a *trial schedule*: candidate
*i* is retried with geometrically growing budgets (see
:mod:`repro.universal.schedules`), and the user halts the first time a
candidate halts while the sensing function endorses its trial view.

This construction leans on the goal being *forgiving* (every finite partial
history extends to a successful one): abandoned trials may leave arbitrary
junk in the world's history, and forgivingness is what guarantees the next
trial can still succeed.  It equally leans on helpful servers being helpful
*from any initial state* — the paper builds that into the definition of
helpfulness, and our server classes honour it by being re-entrant (they
re-parse commands regardless of past traffic).

Safety of sensing makes the *halting* decision sound: the user only ever
halts on a positive indication, so an unsafe candidate (or a cheating
server) cannot trick a safely-sensed universal user into halting on an
unacceptable history.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, Tuple

from repro.comm.messages import UserInbox, UserOutbox
from repro.core.sensing import IncrementalSensing, Sensing
from repro.core.strategy import UserStrategy
from repro.core.views import UserView, ViewRecord
from repro.errors import EnumerationExhaustedError
from repro.obs.events import (
    TRIAL_BUDGET,
    TRIAL_ENDORSED,
    TRIAL_HALT_REJECTED,
    TRIAL_MISSING,
    SensingIndication,
    TrialFinished,
    TrialStarted,
)
from repro.obs.tracer import TracerLike, is_tracing
from repro.universal.enumeration import EnumerationCursor, StrategyEnumeration
from repro.universal.schedules import Trial, levin_trials


@dataclass
class FiniteUniversalState:
    """Mutable state of the finite universal user (one per execution).

    ``monitor`` is the trial's incremental-sensing monitor, present only
    when the sensing offers a native one (the finite user consults sensing
    once, at a candidate's halt, so the replay fallback would be a strict
    regression — it keeps the indicate-at-halt path instead).
    """

    cursor: EnumerationCursor
    schedule: Iterator[Trial]
    current: Optional[Trial] = None
    inner_state: Any = None
    inner_started: bool = False
    trial_view: UserView = field(default_factory=UserView)
    monitor: Optional[IncrementalSensing] = None
    monitor_verdict: bool = False
    rounds_used: int = 0
    retries_left: int = 0
    trials_run: int = 0
    total_rounds: int = 0
    index_cap: Optional[int] = None


class FiniteUniversalUser(UserStrategy):
    """Levin-scheduled universal user for finite goals.

    Parameters
    ----------
    enumeration:
        The candidate class, in enumeration order.
    sensing:
        Consulted when a candidate halts; the universal user only forwards
        the halt (and the candidate's output) on a positive indication.
    schedule_factory:
        Builds the trial schedule; defaults to
        :func:`~repro.universal.schedules.levin_trials` capped at the
        enumeration's size hint.  Swappable for the ablations in E2.
    patience:
        How many immediate same-candidate retries a trial gets after a
        *halt-rejected* verdict (default 0 = abandon at once, the paper's
        noiseless behaviour).  On an unreliable channel the rejection may
        be the fault's doing — a dropped reply starved the sensing — and
        an immediate retry faces fresh noise, so a small budget recovers
        the candidate without waiting for the schedule to come back
        around.  Each scheduled trial starts with a full budget.
    tracer:
        Optional :mod:`repro.obs` tracer receiving
        :class:`~repro.obs.events.TrialStarted` /
        :class:`~repro.obs.events.TrialFinished` events for every
        scheduled trial and a :class:`~repro.obs.events.SensingIndication`
        whenever a halting candidate is judged.  Public and reassignable.
    """

    def __init__(
        self,
        enumeration: StrategyEnumeration,
        sensing: Sensing,
        *,
        schedule_factory: Optional[Callable[[Optional[int]], Iterator[Trial]]] = None,
        patience: int = 0,
        tracer: TracerLike = None,
    ) -> None:
        if patience < 0:
            raise ValueError(f"patience must be >= 0: {patience}")
        self._enumeration = enumeration
        self._sensing = sensing
        self._schedule_factory = schedule_factory or (
            lambda cap: levin_trials(max_index=None if cap is None else cap - 1)
        )
        self._patience = patience
        self.tracer = tracer

    @property
    def name(self) -> str:
        return f"universal-finite({self._enumeration.name},{self._sensing.name})"

    def initial_state(self, rng: random.Random) -> FiniteUniversalState:
        cursor = EnumerationCursor(self._enumeration)
        cap = cursor.known_size()
        return FiniteUniversalState(
            cursor=cursor,
            schedule=self._schedule_factory(cap),
            index_cap=cap,
        )

    def step(
        self, state: FiniteUniversalState, inbox: UserInbox, rng: random.Random
    ) -> Tuple[FiniteUniversalState, UserOutbox]:
        state.total_rounds += 1
        inner = self._ensure_trial(state, rng)
        if inner is None:
            # Schedule exhausted (only possible with a finite schedule):
            # nothing left to try, stay silent and never halt — the engine's
            # horizon will end the run, correctly scored as failure.
            return state, UserOutbox()

        state_before = state.inner_state
        state.inner_state, outbox = inner.step(state.inner_state, inbox, rng)
        state.rounds_used += 1
        record = ViewRecord(
            round_index=state.rounds_used - 1,
            state_before=state_before,
            inbox=inbox,
            outbox=outbox,
            state_after=state.inner_state,
        )
        state.trial_view.append(record)
        if state.monitor is not None:
            state.monitor_verdict = state.monitor.observe(record)

        if outbox.halt:
            assert state.current is not None
            endorsed = (
                state.monitor_verdict
                if state.monitor is not None
                else self._sensing.indicate(state.trial_view)
            )
            if is_tracing(self.tracer):
                self.tracer.emit(
                    SensingIndication(
                        round_index=state.total_rounds - 1,
                        candidate_index=state.current[0],
                        positive=endorsed,
                    )
                )
            if endorsed:
                self._finish_trial(state, TRIAL_ENDORSED)
                return state, outbox  # Endorsed: halt with the candidate's output.
            if state.retries_left > 0:
                # Patience budget: the rejection may be channel noise, not
                # the candidate — rerun it now against fresh noise.
                state.retries_left -= 1
                self._finish_trial(state, TRIAL_HALT_REJECTED)
                self._reset_trial(state)
            else:
                self._abandon(state, TRIAL_HALT_REJECTED)
            outbox = UserOutbox(to_server=outbox.to_server, to_world=outbox.to_world)
            return state, outbox

        assert state.current is not None
        if state.rounds_used >= state.current[1]:
            self._abandon(state, TRIAL_BUDGET)
        return state, outbox

    #: Bound on consecutive skipped schedule entries per engine round.  A
    #: schedule that emits only out-of-range candidate indices (possible
    #: with a user-supplied factory and a smaller-than-expected class)
    #: would otherwise spin this loop forever inside a single step.
    _MAX_SKIPS_PER_STEP = 10_000

    def _ensure_trial(
        self, state: FiniteUniversalState, rng: random.Random
    ) -> Optional[UserStrategy]:
        """Return the current trial's strategy, starting a new trial if needed."""
        skips = 0
        while True:
            if skips > self._MAX_SKIPS_PER_STEP:
                return None  # Degenerate schedule: go quiet, never halt.
            skips += 1
            if state.current is not None:
                inner = self._candidate(state, state.current[0])
                if inner is None:
                    self._abandon(state, TRIAL_MISSING)
                    continue
                if not state.inner_started:
                    state.inner_state = inner.initial_state(rng)
                    state.inner_started = True
                    state.monitor = self._sensing.incremental()
                    state.monitor_verdict = False
                    if is_tracing(self.tracer):
                        self.tracer.emit(
                            TrialStarted(
                                round_index=state.total_rounds - 1,
                                trial_number=state.trials_run,
                                candidate_index=state.current[0],
                                budget=state.current[1],
                            )
                        )
                    state.trials_run += 1
                return inner
            try:
                trial = next(state.schedule)
            except StopIteration:
                return None
            index = trial[0]
            if state.index_cap is not None and index >= state.index_cap:
                continue
            state.current = trial
            state.retries_left = self._patience

    def _candidate(
        self, state: FiniteUniversalState, index: int
    ) -> Optional[UserStrategy]:
        """Fetch candidate ``index``, learning the class size on exhaustion."""
        try:
            return state.cursor.get(index)
        except EnumerationExhaustedError:
            state.index_cap = state.cursor.known_size()
            return None

    def _finish_trial(self, state: FiniteUniversalState, reason: str) -> None:
        """Emit the trial's closing event (started trials only)."""
        if is_tracing(self.tracer) and state.inner_started and state.current is not None:
            self.tracer.emit(
                TrialFinished(
                    round_index=state.total_rounds - 1,
                    trial_number=state.trials_run - 1,
                    candidate_index=state.current[0],
                    rounds_used=state.rounds_used,
                    reason=reason,
                )
            )

    def _reset_trial(self, state: FiniteUniversalState) -> None:
        """Restart the *current* trial from scratch (keeps the budget slot)."""
        state.inner_state = None
        state.inner_started = False
        state.trial_view = UserView()
        state.monitor = None
        state.monitor_verdict = False
        state.rounds_used = 0

    def _abandon(self, state: FiniteUniversalState, reason: str = TRIAL_BUDGET) -> None:
        self._finish_trial(state, reason)
        state.current = None
        self._reset_trial(state)

    @staticmethod
    def stats(state: FiniteUniversalState) -> "FiniteRunStats":
        """Extract run statistics from a final state (for benchmarks)."""
        return FiniteRunStats(
            trials_run=state.trials_run,
            total_rounds=state.total_rounds,
            final_index=None if state.current is None else state.current[0],
        )


@dataclass(frozen=True)
class FiniteRunStats:
    """Summary of a finite universal user's behaviour over one execution."""

    trials_run: int
    total_rounds: int
    final_index: Optional[int]
