"""The compact-goal universal user (Theorem 1, compact case).

"In the compact case, Theorem 1 is proved by enumerating all relevant user
strategies and switching from the current strategy to the next one when a
negative indication is obtained from the sensing function."  This module is
that proof turned into a strategy: :class:`CompactUniversalUser` simulates
the current candidate round by round, feeds the candidate's *trial-local*
view to the sensing function, and advances the enumeration on a negative
indication.

Why trial-local views: sensing is meant to judge the *current* strategy.
Judging it on the whole execution would blame it for its predecessors'
mistakes, breaking viability (the adequate candidate could never shake off
the errors accumulated before it was reached).  The full version of the
paper handles this by resetting the sensing scope on each switch; we do the
same.

Correctness invariants (property-tested in ``tests/universal/``):

* candidates are visited in enumeration order;
* the user never switches while sensing reads positive;
* with safe+viable sensing and a helpful server, the index eventually
  stabilises and the goal is achieved (this *is* Theorem 1's compact case).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.comm.messages import UserInbox, UserOutbox
from repro.core.sensing import IncrementalSensing, Sensing, incremental_sensing
from repro.core.strategy import UserStrategy
from repro.core.views import UserView, ViewRecord
from repro.errors import EnumerationExhaustedError
from repro.obs.events import (
    SWITCH_SENSING_NEGATIVE,
    TRIAL_EVICTED,
    SensingIndication,
    StrategySwitch,
    TrialFinished,
    TrialStarted,
)
from repro.obs.tracer import TracerLike, is_tracing
from repro.universal.enumeration import EnumerationCursor, StrategyEnumeration


@dataclass
class CompactUniversalState:
    """Mutable state of the compact universal user.

    The engine threads this through :meth:`CompactUniversalUser.step`; it is
    never shared between executions (each ``initial_state`` call builds a
    fresh cursor).  ``monitor`` is the trial's incremental-sensing monitor
    (see :meth:`~repro.core.sensing.Sensing.incremental`), restarted with
    the trial view on every switch.
    """

    cursor: EnumerationCursor
    index: int = 0
    inner_state: Any = None
    inner_started: bool = False
    trial_view: UserView = field(default_factory=UserView)
    monitor: Optional[IncrementalSensing] = None
    rounds_in_trial: int = 0
    strikes: int = 0
    switches: int = 0
    wraps: int = 0
    total_rounds: int = 0


class CompactUniversalUser(UserStrategy):
    """Enumerate-and-switch universal user for compact goals.

    Parameters
    ----------
    enumeration:
        The class of candidate user strategies, in enumeration order.
    sensing:
        The feedback function; consulted every round on the trial-local
        view.  Wrap it in :class:`~repro.core.sensing.GraceSensing` when the
        goal's feedback is delayed.
    min_trial_rounds:
        A floor on how long each candidate runs before sensing may evict it.
        This is the engine-level grace period; 0 defers entirely to the
        sensing function.
    patience:
        Per-trial budget of tolerated negative indications: the candidate
        is evicted on the ``patience + 1``-th negative of its trial
        (default 0 = evict on the first negative, the paper's noiseless
        behaviour).  On an unreliable channel a dropped reply can turn a
        round's indication negative even though the candidate is
        adequate; a small budget absorbs those spurious negatives instead
        of triggering an enumeration switch, while a genuinely failing
        candidate still burns through the budget and is evicted after a
        bounded delay.  The budget refills on every switch.
    wrap_around:
        What to do when a *finite* enumeration is exhausted: restart from
        index 0 (default, making the user robust to transient negative
        indications) or raise :class:`EnumerationExhaustedError`.
    tracer:
        Optional :mod:`repro.obs` tracer receiving per-round
        :class:`~repro.obs.events.SensingIndication` plus
        :class:`~repro.obs.events.TrialStarted` /
        :class:`~repro.obs.events.TrialFinished` /
        :class:`~repro.obs.events.StrategySwitch` events.  Public and
        reassignable (``user.tracer = ...``) so a sweep can attach per-cell
        telemetry to an already-built user.
    """

    def __init__(
        self,
        enumeration: StrategyEnumeration,
        sensing: Sensing,
        *,
        min_trial_rounds: int = 0,
        patience: int = 0,
        wrap_around: bool = True,
        tracer: TracerLike = None,
    ) -> None:
        if min_trial_rounds < 0:
            raise ValueError(f"min_trial_rounds must be >= 0: {min_trial_rounds}")
        if patience < 0:
            raise ValueError(f"patience must be >= 0: {patience}")
        self._enumeration = enumeration
        self._sensing = sensing
        self._min_trial_rounds = min_trial_rounds
        self._patience = patience
        self._wrap_around = wrap_around
        self.tracer = tracer

    @property
    def name(self) -> str:
        return f"universal-compact({self._enumeration.name},{self._sensing.name})"

    def initial_state(self, rng: random.Random) -> CompactUniversalState:
        return CompactUniversalState(cursor=EnumerationCursor(self._enumeration))

    def step(
        self, state: CompactUniversalState, inbox: UserInbox, rng: random.Random
    ) -> Tuple[CompactUniversalState, UserOutbox]:
        tracing = is_tracing(self.tracer)
        inner = state.cursor.get(state.index)
        if not state.inner_started:
            state.inner_state = inner.initial_state(rng)
            state.inner_started = True
            state.monitor = incremental_sensing(self._sensing)
            if tracing:
                self.tracer.emit(
                    TrialStarted(
                        round_index=state.total_rounds,
                        trial_number=state.switches,
                        candidate_index=state.index,
                    )
                )

        state_before = state.inner_state
        state.inner_state, outbox = inner.step(state.inner_state, inbox, rng)
        state.rounds_in_trial += 1
        state.total_rounds += 1
        record = ViewRecord(
            round_index=state.rounds_in_trial - 1,
            state_before=state_before,
            inbox=inbox,
            outbox=outbox,
            state_after=state.inner_state,
        )
        state.trial_view.append(record)

        # O(1) per round for the library sensing functions; custom sensing
        # falls back to replaying the view (the pre-incremental cost).
        indication = state.monitor.observe(record)
        if tracing:
            self.tracer.emit(
                SensingIndication(
                    round_index=state.total_rounds - 1,
                    candidate_index=state.index,
                    positive=indication,
                )
            )
        if not indication:
            state.strikes += 1
            if (
                state.rounds_in_trial >= max(1, self._min_trial_rounds)
                and state.strikes > self._patience
            ):
                self._advance(state, tracing)
            # A candidate being evicted (or surviving on patience) must not
            # get the last word on halting: compact goals run forever, and
            # a halt under a negative indication would end the execution on
            # a failure.
            if outbox.halt:
                outbox = UserOutbox(
                    to_server=outbox.to_server, to_world=outbox.to_world
                )
        return state, outbox

    def _advance(self, state: CompactUniversalState, tracing: bool = False) -> None:
        """Move to the next candidate (wrapping or raising at the end)."""
        next_index = state.index + 1
        wrapped = False
        try:
            state.cursor.get(next_index)
        except EnumerationExhaustedError:
            if not self._wrap_around:
                raise
            next_index = 0
            wrapped = True
            state.wraps += 1
        if tracing:
            self.tracer.emit(
                TrialFinished(
                    round_index=state.total_rounds - 1,
                    trial_number=state.switches,
                    candidate_index=state.index,
                    rounds_used=state.rounds_in_trial,
                    reason=TRIAL_EVICTED,
                )
            )
            self.tracer.emit(
                StrategySwitch(
                    round_index=state.total_rounds - 1,
                    from_index=state.index,
                    to_index=next_index,
                    wrapped=wrapped,
                    reason=SWITCH_SENSING_NEGATIVE,
                )
            )
        state.index = next_index
        state.inner_state = None
        state.inner_started = False
        state.trial_view = UserView()
        state.monitor = None
        state.rounds_in_trial = 0
        state.strikes = 0
        state.switches += 1

    @staticmethod
    def stats(state: CompactUniversalState) -> "UniversalRunStats":
        """Extract run statistics from a final state (for benchmarks)."""
        return UniversalRunStats(
            final_index=state.index,
            switches=state.switches,
            wraps=state.wraps,
            total_rounds=state.total_rounds,
        )


@dataclass(frozen=True)
class UniversalRunStats:
    """Summary of a universal user's behaviour over one execution."""

    final_index: int
    switches: int
    wraps: int
    total_rounds: int
