"""Universal user strategies — the constructive content of Theorem 1.

Strategy enumerations (:mod:`.enumeration`), trial schedules including
Levin's (:mod:`.schedules`), the compact-goal enumerate-and-switch user
(:mod:`.compact`), the finite-goal Levin-scheduled user (:mod:`.finite`),
and the belief-weighted extension (:mod:`.bayesian`).
"""

from repro.universal.enumeration import (
    StrategyEnumeration,
    ListEnumeration,
    GeneratorEnumeration,
    EnumerationCursor,
    materialize,
)
from repro.universal.schedules import (
    Trial,
    levin_trials,
    sequential_trials,
    doubling_sweep_trials,
)
from repro.universal.compact import (
    CompactUniversalUser,
    CompactUniversalState,
    UniversalRunStats,
)
from repro.universal.finite import (
    FiniteUniversalUser,
    FiniteUniversalState,
    FiniteRunStats,
)
from repro.universal.bayesian import BeliefWeightedUniversalUser, BeliefState

__all__ = [
    "StrategyEnumeration",
    "ListEnumeration",
    "GeneratorEnumeration",
    "EnumerationCursor",
    "materialize",
    "Trial",
    "levin_trials",
    "sequential_trials",
    "doubling_sweep_trials",
    "CompactUniversalUser",
    "CompactUniversalState",
    "UniversalRunStats",
    "FiniteUniversalUser",
    "FiniteUniversalState",
    "FiniteRunStats",
    "BeliefWeightedUniversalUser",
    "BeliefState",
]
