"""Enumerable classes of user strategies.

Theorem 1's universal users work by enumerating a class of candidate user
strategies.  The paper enumerates "all relevant user strategies"; our
experiments use bounded, explicitly constructed classes (see the
substitution table in DESIGN.md), so an enumeration here is any object that
can lazily yield candidate strategies in a fixed order and serve random
access into the materialised prefix.

:class:`StrategyEnumeration` is the interface; :class:`ListEnumeration`
wraps a concrete list; :class:`GeneratorEnumeration` wraps a generator
factory (supporting genuinely infinite classes such as "all transducers" or
"all GVM programs", dovetailed); :func:`materialize` gives the indexed
cursor the universal users consume.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence

from repro.core.strategy import UserStrategy
from repro.errors import EnumerationExhaustedError


class StrategyEnumeration:
    """An ordered (possibly infinite) class of user strategies."""

    @property
    def name(self) -> str:
        return type(self).__name__

    def __iter__(self) -> Iterator[UserStrategy]:
        raise NotImplementedError

    def size_hint(self) -> Optional[int]:
        """The exact class size if known and finite, else ``None``."""
        return None


class ListEnumeration(StrategyEnumeration):
    """A finite enumeration backed by an explicit list.

    The list order *is* the enumeration order — experiment E4 exploits this
    by planting the adequate strategy at a chosen index.
    """

    def __init__(self, strategies: Sequence[UserStrategy], label: str = "list") -> None:
        if not strategies:
            raise ValueError("ListEnumeration requires at least one strategy")
        self._strategies = list(strategies)
        self._label = label

    @property
    def name(self) -> str:
        return f"{self._label}[{len(self._strategies)}]"

    def __iter__(self) -> Iterator[UserStrategy]:
        return iter(self._strategies)

    def size_hint(self) -> Optional[int]:
        return len(self._strategies)

    def __len__(self) -> int:
        return len(self._strategies)


class GeneratorEnumeration(StrategyEnumeration):
    """A lazy (possibly infinite) enumeration from a generator factory.

    ``factory`` must return a *fresh* iterator each call, yielding the same
    strategies in the same order (the universal users re-iterate when their
    materialised prefix runs short).
    """

    def __init__(
        self,
        factory: Callable[[], Iterator[UserStrategy]],
        label: str = "generated",
        size: Optional[int] = None,
    ) -> None:
        self._factory = factory
        self._label = label
        self._size = size

    @property
    def name(self) -> str:
        return self._label

    def __iter__(self) -> Iterator[UserStrategy]:
        return self._factory()

    def size_hint(self) -> Optional[int]:
        return self._size


class EnumerationCursor:
    """Random access into an enumeration with prefix caching.

    ``get(i)`` materialises candidates up to index ``i`` on demand and
    raises :class:`EnumerationExhaustedError` past the end of a finite
    class.  One cursor is owned by each universal-user *state*, so two
    concurrent executions of the same universal user never share iteration
    state.
    """

    def __init__(self, enumeration: StrategyEnumeration) -> None:
        self._enumeration = enumeration
        self._cache: List[UserStrategy] = []
        self._iterator: Optional[Iterator[UserStrategy]] = None
        self._exhausted = False

    def get(self, index: int) -> UserStrategy:
        """The ``index``-th strategy of the class (0-based)."""
        if index < 0:
            raise IndexError(f"negative enumeration index: {index}")
        while len(self._cache) <= index and not self._exhausted:
            if self._iterator is None:
                self._iterator = iter(self._enumeration)
            try:
                self._cache.append(next(self._iterator))
            except StopIteration:
                self._exhausted = True
        if index < len(self._cache):
            return self._cache[index]
        raise EnumerationExhaustedError(
            f"enumeration {self._enumeration.name} has only "
            f"{len(self._cache)} strategies; asked for index {index}"
        )

    def known_size(self) -> Optional[int]:
        """Class size when fully materialised or hinted; else ``None``."""
        if self._exhausted:
            return len(self._cache)
        return self._enumeration.size_hint()

    @property
    def materialized(self) -> int:
        """How many candidates have been produced so far."""
        return len(self._cache)

    def __eq__(self, other: object) -> bool:
        """Cursors compare by the class they enumerate.

        The prefix cache and iterator position are performance artifacts
        — invisible to every sensing/switch decision, which go through
        :meth:`get` — so two cursors over the same class are equal however
        much each has materialised.  Universal-user states embed their
        cursor, and the serve/batch parity suites compare those states
        structurally; without this, state equality would degenerate to
        cursor identity.
        """
        if not isinstance(other, EnumerationCursor):
            return NotImplemented
        return (
            self._enumeration is other._enumeration
            or self._enumeration == other._enumeration
        )

    __hash__ = None  # type: ignore[assignment]  # mutable cache


def materialize(enumeration: StrategyEnumeration) -> EnumerationCursor:
    """Create a fresh cursor over ``enumeration``."""
    return EnumerationCursor(enumeration)
