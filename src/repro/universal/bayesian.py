"""Belief-weighted universal user (extension; cf. Juba–Sudan, ICS 2011).

The paper closes by motivating "the search for algorithms that are
compatible with broad classes" at lower overhead, citing the follow-up
*Efficient Semantic Communication via Compatible Beliefs*.  The idea there:
if user and server hold compatible prior beliefs about each other, the
overhead of universality drops from the enumeration index to (roughly) the
log of the prior mass on the adequate strategy.

:class:`BeliefWeightedUniversalUser` realises the user side: candidates
carry prior weights; the user always plays a highest-weight candidate and
multiplies the weight by ``decay`` on a negative indication.  With a uniform
prior this degenerates to round-robin over the class; with a concentrated,
*correct* prior it reaches the adequate candidate after few switches — the
ablation in experiment E8b quantifies the gap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.comm.messages import UserInbox, UserOutbox
from repro.core.sensing import IncrementalSensing, Sensing, incremental_sensing
from repro.core.strategy import UserStrategy
from repro.core.views import UserView, ViewRecord
from repro.obs.events import (
    SWITCH_BELIEF_DECAY,
    TRIAL_DECAYED,
    SensingIndication,
    StrategySwitch,
    TrialFinished,
    TrialStarted,
)
from repro.obs.tracer import TracerLike, is_tracing


@dataclass
class BeliefState:
    """Mutable state of the belief-weighted universal user."""

    weights: List[float]
    index: int
    inner_state: Any = None
    inner_started: bool = False
    trial_view: UserView = field(default_factory=UserView)
    monitor: Optional[IncrementalSensing] = None
    rounds_in_trial: int = 0
    strikes: int = 0
    switches: int = 0
    total_rounds: int = 0


class BeliefWeightedUniversalUser(UserStrategy):
    """Prior-guided enumerate-and-switch user over a finite class.

    Parameters
    ----------
    candidates:
        The (finite) candidate class.
    sensing:
        Feedback function over the trial-local view, as for
        :class:`~repro.universal.compact.CompactUniversalUser`.
    prior:
        Per-candidate prior weights (uniform when omitted); need not be
        normalised, must be positive.
    decay:
        Multiplier applied to the current candidate's weight on a negative
        indication; in (0, 1).
    min_trial_rounds:
        Grace floor before sensing may evict a candidate.
    patience:
        Per-trial budget of tolerated negative indications before the
        weight decay applies — the noisy-channel retry budget, as for
        :class:`~repro.universal.compact.CompactUniversalUser`.  The
        budget refills when the user switches candidates.
    tracer:
        Optional :mod:`repro.obs` tracer receiving per-round
        :class:`~repro.obs.events.SensingIndication` plus
        :class:`~repro.obs.events.TrialStarted` /
        :class:`~repro.obs.events.TrialFinished` /
        :class:`~repro.obs.events.StrategySwitch` (``reason`` =
        ``"belief-decay"``) events, like the other universal users.
        Public and reassignable so sweeps can attach per-cell telemetry.
    """

    def __init__(
        self,
        candidates: Sequence[UserStrategy],
        sensing: Sensing,
        *,
        prior: Optional[Sequence[float]] = None,
        decay: float = 0.5,
        min_trial_rounds: int = 0,
        patience: int = 0,
        tracer: TracerLike = None,
    ) -> None:
        if not candidates:
            raise ValueError("candidate class must be non-empty")
        if prior is None:
            prior = [1.0] * len(candidates)
        if len(prior) != len(candidates):
            raise ValueError(
                f"prior length {len(prior)} != class size {len(candidates)}"
            )
        if any(w <= 0 for w in prior):
            raise ValueError("prior weights must be positive")
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1): {decay}")
        if patience < 0:
            raise ValueError(f"patience must be >= 0: {patience}")
        self._candidates = list(candidates)
        self._sensing = sensing
        self._prior = list(prior)
        self._decay = decay
        self._min_trial_rounds = min_trial_rounds
        self._patience = patience
        self.tracer = tracer

    @property
    def name(self) -> str:
        return f"universal-beliefs[{len(self._candidates)}]"

    def initial_state(self, rng: random.Random) -> BeliefState:
        weights = list(self._prior)
        return BeliefState(weights=weights, index=_argmax(weights))

    def step(
        self, state: BeliefState, inbox: UserInbox, rng: random.Random
    ) -> Tuple[BeliefState, UserOutbox]:
        tracing = is_tracing(self.tracer)
        inner = self._candidates[state.index]
        if not state.inner_started:
            state.inner_state = inner.initial_state(rng)
            state.inner_started = True
            state.monitor = incremental_sensing(self._sensing)
            if tracing:
                self.tracer.emit(
                    TrialStarted(
                        round_index=state.total_rounds,
                        trial_number=state.switches,
                        candidate_index=state.index,
                    )
                )

        state_before = state.inner_state
        state.inner_state, outbox = inner.step(state.inner_state, inbox, rng)
        state.rounds_in_trial += 1
        state.total_rounds += 1
        record = ViewRecord(
            round_index=state.rounds_in_trial - 1,
            state_before=state_before,
            inbox=inbox,
            outbox=outbox,
            state_after=state.inner_state,
        )
        state.trial_view.append(record)

        indication = state.monitor.observe(record)
        if tracing:
            self.tracer.emit(
                SensingIndication(
                    round_index=state.total_rounds - 1,
                    candidate_index=state.index,
                    positive=indication,
                )
            )
        if not indication and state.rounds_in_trial >= max(1, self._min_trial_rounds):
            state.strikes += 1
            if state.strikes > self._patience:
                state.weights[state.index] *= self._decay
                best = _argmax(state.weights)
                if best != state.index:
                    if tracing:
                        self.tracer.emit(
                            TrialFinished(
                                round_index=state.total_rounds - 1,
                                trial_number=state.switches,
                                candidate_index=state.index,
                                rounds_used=state.rounds_in_trial,
                                reason=TRIAL_DECAYED,
                            )
                        )
                        self.tracer.emit(
                            StrategySwitch(
                                round_index=state.total_rounds - 1,
                                from_index=state.index,
                                to_index=best,
                                wrapped=False,
                                reason=SWITCH_BELIEF_DECAY,
                            )
                        )
                    state.index = best
                    state.inner_state = None
                    state.inner_started = False
                    state.trial_view = UserView()
                    state.monitor = None
                    state.rounds_in_trial = 0
                    state.strikes = 0
                    state.switches += 1
            if outbox.halt:
                outbox = UserOutbox(
                    to_server=outbox.to_server, to_world=outbox.to_world
                )
        return state, outbox


def _argmax(weights: Sequence[float]) -> int:
    """Index of the largest weight (first one on ties, for determinism)."""
    best_index = 0
    best = weights[0]
    for i, w in enumerate(weights):
        if w > best:
            best = w
            best_index = i
    return best_index
