"""Referees: the judges of goal achievement.

The paper fixes a goal by fixing the world's strategy and "a set of
acceptable sequences of world states (or equivalently, ... a referee
predicate on the set of all possible histories of world states)".  Two
families are studied:

* **Finite goals** — the user must halt; the referee is a predicate on the
  finite world-state history (:class:`FiniteReferee`).
* **Compact goals** — the system runs forever; the referee marks each finite
  *prefix* acceptable or not, and the goal is achieved iff only finitely
  many prefixes are unacceptable (:class:`CompactReferee`).

At a finite horizon, "finitely many bad prefixes" is witnessed by the bad
prefixes *stopping*: :meth:`CompactReferee.judge` reports the count and the
last bad index, and :class:`repro.core.goals.CompactGoal` converts that into
an empirical achievement verdict with an explicit settle window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.core.execution import ExecutionResult


class FiniteReferee:
    """Judges a halted execution by its world-state history and user output."""

    def accepts(self, execution: ExecutionResult) -> bool:
        """Return True iff the finite history is acceptable.

        Implementations should return False (not raise) for executions that
        never halted: a user that talks forever has not achieved a finite
        goal.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class FunctionFiniteReferee(FiniteReferee):
    """Adapts a plain predicate into a :class:`FiniteReferee`."""

    predicate: Callable[[ExecutionResult], bool]
    label: str = "finite-referee"

    def accepts(self, execution: ExecutionResult) -> bool:
        if not execution.halted:
            return False
        return bool(self.predicate(execution))


@dataclass(frozen=True)
class CompactVerdict:
    """Prefix-level accounting for a compact referee over one execution.

    ``bad_prefixes`` counts unacceptable prefixes, ``last_bad_round`` is the
    1-based length of the longest unacceptable prefix (``None`` when all
    prefixes were acceptable), and ``flags`` records the per-prefix verdicts
    (True = acceptable) for plotting error-decay curves.
    """

    bad_prefixes: int
    last_bad_round: Optional[int]
    flags: Sequence[bool]

    @property
    def total_prefixes(self) -> int:
        return len(self.flags)

    def settled_since(self, round_index: int) -> bool:
        """True iff no prefix of length > ``round_index`` was unacceptable."""
        if self.last_bad_round is None:
            return True
        return self.last_bad_round <= round_index


class CompactReferee:
    """Judges each finite prefix of the world-state history."""

    def prefix_acceptable(self, world_states: Sequence[Any]) -> bool:
        """Return True iff this prefix of world states is acceptable."""
        raise NotImplementedError

    def judge(self, execution: ExecutionResult) -> CompactVerdict:
        """Evaluate every prefix of the execution's world-state history.

        Prefix *t* (for t = 1..T) consists of the first *t* world states
        (the initial state plus the states after each of the first t−1
        rounds), matching the paper's "history of world states".
        """
        flags: List[bool] = []
        bad = 0
        last_bad: Optional[int] = None
        states = execution.world_states
        for t in range(1, len(states) + 1):
            ok = self.prefix_acceptable(states[:t])
            flags.append(ok)
            if not ok:
                bad += 1
                last_bad = t
        return CompactVerdict(bad_prefixes=bad, last_bad_round=last_bad, flags=tuple(flags))


@dataclass(frozen=True)
class FunctionCompactReferee(CompactReferee):
    """Adapts a plain prefix predicate into a :class:`CompactReferee`."""

    predicate: Callable[[Sequence[Any]], bool]
    label: str = "compact-referee"

    def prefix_acceptable(self, world_states: Sequence[Any]) -> bool:
        return bool(self.predicate(world_states))


@dataclass(frozen=True)
class LastStateCompactReferee(CompactReferee):
    """A compact referee that only inspects the most recent world state.

    Many natural compact goals are *local* in this sense — e.g. "the
    controller's last action was correct".  Implemented as its own class
    (rather than via :class:`FunctionCompactReferee`) because locality makes
    :meth:`judge` linear instead of quadratic in the horizon.
    """

    state_acceptable: Callable[[Any], bool]
    label: str = "last-state-referee"

    def prefix_acceptable(self, world_states: Sequence[Any]) -> bool:
        return bool(self.state_acceptable(world_states[-1]))

    def judge(self, execution: ExecutionResult) -> CompactVerdict:
        flags: List[bool] = []
        bad = 0
        last_bad: Optional[int] = None
        for t, state in enumerate(execution.world_states, start=1):
            ok = bool(self.state_acceptable(state))
            flags.append(ok)
            if not ok:
                bad += 1
                last_bad = t
        return CompactVerdict(bad_prefixes=bad, last_bad_round=last_bad, flags=tuple(flags))
