"""The synchronous execution engine.

Couples one user, one server, and one world strategy and runs them in
lockstep, exactly as in the paper's model: each round, every party reads the
messages emitted in the previous round, updates its state, and emits new
messages (delivered next round).  All three parties step *simultaneously* —
a user request sent in round *t* is read by the server in round *t+1* and
the reply reaches the user in round *t+2*.

The engine records the full world-state history (goal achievement is defined
on it), the user's local view (sensing is defined on it), and optionally a
flat transcript of channel traffic.

Reproducibility: the engine derives an independent PRNG per party from the
master seed, so a strategy that consumes more randomness does not perturb
the other parties' random streams.

Observability: pass ``tracer=`` (see :mod:`repro.obs`) to stream typed
round/message events.  Tracing is read-only — it never touches the RNGs or
channel state — so a traced run is bitwise-identical to an untraced one,
and the off path (``tracer=None`` or a disabled tracer) allocates nothing.

Recording policies: by default the engine retains everything
(:data:`FULL_RECORDING`) — one :class:`RoundRecord` and one
:class:`~repro.core.views.ViewRecord` per round.  Metric-only callers
(sweeps over thousands of runs) pass ``recording=METRICS_RECORDING`` to
skip those per-round allocations: world states, the round count, the halt
flag, the final user state, and tracer counters are kept — exactly what
:func:`repro.analysis.metrics.collect_metrics` reads — while ``rounds``
stays empty and ``user_view`` becomes a bounded
:class:`~repro.core.views.BoundedUserView`.  The simulation itself is
untouched: both policies execute identical rounds from identical seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.comm.channels import ChannelState, Roles
from repro.comm.messages import ServerInbox, ServerOutbox, UserInbox, UserOutbox, WorldInbox, WorldOutbox
from repro.core.interfaces import ChannelLike, ChannelRunLike
from repro.core.strategy import ServerStrategy, UserStrategy, WorldStrategy
from repro.core.views import BoundedUserView, UserView, ViewRecord
from repro.comm.transcripts import Transcript
from repro.errors import ExecutionError
from repro.obs.events import (
    ExecutionFinished,
    ExecutionStarted,
    MessageSent,
    RoundExecuted,
    rng_chain_digest,
)
from repro.obs.tracer import TracerLike, is_tracing


@dataclass(frozen=True)
class RecordingPolicy:
    """What :func:`run_execution` retains as it runs.

    ``keep_rounds`` controls the per-round :class:`RoundRecord` list;
    ``view_window`` controls the engine-level user view: ``None`` keeps
    the full history, an integer keeps a :class:`BoundedUserView` of that
    many trailing records (0 = count rounds, store nothing).

    Use :data:`FULL_RECORDING` (the default — property checkers and
    anything replaying histories need it) or :data:`METRICS_RECORDING`;
    :meth:`for_sensing` builds a metrics policy whose view window honours
    what a sensing function declares it needs.
    """

    keep_rounds: bool = True
    view_window: Optional[int] = None
    label: str = "full"

    @staticmethod
    def for_sensing(sensing: Any) -> "RecordingPolicy":
        """Metrics recording with the view window ``sensing`` asks for.

        ``sensing.view_window()`` returning ``None`` (the whole history
        may matter) keeps the full view — lean rounds, safe sensing.
        """
        window = sensing.view_window()
        return RecordingPolicy(
            keep_rounds=False, view_window=window, label="metrics"
        )


#: Retain everything (the historical behaviour, and still the default).
FULL_RECORDING = RecordingPolicy(keep_rounds=True, view_window=None, label="full")

#: Retain only what metric collection reads; no per-round allocations.
METRICS_RECORDING = RecordingPolicy(keep_rounds=False, view_window=0, label="metrics")


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened during one synchronous round."""

    index: int
    user_inbox: UserInbox
    user_outbox: UserOutbox
    server_inbox: ServerInbox
    server_outbox: ServerOutbox
    world_inbox: WorldInbox
    world_outbox: WorldOutbox
    user_state_after: Any
    server_state_after: Any
    world_state_after: Any


@dataclass
class ExecutionResult:
    """The outcome of running a (user, server, world) system.

    ``world_states`` contains the initial world state followed by the state
    after each executed round — this is the sequence the referee judges.
    ``halted`` is True iff the *user* halted (finite-goal semantics); an
    execution that merely hit ``max_rounds`` has ``halted == False``.

    Under :data:`METRICS_RECORDING`, ``rounds`` stays empty (the count
    lives in ``rounds_completed``) and ``user_view`` may be bounded;
    ``final_user_state`` is filled by the engine under every policy so
    metric collection never needs the round list.
    """

    rounds: List[RoundRecord] = field(default_factory=list)
    world_states: List[Any] = field(default_factory=list)
    user_view: UserView = field(default_factory=UserView)
    transcript: Optional[Transcript] = None
    halted: bool = False
    user_output: Optional[str] = None
    final_user_state: Any = None
    rounds_completed: int = 0
    recording: RecordingPolicy = FULL_RECORDING
    #: Name of the fault channel the run went through (None = perfect link).
    channel_name: Optional[str] = None

    @property
    def rounds_executed(self) -> int:
        """Number of rounds that actually ran (under any recording policy)."""
        return len(self.rounds) if self.rounds else self.rounds_completed

    def final_world_state(self) -> Any:
        """The last recorded world state."""
        if not self.world_states:
            raise ExecutionError("execution recorded no world states")
        return self.world_states[-1]


# Structural interfaces for ``channel=`` arguments.  The concrete
# implementation lives in :mod:`repro.faults.channel`; anything with a
# conforming ``start`` works, keeping the engine free of an upward
# dependency on the fault layer.  (Formerly duck-typed stub classes of
# the same names; now checkable Protocols from repro.core.interfaces.)
FaultyChannelLike = ChannelLike
FaultyChannelRunLike = ChannelRunLike


def run_execution(
    user: UserStrategy,
    server: ServerStrategy,
    world: WorldStrategy,
    *,
    max_rounds: int,
    seed: int = 0,
    record_transcript: bool = False,
    tracer: TracerLike = None,
    recording: RecordingPolicy = FULL_RECORDING,
    channel: Optional["FaultyChannelLike"] = None,
) -> ExecutionResult:
    """Run the three-party system for up to ``max_rounds`` rounds.

    The execution stops early when the user halts.  ``seed`` controls all
    randomness; two runs with equal arguments are identical.  ``tracer``
    (optional) receives :class:`~repro.obs.events.ExecutionStarted`, per-
    message :class:`~repro.obs.events.MessageSent`, per-round
    :class:`~repro.obs.events.RoundExecuted`, and a final
    :class:`~repro.obs.events.ExecutionFinished` event; it observes but
    never influences the run.  ``recording`` picks how much history the
    result retains (see :class:`RecordingPolicy`); it never changes what
    the parties do, only what is kept.

    ``channel`` (optional) makes the user↔server link unreliable: a
    :class:`~repro.faults.channel.FaultyChannel` whose per-run state is
    seeded from the master seed, so fault traces replay exactly (see
    ``docs/ROBUSTNESS.md``).  Faults apply to the payloads *in flight* —
    after outboxes are recorded (the transcript shows what was said) and
    before the next round's inboxes (views show what was heard).  With
    ``channel=None`` the RNG derivations are untouched, so every pre-fault
    execution is bitwise unchanged.

    Raises :class:`ExecutionError` if ``max_rounds`` is not positive or a
    strategy returns an outbox of the wrong type (catching wiring mistakes
    early rather than corrupting channel state).
    """
    if max_rounds <= 0:
        raise ExecutionError(f"max_rounds must be positive: {max_rounds}")

    # Hoisted once: the hot loop below must not pay for tracing when off.
    tracing = is_tracing(tracer)

    master = random.Random(seed)
    user_seed = master.getrandbits(64)
    server_seed = master.getrandbits(64)
    world_seed = master.getrandbits(64)
    user_rng = random.Random(user_seed)
    server_rng = random.Random(server_seed)
    world_rng = random.Random(world_seed)

    if tracing:
        tracer.emit(
            ExecutionStarted(
                user=user.name, server=server.name, world=world.name,
                max_rounds=max_rounds, seed=seed,
                rng_digest=rng_chain_digest(
                    seed, (user_seed, server_seed, world_seed)
                ),
            )
        )

    # Drawn *after* the party streams so channel=None leaves them — and
    # therefore every pre-fault execution — bitwise unchanged.
    channel_run = (
        channel.start(master.getrandbits(64), tracer if tracing else None)
        if channel is not None
        else None
    )

    user_state = user.initial_state(user_rng)
    server_state = server.initial_state(server_rng)
    world_state = world.initial_state(world_rng)

    channels = ChannelState()
    result = ExecutionResult(
        transcript=Transcript() if record_transcript else None,
        recording=recording,
    )
    result.world_states.append(world_state)

    # Hoisted recording-policy flags: the hot loop below pays one branch,
    # not attribute lookups, per retained artefact.
    keep_rounds = recording.keep_rounds
    view_window = recording.view_window
    if view_window is not None:
        result.user_view = BoundedUserView(view_window)
    keep_view_records = view_window is None or view_window > 0

    for round_index in range(max_rounds):
        user_inbox = channels.user_inbox()
        server_inbox = channels.server_inbox()
        world_inbox = channels.world_inbox()

        user_state_before = user_state
        user_state, user_out = user.step(user_state, user_inbox, user_rng)
        server_state, server_out = server.step(server_state, server_inbox, server_rng)
        world_state, world_out = world.step(world_state, world_inbox, world_rng)

        if not isinstance(user_out, UserOutbox):
            raise ExecutionError(f"user strategy {user.name} returned {type(user_out).__name__}")
        if not isinstance(server_out, ServerOutbox):
            raise ExecutionError(f"server strategy {server.name} returned {type(server_out).__name__}")
        if not isinstance(world_out, WorldOutbox):
            raise ExecutionError(f"world strategy {world.name} returned {type(world_out).__name__}")

        channels.deliver(user_out, server_out, world_out)
        if channel_run is not None:
            channels.user_to_server, channels.server_to_user = channel_run.apply(
                round_index, channels.user_to_server, channels.server_to_user
            )

        result.rounds_completed += 1
        if keep_rounds:
            result.rounds.append(
                RoundRecord(
                    index=round_index,
                    user_inbox=user_inbox,
                    user_outbox=user_out,
                    server_inbox=server_inbox,
                    server_outbox=server_out,
                    world_inbox=world_inbox,
                    world_outbox=world_out,
                    user_state_after=user_state,
                    server_state_after=server_state,
                    world_state_after=world_state,
                )
            )
        result.world_states.append(world_state)
        if keep_view_records:
            result.user_view.append(
                ViewRecord(
                    round_index=round_index,
                    state_before=user_state_before,
                    inbox=user_inbox,
                    outbox=user_out,
                    state_after=user_state,
                )
            )
        else:
            result.user_view.advance()
        if result.transcript is not None:
            tr = result.transcript
            tr.record(round_index, Roles.USER, Roles.SERVER, user_out.to_server)
            tr.record(round_index, Roles.USER, Roles.WORLD, user_out.to_world)
            tr.record(round_index, Roles.SERVER, Roles.USER, server_out.to_user)
            tr.record(round_index, Roles.SERVER, Roles.WORLD, server_out.to_world)
            tr.record(round_index, Roles.WORLD, Roles.USER, world_out.to_user)
            tr.record(round_index, Roles.WORLD, Roles.SERVER, world_out.to_server)

        if tracing:
            messages = message_bytes = 0
            for sender, receiver, payload in (
                (Roles.USER, Roles.SERVER, user_out.to_server),
                (Roles.USER, Roles.WORLD, user_out.to_world),
                (Roles.SERVER, Roles.USER, server_out.to_user),
                (Roles.SERVER, Roles.WORLD, server_out.to_world),
                (Roles.WORLD, Roles.USER, world_out.to_user),
                (Roles.WORLD, Roles.SERVER, world_out.to_server),
            ):
                if payload:
                    messages += 1
                    message_bytes += len(payload)
                    tracer.emit(
                        MessageSent(
                            round_index=round_index, sender=sender,
                            receiver=receiver, payload=payload,
                        )
                    )
            tracer.emit(
                RoundExecuted(
                    round_index=round_index, messages=messages,
                    message_bytes=message_bytes, halted=user_out.halt,
                )
            )

        if user_out.halt:
            result.halted = True
            result.user_output = user_out.output
            break

    result.final_user_state = user_state
    if channel_run is not None:
        result.channel_name = getattr(channel, "name", type(channel).__name__)
    if tracing:
        tracer.emit(
            ExecutionFinished(
                rounds_executed=result.rounds_completed, halted=result.halted
            )
        )
    return result
