"""Core model of goal-oriented communication (the paper's Section 2–3).

Strategies and the synchronous engine (:mod:`.strategy`, :mod:`.execution`),
goals and referees (:mod:`.goals`, :mod:`.referees`), the user's local view
and sensing (:mod:`.views`, :mod:`.sensing`), helpfulness of servers
(:mod:`.helpfulness`) and the empirical checkers for the paper's
definitional properties (:mod:`.properties`).
"""

from repro.core.strategy import (
    Strategy,
    UserStrategy,
    ServerStrategy,
    WorldStrategy,
    StatelessUser,
    SilentUser,
    SilentServer,
)
from repro.core.execution import (
    ExecutionResult,
    FULL_RECORDING,
    METRICS_RECORDING,
    RecordingPolicy,
    RoundRecord,
    run_execution,
)
from repro.core.views import BoundedUserView, UserView, ViewRecord
from repro.core.referees import (
    FiniteReferee,
    FunctionFiniteReferee,
    CompactReferee,
    FunctionCompactReferee,
    LastStateCompactReferee,
    CompactVerdict,
)
from repro.core.goals import FiniteGoal, CompactGoal, Goal, GoalOutcome
from repro.core.sensing import (
    Sensing,
    IncrementalSensing,
    incremental_sensing,
    FunctionSensing,
    ConstantSensing,
    LastWorldMessageSensing,
    GraceSensing,
    AllOfSensing,
    AnyOfSensing,
    NoRecentProgressSensing,
)
from repro.core.interfaces import (
    ChannelLike,
    ChannelRunLike,
    FaultScheduleLike,
    IncrementalSensingLike,
    ScheduleRunLike,
    SensingLike,
    SensingPredicate,
    StrategyLike,
    TracerProtocol,
)
from repro.core.helpfulness import HelpfulnessReport, is_helpful, helpful_subclass
from repro.core.properties import (
    PropertyReport,
    Violation,
    check_finite_safety,
    check_finite_viability,
    check_compact_safety,
    check_compact_viability,
    check_forgiving,
)

__all__ = [
    "Strategy",
    "UserStrategy",
    "ServerStrategy",
    "WorldStrategy",
    "StatelessUser",
    "SilentUser",
    "SilentServer",
    "ExecutionResult",
    "RecordingPolicy",
    "FULL_RECORDING",
    "METRICS_RECORDING",
    "RoundRecord",
    "run_execution",
    "UserView",
    "BoundedUserView",
    "ViewRecord",
    "FiniteReferee",
    "FunctionFiniteReferee",
    "CompactReferee",
    "FunctionCompactReferee",
    "LastStateCompactReferee",
    "CompactVerdict",
    "FiniteGoal",
    "CompactGoal",
    "Goal",
    "GoalOutcome",
    "Sensing",
    "IncrementalSensing",
    "incremental_sensing",
    "FunctionSensing",
    "ConstantSensing",
    "LastWorldMessageSensing",
    "GraceSensing",
    "AllOfSensing",
    "AnyOfSensing",
    "NoRecentProgressSensing",
    "ChannelLike",
    "ChannelRunLike",
    "FaultScheduleLike",
    "IncrementalSensingLike",
    "ScheduleRunLike",
    "SensingLike",
    "SensingPredicate",
    "StrategyLike",
    "TracerProtocol",
    "HelpfulnessReport",
    "is_helpful",
    "helpful_subclass",
    "PropertyReport",
    "Violation",
    "check_finite_safety",
    "check_finite_viability",
    "check_compact_safety",
    "check_compact_viability",
    "check_forgiving",
]
