"""Helpfulness of servers: can *somebody* in the user class succeed?

The paper: "a server strategy is *helpful* for the goal and a class of user
strategies if there is some user strategy U such that when U is paired with
the server, and the server and world are started from any initial state, the
goal is achieved."  A *universal* user must then succeed with every helpful
server.

Helpfulness quantifies over an infinite set of initial states and all user
strategies in a class; with the bounded classes used here we check it
exhaustively over the class and approximate "any initial state" by running
under several seeds (randomising the probabilistic parts of server and
world) and, optionally, by prefixing the interaction with junk traffic that
drives the server into an arbitrary reachable state (see
:class:`repro.users.scripted.JunkThenUser`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.execution import run_execution
from repro.core.goals import Goal
from repro.core.strategy import ServerStrategy, UserStrategy


@dataclass(frozen=True)
class HelpfulnessReport:
    """Outcome of a helpfulness check for one server.

    ``witness`` is the first user strategy in the class that achieved the
    goal under every tested seed (``None`` when the server is unhelpful).
    ``per_user`` maps each tried user's name to the number of seeds it
    succeeded on, for diagnostics.
    """

    helpful: bool
    witness: Optional[UserStrategy]
    per_user: Dict[str, int] = field(default_factory=dict)
    seeds_tested: int = 0

    def __bool__(self) -> bool:
        return self.helpful


def is_helpful(
    server: ServerStrategy,
    goal: Goal,
    user_class: Sequence[UserStrategy],
    *,
    seeds: Sequence[int] = (0, 1, 2),
    max_rounds: int = 256,
) -> HelpfulnessReport:
    """Decide (empirically) whether ``server`` is helpful for ``goal``.

    A user strategy *witnesses* helpfulness when it achieves the goal under
    every seed in ``seeds``.  The check runs users in class order and stops
    at the first witness, so for honest classes it is cheap; for unhelpful
    servers it costs ``len(user_class) * len(seeds)`` executions.
    """
    per_user: Dict[str, int] = {}
    for user in user_class:
        successes = 0
        for seed in seeds:
            execution = run_execution(
                user, server, goal.world, max_rounds=max_rounds, seed=seed
            )
            if goal.evaluate(execution).achieved:
                successes += 1
            else:
                break
        per_user[user.name] = successes
        if successes == len(seeds):
            return HelpfulnessReport(
                helpful=True, witness=user, per_user=per_user, seeds_tested=len(seeds)
            )
    return HelpfulnessReport(
        helpful=False, witness=None, per_user=per_user, seeds_tested=len(seeds)
    )


def helpful_subclass(
    servers: Sequence[ServerStrategy],
    goal: Goal,
    user_class: Sequence[UserStrategy],
    *,
    seeds: Sequence[int] = (0, 1, 2),
    max_rounds: int = 256,
) -> List[Tuple[ServerStrategy, HelpfulnessReport]]:
    """Filter a server class down to its helpful members (with reports).

    Experiments use this to state their claims exactly as the paper does:
    "the universal user achieves the goal with every *helpful* server in the
    class" — unhelpful members (e.g. dishonest provers) are excluded from
    the success requirement but still matter for safety.
    """
    results: List[Tuple[ServerStrategy, HelpfulnessReport]] = []
    for server in servers:
        report = is_helpful(
            server, goal, user_class, seeds=seeds, max_rounds=max_rounds
        )
        if report.helpful:
            results.append((server, report))
    return results
