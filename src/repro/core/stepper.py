"""A resumable round-stepper: the engine's loop body as a standalone object.

:func:`repro.core.execution.run_execution` runs a cast to completion; some
callers need the *same* execution advanced cooperatively — the batched
lockstep backend interleaves thousands of slots round by round, and the
session service (:mod:`repro.serve`) parks an execution between scheduler
slices for arbitrarily long.  :class:`ExecutionStepper` is the engine's
loop body extracted into an object: construct it with exactly the arguments
``run_execution`` takes, call :meth:`step` until it returns ``False``, and
:meth:`finish` hands back the :class:`~repro.core.execution.ExecutionResult`.

Parity contract: a stepper stepped to completion is **bitwise identical**
to ``run_execution`` with the same arguments — same per-party RNG
derivation (user, server, world streams first, channel stream last), same
outbox validation, same channel-fault application, same recording policies,
same tracer event order.  ``tests/serve/test_session.py`` and
``tests/core/test_batch.py`` pin this field by field; any change here must
keep both the serial engine and this extraction in lockstep.

The serial engine itself deliberately keeps its own hoisted-local loop
(``run_execution`` is the hot reference path and benchmark subject); this
module is the *resumable* form of that loop, shared by every caller that
cannot run an execution to completion in one call.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.comm.channels import ChannelState, Roles
from repro.comm.messages import ServerOutbox, UserOutbox, WorldOutbox
from repro.comm.transcripts import Transcript
from repro.core.execution import (
    FULL_RECORDING,
    ExecutionResult,
    FaultyChannelLike,
    RecordingPolicy,
    RoundRecord,
)
from repro.core.strategy import ServerStrategy, UserStrategy, WorldStrategy
from repro.core.views import BoundedUserView, ViewRecord
from repro.errors import ExecutionError
from repro.obs.events import (
    ExecutionFinished,
    ExecutionStarted,
    MessageSent,
    RoundExecuted,
    rng_chain_digest,
)
from repro.obs.tracer import TracerLike, is_tracing


def derive_party_seeds(seed: int) -> Tuple[int, int, int, int]:
    """The engine's per-party seed chain for master ``seed``.

    Mirrors :func:`repro.core.execution.run_execution` exactly: user,
    server, and world streams first, then the channel stream (drawn last
    so fault-free runs never perturb the party streams).  The stepper and
    the lockstep engine derive their runs through this helper, and the
    parity suites pin it against the serial engine's observable draws.
    """
    master = random.Random(seed)
    return (
        master.getrandbits(64),
        master.getrandbits(64),
        master.getrandbits(64),
        master.getrandbits(64),
    )


class ExecutionStepper:
    """One execution, advanced one synchronous round per :meth:`step` call.

    Construction performs everything ``run_execution`` does before its
    loop: seed derivation, tracer start event, channel-run creation, and
    the parties' initial states.  Each :meth:`step` call is one iteration
    of the engine's loop; the stepper goes *settled* when the user halts
    or ``max_rounds`` is exhausted, after which :meth:`step` is an error
    and :meth:`finish` returns the result (and emits the finish event).

    Steppers are single-use and not thread-safe; cooperative interleaving
    (many steppers advanced from one thread, in any order) is the intended
    mode and changes no stepper's results — all state is per-instance.
    """

    __slots__ = (
        "user", "server", "world", "max_rounds", "recording", "channel",
        "tracer", "user_rng", "server_rng", "world_rng", "user_state",
        "server_state", "world_state", "channels", "channel_run", "result",
        "tracing", "keep_rounds", "keep_view_records", "live", "finished",
        "round_index",
    )

    def __init__(
        self,
        user: UserStrategy,
        server: ServerStrategy,
        world: WorldStrategy,
        *,
        max_rounds: int,
        seed: int = 0,
        record_transcript: bool = False,
        tracer: TracerLike = None,
        recording: RecordingPolicy = FULL_RECORDING,
        channel: Optional[FaultyChannelLike] = None,
    ) -> None:
        if max_rounds <= 0:
            raise ExecutionError(f"max_rounds must be positive: {max_rounds}")
        self.user = user
        self.server = server
        self.world = world
        self.max_rounds = max_rounds
        self.recording = recording
        self.channel = channel
        self.tracer = tracer
        user_seed, server_seed, world_seed, channel_seed = derive_party_seeds(seed)
        self.user_rng = random.Random(user_seed)
        self.server_rng = random.Random(server_seed)
        self.world_rng = random.Random(world_seed)
        self.tracing = is_tracing(tracer)
        if self.tracing:
            assert tracer is not None
            tracer.emit(
                ExecutionStarted(
                    user=user.name,
                    server=server.name,
                    world=world.name,
                    max_rounds=max_rounds,
                    seed=seed,
                    rng_digest=rng_chain_digest(
                        seed, (user_seed, server_seed, world_seed)
                    ),
                )
            )
        self.channel_run = (
            channel.start(channel_seed, tracer if self.tracing else None)
            if channel is not None
            else None
        )
        self.user_state = user.initial_state(self.user_rng)
        self.server_state = server.initial_state(self.server_rng)
        self.world_state = world.initial_state(self.world_rng)
        self.channels = ChannelState()
        self.result = ExecutionResult(
            transcript=Transcript() if record_transcript else None,
            recording=recording,
        )
        self.result.world_states.append(self.world_state)
        self.keep_rounds = recording.keep_rounds
        view_window = recording.view_window
        if view_window is not None:
            self.result.user_view = BoundedUserView(view_window)
        self.keep_view_records = view_window is None or view_window > 0
        self.live = True
        self.finished = False
        self.round_index = 0

    @property
    def rounds_completed(self) -> int:
        """Rounds executed so far (== the next round's index while live)."""
        return self.result.rounds_completed

    def step(self) -> bool:
        """Advance one synchronous round; return ``True`` while live.

        Exactly the body of the serial engine's loop — party steps, outbox
        validation, delivery, channel faults, recording, tracing, and the
        halt check — for the stepper's current round index.  Raises
        :class:`~repro.errors.ExecutionError` when called after the
        execution settled (a scheduler bug, not a recoverable condition).
        """
        if not self.live:
            raise ExecutionError("step() called on a settled execution")
        round_index = self.round_index
        channels = self.channels
        user_inbox = channels.user_inbox()
        server_inbox = channels.server_inbox()
        world_inbox = channels.world_inbox()

        user_state_before = self.user_state
        self.user_state, user_out = self.user.step(
            self.user_state, user_inbox, self.user_rng
        )
        self.server_state, server_out = self.server.step(
            self.server_state, server_inbox, self.server_rng
        )
        self.world_state, world_out = self.world.step(
            self.world_state, world_inbox, self.world_rng
        )

        if not isinstance(user_out, UserOutbox):
            raise ExecutionError(
                f"user strategy {self.user.name} returned {type(user_out).__name__}"
            )
        if not isinstance(server_out, ServerOutbox):
            raise ExecutionError(
                f"server strategy {self.server.name} returned "
                f"{type(server_out).__name__}"
            )
        if not isinstance(world_out, WorldOutbox):
            raise ExecutionError(
                f"world strategy {self.world.name} returned "
                f"{type(world_out).__name__}"
            )

        channels.deliver(user_out, server_out, world_out)
        if self.channel_run is not None:
            channels.user_to_server, channels.server_to_user = self.channel_run.apply(
                round_index, channels.user_to_server, channels.server_to_user
            )

        result = self.result
        result.rounds_completed += 1
        if self.keep_rounds:
            result.rounds.append(
                RoundRecord(
                    index=round_index,
                    user_inbox=user_inbox,
                    user_outbox=user_out,
                    server_inbox=server_inbox,
                    server_outbox=server_out,
                    world_inbox=world_inbox,
                    world_outbox=world_out,
                    user_state_after=self.user_state,
                    server_state_after=self.server_state,
                    world_state_after=self.world_state,
                )
            )
        result.world_states.append(self.world_state)
        if self.keep_view_records:
            result.user_view.append(
                ViewRecord(
                    round_index=round_index,
                    state_before=user_state_before,
                    inbox=user_inbox,
                    outbox=user_out,
                    state_after=self.user_state,
                )
            )
        else:
            result.user_view.advance()
        if result.transcript is not None:
            tr = result.transcript
            tr.record(round_index, Roles.USER, Roles.SERVER, user_out.to_server)
            tr.record(round_index, Roles.USER, Roles.WORLD, user_out.to_world)
            tr.record(round_index, Roles.SERVER, Roles.USER, server_out.to_user)
            tr.record(round_index, Roles.SERVER, Roles.WORLD, server_out.to_world)
            tr.record(round_index, Roles.WORLD, Roles.USER, world_out.to_user)
            tr.record(round_index, Roles.WORLD, Roles.SERVER, world_out.to_server)

        if self.tracing:
            tracer = self.tracer
            assert tracer is not None
            messages = message_bytes = 0
            for sender, receiver, payload in (
                (Roles.USER, Roles.SERVER, user_out.to_server),
                (Roles.USER, Roles.WORLD, user_out.to_world),
                (Roles.SERVER, Roles.USER, server_out.to_user),
                (Roles.SERVER, Roles.WORLD, server_out.to_world),
                (Roles.WORLD, Roles.USER, world_out.to_user),
                (Roles.WORLD, Roles.SERVER, world_out.to_server),
            ):
                if payload:
                    messages += 1
                    message_bytes += len(payload)
                    tracer.emit(
                        MessageSent(
                            round_index=round_index, sender=sender,
                            receiver=receiver, payload=payload,
                        )
                    )
            tracer.emit(
                RoundExecuted(
                    round_index=round_index, messages=messages,
                    message_bytes=message_bytes, halted=user_out.halt,
                )
            )

        self.round_index = round_index + 1
        if user_out.halt:
            result.halted = True
            result.user_output = user_out.output
            self.live = False
        elif result.rounds_completed >= self.max_rounds:
            self.live = False
        return self.live

    def step_many(self, rounds: int) -> int:
        """Advance up to ``rounds`` rounds; return how many actually ran.

        The scheduler-slice form of :meth:`step`: stops early when the
        execution settles, and is a no-op (returning 0) on an already
        settled stepper — schedulers may race a settle without guarding.
        """
        if rounds < 0:
            raise ExecutionError(f"rounds must be non-negative: {rounds}")
        executed = 0
        while executed < rounds and self.live:
            self.step()
            executed += 1
        return executed

    def finish(self) -> ExecutionResult:
        """Seal and return the result (idempotent after the first call).

        Mirrors the serial engine's epilogue: fills ``final_user_state``,
        stamps the channel name, and emits the
        :class:`~repro.obs.events.ExecutionFinished` event exactly once.
        Callable while live (an aborted drain still wants partial state),
        but the normal path calls it once ``step`` returned ``False``.
        """
        result = self.result
        if self.finished:
            return result
        self.finished = True
        result.final_user_state = self.user_state
        if self.channel_run is not None:
            result.channel_name = getattr(
                self.channel, "name", type(self.channel).__name__
            )
        if self.tracing:
            assert self.tracer is not None
            self.tracer.emit(
                ExecutionFinished(
                    rounds_executed=result.rounds_completed, halted=result.halted
                )
            )
        return result


def run_steppers(steppers: Sequence[ExecutionStepper]) -> List[ExecutionResult]:
    """Advance every stepper in lockstep to completion; results in order.

    The minimal cooperative scheduler: each pass steps every live stepper
    once, so N concurrent executions share one process and interleave
    round by round — the structural skeleton both
    :func:`repro.core.batch.run_execution_batch` and the session service
    build on.  Results are bitwise-identical to running each stepper to
    completion on its own (steppers share no state).
    """
    live = [s for s in steppers if s.live]
    while live:
        for stepper in live:
            stepper.step()
        if any(not s.live for s in live):
            live = [s for s in live if s.live]
    return [s.finish() for s in steppers]
