"""Batched lockstep execution: many runs per process, one round at a time.

The sweeps that reproduce the paper's experiments are embarrassingly
parallel across cells *and* across seeds — and process pools alone cannot
make them fast, because every worker still steps one execution at a time
through the interpreted engine.  This module adds the other axis: a
**batched backend** that holds N concurrent executions and advances all of
them in lockstep inside one process.

Two tiers, one contract:

* :func:`run_execution_batch` — the **scalar lockstep** engine.  Works for
  *arbitrary* strategies: each live slot is stepped exactly as
  :func:`repro.core.execution.run_execution` would step it (same RNG
  derivation, same outbox validation, same channel-fault application, same
  recording policies), so every slot's :class:`ExecutionResult` is
  bitwise-identical to the serial engine's.  The win here is structural —
  thousands of sessions share one process, one warm cache, and one pass of
  per-round bookkeeping — not asymptotic.
* :func:`run_tabular_batch` — the **vectorized lockstep** kernel.  When
  every party of every slot compiles to a finite-state table over a shared
  finite message alphabet (see :class:`TabularParty` and
  :func:`compile_tabular_cast`), a whole round of the three-party protocol
  is a handful of numpy gathers across all N slots.  This is where the
  100×+ throughput lives (``docs/PERFORMANCE.md`` has the measured table).

numpy is **optional**: this module imports it lazily and everything except
:func:`run_tabular_batch` works without it (:data:`HAVE_NUMPY` reports the
outcome; :func:`compile_tabular_cast` simply returns ``None`` so callers
fall back to the scalar lockstep tier).

Determinism contract: a batched backend may change *where and how* runs
execute, never what they compute.  ``tests/core/test_batch.py`` asserts
scalar-lockstep results equal serial results field by field (including RNG
streams, fault schedules, and recording policies), and vectorized metrics
equal scalar metrics over the tabular casts.

Tracing in batch mode is **counters-only**: per-slot tracers receive the
same events (and therefore the same counter totals) a serial run would
emit, but slots interleave in the stream, so ordered sinks (JSONL traces,
certificates) are not supported — see the "Batched execution" section of
``docs/PERFORMANCE.md`` for exactly what is and is not recorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.comm.messages import SILENCE
from repro.core.execution import (
    FULL_RECORDING,
    ExecutionResult,
    FaultyChannelLike,
    RecordingPolicy,
)
from repro.core.goals import CompactGoal, Goal
from repro.core.referees import LastStateCompactReferee
from repro.core.stepper import ExecutionStepper, derive_party_seeds
from repro.core.strategy import ServerStrategy, UserStrategy, WorldStrategy
from repro.errors import ExecutionError
from repro.obs.tracer import TracerLike

__all__ = [
    "HAVE_NUMPY",
    "BatchItem",
    "TabularCast",
    "TabularOutcome",
    "TabularParty",
    "TabularStrategy",
    "compile_tabular_cast",
    "derive_party_seeds",  # canonical home: repro.core.stepper
    "run_execution_batch",
    "run_tabular_batch",
]

try:  # pragma: no cover - exercised via the HAVE_NUMPY branches in tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

#: True when numpy imported and the vectorized tier is available.
HAVE_NUMPY: bool = _np is not None


@dataclass(frozen=True)
class BatchItem:
    """One execution slot of a batch: the cast plus its run parameters."""

    user: UserStrategy
    server: ServerStrategy
    world: WorldStrategy
    seed: int = 0
    max_rounds: int = 1
    recording: RecordingPolicy = FULL_RECORDING
    channel: Optional[FaultyChannelLike] = None
    record_transcript: bool = False
    #: Per-slot tracer (counters-only semantics; see the module docstring).
    tracer: TracerLike = None

    def __post_init__(self) -> None:
        if self.max_rounds <= 0:
            raise ExecutionError(f"max_rounds must be positive: {self.max_rounds}")


def _slot(item: BatchItem) -> ExecutionStepper:
    """One lockstep slot: the extracted engine loop, parameterised by item.

    The per-round mechanics live in :class:`repro.core.stepper.ExecutionStepper`
    (the engine's loop body as an object); this module only decides *which*
    executions advance together.
    """
    return ExecutionStepper(
        item.user,
        item.server,
        item.world,
        max_rounds=item.max_rounds,
        seed=item.seed,
        record_transcript=item.record_transcript,
        tracer=item.tracer,
        recording=item.recording,
        channel=item.channel,
    )


def run_execution_batch(items: Sequence[BatchItem]) -> List[ExecutionResult]:
    """Run every item in lockstep; results in item order.

    Each slot is advanced exactly as :func:`~repro.core.execution.run_execution`
    would advance it — same per-party RNG derivation, same validation, same
    channel-fault application, same recording policy — so slot *i*'s result
    is identical to ``run_execution(items[i]...)``.  Slots that halt (or
    exhaust their ``max_rounds``) drop out; the loop ends when none remain.

    Strategies shared between slots must keep all run state in the state
    object the engine threads (the repository-wide RL002 discipline): the
    lockstep interleaving calls ``step`` for slot A between two calls for
    slot B, which a ``self``-mutating strategy would observe.
    """
    slots = [_slot(item) for item in items]
    live = list(slots)
    while live:
        for slot in live:
            slot.step()
        if any(not slot.live for slot in live):
            live = [slot for slot in live if slot.live]
    return [slot.finish() for slot in slots]


# ---------------------------------------------------------------------------
# The tabular (vectorizable) tier.
# ---------------------------------------------------------------------------

#: Ceiling on the interned alphabet; a cast whose symbol closure exceeds it
#: is not vectorized (the scalar lockstep tier handles it instead).
MAX_TABULAR_SYMBOLS = 64


@dataclass(frozen=True)
class TabularParty:
    """A finite-state party over a shared, interned message alphabet.

    ``next_state[s][a][b]`` is the state after reading symbol index ``a``
    on the party's first incoming channel and ``b`` on its second;
    ``out_a``/``out_b`` give the emitted symbol indices for the party's
    two outgoing channels.  Channel order follows the role conventions of
    :func:`run_tabular_batch`:

    * user — in: (from_server, from_world); out: (to_server, to_world)
    * server — in: (from_user, from_world); out: (to_user, to_world)
    * world — in: (from_user, from_server); out: (to_user, to_server)

    All indices refer to one global ``alphabet`` (index 0 is
    :data:`~repro.comm.messages.SILENCE`); incoming messages outside the
    alphabet never occur inside a compiled batch, because every party's
    outputs are drawn from the same closure.
    """

    n_symbols: int
    initial_state: int
    next_state: Tuple[Tuple[Tuple[int, ...], ...], ...]
    out_a: Tuple[Tuple[Tuple[int, ...], ...], ...]
    out_b: Tuple[Tuple[Tuple[int, ...], ...], ...]

    def __post_init__(self) -> None:
        n = self.n_states
        if n == 0:
            raise ValueError("tabular party needs at least one state")
        if not 0 <= self.initial_state < n:
            raise ValueError(f"initial state out of range: {self.initial_state}")
        for name, table in (
            ("next_state", self.next_state),
            ("out_a", self.out_a),
            ("out_b", self.out_b),
        ):
            if len(table) != n:
                raise ValueError(f"{name} row count != next_state row count")
            bound = n if name == "next_state" else self.n_symbols
            for plane in table:
                if len(plane) != self.n_symbols:
                    raise ValueError(f"{name} plane width != alphabet size")
                for row in plane:
                    if len(row) != self.n_symbols:
                        raise ValueError(f"{name} row width != alphabet size")
                    if any(not 0 <= v < bound for v in row):
                        raise ValueError(f"{name} entry out of range")

    @property
    def n_states(self) -> int:
        return len(self.next_state)


@runtime_checkable
class TabularStrategy(Protocol):
    """Strategies that can compile themselves to :class:`TabularParty` tables.

    ``tabular_symbols(inputs)`` reports every message the strategy may emit
    when its incoming messages range over ``inputs`` (the compiler iterates
    this to a closed alphabet); ``tabular_party(alphabet)`` then builds the
    tables over the final interned alphabet.  Implementations must be
    deterministic and RNG-free — the vectorized kernel threads no
    randomness — and may raise ``ValueError`` from ``tabular_party`` when a
    configuration (custom adapters, foreign symbols) is not table-able.
    """

    def tabular_symbols(self, inputs: FrozenSet[str]) -> FrozenSet[str]:
        """Symbols the strategy may emit given incoming symbols ``inputs``."""
        ...

    def tabular_party(self, alphabet: Tuple[str, ...]) -> TabularParty:
        """Compile to tables over the (closed) global ``alphabet``."""
        ...


@dataclass(frozen=True)
class TabularCast:
    """A compiled (user, server, world, referee) cell, ready to vectorize.

    ``acceptable`` maps each world state id to the referee's verdict on it
    (:class:`~repro.core.referees.LastStateCompactReferee` locality is what
    makes compact-goal evaluation a table lookup); ``settle_fraction`` is
    copied from the goal so achievement arithmetic can be replayed exactly.
    """

    alphabet: Tuple[str, ...]
    user: TabularParty
    server: TabularParty
    world: TabularParty
    acceptable: Tuple[bool, ...]
    settle_fraction: float


def _close_alphabet(
    parties: Sequence[TabularStrategy],
) -> Optional[Tuple[str, ...]]:
    """Iterate the parties' emissions to a closed symbol set, or ``None``.

    Starts from :data:`~repro.comm.messages.SILENCE` (always index 0) and
    keeps asking every party what it can emit over the known symbols until
    nothing new appears.  Bails out (→ scalar fallback) past
    :data:`MAX_TABULAR_SYMBOLS`.
    """
    known: FrozenSet[str] = frozenset({SILENCE})
    while True:
        grown = known
        for party in parties:
            grown = grown | party.tabular_symbols(grown)
        if len(grown) > MAX_TABULAR_SYMBOLS:
            return None
        if grown == known:
            break
        known = grown
    # SILENCE first, then deterministic order for the rest.
    return (SILENCE, *sorted(known - {SILENCE}))


def compile_tabular_cast(
    user: UserStrategy,
    server: ServerStrategy,
    world: WorldStrategy,
    goal: Goal,
    *,
    channel: Optional[FaultyChannelLike] = None,
) -> Optional[TabularCast]:
    """Compile a cell to its vectorizable form, or ``None`` to fall back.

    Vectorization requires *all* of: numpy importable, a perfect link
    (``channel is None`` — fault clauses rewrite payloads outside the
    alphabet), a :class:`~repro.core.goals.CompactGoal` judged by a
    :class:`~repro.core.referees.LastStateCompactReferee` (locality — the
    verdict is a function of the current world state id), and all three
    parties implementing :class:`TabularStrategy`.  Every ``None`` return
    is a silent, semantics-preserving fallback to the scalar lockstep
    tier, never an error.
    """
    if _np is None or channel is not None:
        return None
    if not isinstance(goal, CompactGoal):
        return None
    if not isinstance(goal.referee, LastStateCompactReferee):
        return None
    if not (
        isinstance(user, TabularStrategy)
        and isinstance(server, TabularStrategy)
        and isinstance(world, TabularStrategy)
    ):
        return None
    parties: Tuple[TabularStrategy, ...] = (user, server, world)
    try:
        alphabet = _close_alphabet(parties)
        if alphabet is None:
            return None
        user_t = user.tabular_party(alphabet)
        server_t = server.tabular_party(alphabet)
        world_t = world.tabular_party(alphabet)
    except ValueError:
        # A party carries custom, non-table-able wiring: scalar fallback.
        return None
    acceptable = tuple(
        bool(goal.referee.state_acceptable(state))
        for state in range(world_t.n_states)
    )
    return TabularCast(
        alphabet=alphabet,
        user=user_t,
        server=server_t,
        world=world_t,
        acceptable=acceptable,
        settle_fraction=goal.settle_fraction,
    )


@dataclass(frozen=True)
class TabularOutcome:
    """Per-slot results of a vectorized batch (metrics-level fidelity).

    The vectorized tier never materialises :class:`ExecutionResult`
    objects — that is the point — so it reports exactly the figures
    :func:`repro.analysis.metrics.collect_metrics` would extract: the
    compact-goal achievement verdict, prefix accounting, and (when
    telemetry was requested) the per-slot message counters.
    """

    achieved: bool
    rounds: int
    bad_prefixes: int
    last_bad_round: Optional[int]
    messages: int = 0
    message_bytes: int = 0
    #: Whether round 1 emitted any message — callers reconstructing serial
    #: counter streams need it because the serial tracer creates the
    #: ``messages`` counters *before* ``rounds`` exactly when the first
    #: round sent something (MessageSent events precede RoundExecuted).
    first_round_messages: bool = False


def run_tabular_batch(
    casts: Sequence[TabularCast],
    *,
    max_rounds: int,
    count_messages: bool = False,
) -> List[TabularOutcome]:
    """Vectorized lockstep over compiled slots (one cast per slot).

    All slots advance together: each round is a fixed number of numpy
    gathers over arrays of length ``len(casts)``, so the per-round Python
    cost is O(1) in the batch width.  Slots sharing identical machines are
    deduplicated into shared tables automatically (the common case — a
    sweep varies the server, not the whole cast).

    ``count_messages=True`` additionally accumulates per-slot message and
    byte counters matching the serial engine's telemetry (a non-silent
    payload on any of the six directed channels is one message).

    Raises :class:`~repro.errors.ExecutionError` when numpy is missing —
    callers are expected to have compiled their casts via
    :func:`compile_tabular_cast`, which already gates on numpy.
    """
    if _np is None:
        raise ExecutionError(
            "run_tabular_batch requires numpy; use run_execution_batch instead"
        )
    if max_rounds <= 0:
        raise ExecutionError(f"max_rounds must be positive: {max_rounds}")
    if not casts:
        return []
    n_symbols = len(casts[0].alphabet)
    for cast in casts:
        if cast.alphabet != casts[0].alphabet:
            raise ExecutionError(
                "all casts in a vectorized batch must share one alphabet"
            )

    n = len(casts)
    u_tab, u_tables = _dedupe([c.user for c in casts])
    s_tab, s_tables = _dedupe([c.server for c in casts])
    # Worlds dedupe on (tables, referee mask): two slots may share world
    # dynamics yet answer to different referees.
    w_keyed = _dedupe_keyed([(c.world, c.acceptable) for c in casts])
    w_tab, w_pairs = w_keyed
    w_tables = [party for party, _ in w_pairs]
    u_next, u_oa, u_ob = _stack(u_tables, n_symbols)
    s_next, s_oa, s_ob = _stack(s_tables, n_symbols)
    w_next, w_oa, w_ob = _stack(w_tables, n_symbols)

    # Pack each party's (next_state, out_a, out_b) into one composite
    # entry and flatten: a round then costs one flat ``take`` plus two
    # ``divmod`` decodes per party, instead of three 4-array fancy-index
    # gathers — flat takes are the fast path through numpy's indexing.
    A = n_symbols
    u_flat = ((u_next * A + u_oa) * A + u_ob).reshape(-1)
    s_flat = ((s_next * A + s_oa) * A + s_ob).reshape(-1)
    w_flat = ((w_next * A + w_oa) * A + w_ob).reshape(-1)

    # The referee verdict is a per-(world-table, state) lookup; pad ragged
    # state counts with True (unreachable states judge as acceptable).
    max_w_states = max(t.n_states for t in w_tables)
    accept = _np.ones((len(w_tables), max_w_states), dtype=bool)
    for index, (_party, acceptable) in enumerate(w_pairs):
        accept[index, : len(acceptable)] = _np.asarray(acceptable, dtype=bool)

    u_tab_arr = _np.asarray(u_tab, dtype=_np.int64)
    s_tab_arr = _np.asarray(s_tab, dtype=_np.int64)
    w_tab_arr = _np.asarray(w_tab, dtype=_np.int64)
    u_state = _np.asarray([c.user.initial_state for c in casts], dtype=_np.int64)
    s_state = _np.asarray([c.server.initial_state for c in casts], dtype=_np.int64)
    w_state = _np.asarray([c.world.initial_state for c in casts], dtype=_np.int64)

    # Per-slot flat-index bases are loop constants: slot i's entry for
    # (state, in_a, in_b) lives at base[i] + state*A*A + in_a*A + in_b.
    AA = A * A
    u_base = u_tab_arr * (u_next.shape[1] * AA)
    s_base = s_tab_arr * (s_next.shape[1] * AA)
    w_base = w_tab_arr * (w_next.shape[1] * AA)
    accept_flat = accept.reshape(-1)
    w_acc_base = w_tab_arr * max_w_states

    zeros = _np.zeros(n, dtype=_np.int64)
    u2s = zeros.copy(); u2w = zeros.copy()
    s2u = zeros.copy(); s2w = zeros.copy()
    w2u = zeros.copy(); w2s = zeros.copy()

    bad_count = _np.zeros(n, dtype=_np.int64)
    last_bad = _np.zeros(n, dtype=_np.int64)  # 0 = never bad (1-based rounds)

    # Prefix t=1: the initial world state, judged before any round runs.
    bad0 = ~accept_flat.take(w_acc_base + w_state)
    bad_count += bad0
    last_bad[bad0] = 1

    messages = _np.zeros(n, dtype=_np.int64) if count_messages else None
    message_bytes = _np.zeros(n, dtype=_np.int64) if count_messages else None
    first_msgs = _np.zeros(n, dtype=bool) if count_messages else None
    sym_len = _np.asarray([len(s) for s in casts[0].alphabet], dtype=_np.int64)

    for round_index in range(max_rounds):
        pu = u_flat.take(u_base + u_state * AA + s2u * A + w2u)
        ps = s_flat.take(s_base + s_state * AA + u2s * A + w2s)
        pw = w_flat.take(w_base + w_state * AA + u2w * A + s2w)
        pu, ub = _np.divmod(pu, A)
        nu, ua = _np.divmod(pu, A)
        ps, sb = _np.divmod(ps, A)
        ns, sa = _np.divmod(ps, A)
        pw, wb = _np.divmod(pw, A)
        nw, wa = _np.divmod(pw, A)

        if count_messages:
            assert messages is not None and message_bytes is not None
            assert first_msgs is not None
            for emitted in (ua, ub, sa, sb, wa, wb):
                sent = emitted != 0
                messages += sent
                message_bytes += sym_len[emitted]
                if round_index == 0:
                    first_msgs |= sent

        u2s, u2w = ua, ub
        s2u, s2w = sa, sb
        w2u, w2s = wa, wb
        u_state, s_state, w_state = nu, ns, nw

        bad = ~accept_flat.take(w_acc_base + w_state)
        bad_count += bad
        # Prefix index: initial state is t=1; the state after round r is
        # t = r + 2 (matching CompactReferee.judge's 1-based accounting).
        last_bad[bad] = round_index + 2

    total_prefixes = max_rounds + 1
    outcomes: List[TabularOutcome] = []
    for slot, cast in enumerate(casts):
        settle_round = int(total_prefixes * (1.0 - cast.settle_fraction))
        slot_last_bad = int(last_bad[slot])
        outcomes.append(
            TabularOutcome(
                achieved=slot_last_bad == 0 or slot_last_bad <= settle_round,
                rounds=max_rounds,
                bad_prefixes=int(bad_count[slot]),
                last_bad_round=slot_last_bad or None,
                messages=int(messages[slot]) if count_messages else 0,
                message_bytes=(
                    int(message_bytes[slot]) if count_messages else 0
                ),
                first_round_messages=(
                    bool(first_msgs[slot]) if count_messages else False
                ),
            )
        )
    return outcomes


def _dedupe(
    parties: Sequence[TabularParty],
) -> Tuple[List[int], List[TabularParty]]:
    """Map each slot to an index into the list of distinct tables."""
    indices: List[int] = []
    uniques: List[TabularParty] = []
    seen: Dict[TabularParty, int] = {}
    for party in parties:
        index = seen.get(party)
        if index is None:
            index = len(uniques)
            seen[party] = index
            uniques.append(party)
        indices.append(index)
    return indices, uniques


def _dedupe_keyed(
    pairs: Sequence[Tuple[TabularParty, Tuple[bool, ...]]],
) -> Tuple[List[int], List[Tuple[TabularParty, Tuple[bool, ...]]]]:
    """Dedupe (world tables, referee mask) pairs — both parts are hashable."""
    indices: List[int] = []
    uniques: List[Tuple[TabularParty, Tuple[bool, ...]]] = []
    seen: Dict[Tuple[TabularParty, Tuple[bool, ...]], int] = {}
    for pair in pairs:
        index = seen.get(pair)
        if index is None:
            index = len(uniques)
            seen[pair] = index
            uniques.append(pair)
        indices.append(index)
    return indices, uniques


def _stack(tables: Sequence[TabularParty], n_symbols: int) -> Tuple[Any, Any, Any]:
    """Stack distinct party tables into padded [table, S, A, A] arrays."""
    assert _np is not None
    max_states = max(t.n_states for t in tables)
    shape = (len(tables), max_states, n_symbols, n_symbols)
    next_state = _np.zeros(shape, dtype=_np.int64)
    out_a = _np.zeros(shape, dtype=_np.int64)
    out_b = _np.zeros(shape, dtype=_np.int64)
    for index, table in enumerate(tables):
        next_state[index, : table.n_states] = _np.asarray(
            table.next_state, dtype=_np.int64
        )
        out_a[index, : table.n_states] = _np.asarray(table.out_a, dtype=_np.int64)
        out_b[index, : table.n_states] = _np.asarray(table.out_b, dtype=_np.int64)
    return next_state, out_a, out_b
