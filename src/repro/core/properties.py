"""Empirical checkers for the paper's definitional properties.

The paper's Theorem 1 hypothesises sensing that is *safe* and *viable* for a
goal and server class.  Those properties quantify over executions; this
module checks them by exhaustive/randomised simulation over the finite
classes used in experiments, returning structured reports rather than bare
booleans so tests and benchmarks can show *which* pairing violated what.

Definitions implemented (paraphrasing Section 3):

* **Finite safety** — positive indications are only obtained on acceptable
  histories: whenever a user halts and sensing reads positive, the referee
  must accept.
* **Finite viability** — with every helpful server, *some* user strategy in
  the class halts with a positive indication (and thereby succeeds).
* **Compact safety** — when a pairing is *not* achieving the goal (bad
  prefixes keep occurring), negative indications keep occurring: a failing
  strategy cannot look good forever.
* **Compact viability** — with every helpful server, some user strategy
  eventually receives only positive indications while achieving the goal.

Also here: the *forgivingness* check (every finite partial history can be
extended to success), implemented as "after any junk prefix, a rescuer user
still achieves the goal".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.execution import run_execution
from repro.core.goals import CompactGoal, FiniteGoal, Goal
from repro.core.sensing import Sensing, incremental_sensing
from repro.core.strategy import ServerStrategy, UserStrategy
from repro.core.views import UserView


@dataclass(frozen=True)
class Violation:
    """One counterexample found by a property checker."""

    user_name: str
    server_name: str
    seed: int
    detail: str


@dataclass(frozen=True)
class PropertyReport:
    """Verdict of a property check, with counterexamples if any."""

    property_name: str
    holds: bool
    violations: Tuple[Violation, ...] = ()
    checked_runs: int = 0

    def __bool__(self) -> bool:
        return self.holds


def _indications_per_round(sensing: Sensing, view: UserView) -> List[bool]:
    """Sensing verdict on every prefix of the view (1-based lengths).

    Streams the records through an incremental-sensing monitor instead of
    rebuilding ``UserView(records[:t+1])`` per round — that copied a
    growing prefix every iteration, making a T-round check O(T²) before
    the sensing function even looked at it.  Library sensing evaluates in
    O(T) total here; custom sensing keeps its own ``indicate`` cost via
    the replay fallback, minus the per-prefix copies.
    """
    monitor = incremental_sensing(sensing)
    return [monitor.observe(record) for record in view]


def check_finite_safety(
    goal: FiniteGoal,
    sensing: Sensing,
    users: Sequence[UserStrategy],
    servers: Sequence[ServerStrategy],
    *,
    seeds: Sequence[int] = (0, 1, 2),
    max_rounds: int = 256,
) -> PropertyReport:
    """Check finite safety over all (user, server, seed) pairings.

    Violation: the user halted, sensing read positive on its final view, but
    the referee rejected the history.
    """
    violations: List[Violation] = []
    runs = 0
    for user in users:
        for server in servers:
            for seed in seeds:
                runs += 1
                execution = run_execution(
                    user, server, goal.world, max_rounds=max_rounds, seed=seed
                )
                if not execution.halted:
                    continue
                if not sensing.indicate(execution.user_view):
                    continue
                if not goal.evaluate(execution).achieved:
                    violations.append(
                        Violation(
                            user.name,
                            server.name,
                            seed,
                            "positive indication at halt on an unacceptable history",
                        )
                    )
    return PropertyReport(
        property_name="finite-safety",
        holds=not violations,
        violations=tuple(violations),
        checked_runs=runs,
    )


def check_finite_viability(
    goal: FiniteGoal,
    sensing: Sensing,
    user_class: Sequence[UserStrategy],
    helpful_servers: Sequence[ServerStrategy],
    *,
    seeds: Sequence[int] = (0, 1, 2),
    max_rounds: int = 256,
) -> PropertyReport:
    """Check finite viability against every (assumed helpful) server.

    Violation: some server admits no user in the class that halts with a
    positive indication on every seed.
    """
    violations: List[Violation] = []
    runs = 0
    for server in helpful_servers:
        witness_found = False
        for user in user_class:
            ok_all_seeds = True
            for seed in seeds:
                runs += 1
                execution = run_execution(
                    user, server, goal.world, max_rounds=max_rounds, seed=seed
                )
                if not (execution.halted and sensing.indicate(execution.user_view)):
                    ok_all_seeds = False
                    break
            if ok_all_seeds:
                witness_found = True
                break
        if not witness_found:
            violations.append(
                Violation(
                    "<class>",
                    server.name,
                    -1,
                    "no user in the class obtains a positive indication",
                )
            )
    return PropertyReport(
        property_name="finite-viability",
        holds=not violations,
        violations=tuple(violations),
        checked_runs=runs,
    )


def check_compact_safety(
    goal: CompactGoal,
    sensing: Sensing,
    users: Sequence[UserStrategy],
    servers: Sequence[ServerStrategy],
    *,
    seeds: Sequence[int] = (0, 1),
    horizon: int = 400,
) -> PropertyReport:
    """Check compact safety: failure must keep producing negative indications.

    Violation: the goal was not being achieved (a bad prefix occurred in the
    second half of the run) yet every indication in the second half was
    positive — the sensing would let a universal user stay on a failing
    strategy forever.
    """
    violations: List[Violation] = []
    runs = 0
    for user in users:
        for server in servers:
            for seed in seeds:
                runs += 1
                execution = run_execution(
                    user, server, goal.world, max_rounds=horizon, seed=seed
                )
                verdict = goal.referee.judge(execution)
                half = execution.rounds_executed // 2
                failing_late = (
                    verdict.last_bad_round is not None and verdict.last_bad_round > half
                )
                if not failing_late:
                    continue
                indications = _indications_per_round(sensing, execution.user_view)
                if all(indications[half:]):
                    violations.append(
                        Violation(
                            user.name,
                            server.name,
                            seed,
                            "goal failing late but sensing stayed positive",
                        )
                    )
    return PropertyReport(
        property_name="compact-safety",
        holds=not violations,
        violations=tuple(violations),
        checked_runs=runs,
    )


def check_compact_viability(
    goal: CompactGoal,
    sensing: Sensing,
    user_class: Sequence[UserStrategy],
    helpful_servers: Sequence[ServerStrategy],
    *,
    seeds: Sequence[int] = (0, 1),
    horizon: int = 400,
) -> PropertyReport:
    """Check compact viability against every (assumed helpful) server.

    Violation: some server admits no user whose indications are eventually
    all positive (over the second half of the run) while achieving the goal.
    """
    violations: List[Violation] = []
    runs = 0
    for server in helpful_servers:
        witness_found = False
        for user in user_class:
            ok_all_seeds = True
            for seed in seeds:
                runs += 1
                execution = run_execution(
                    user, server, goal.world, max_rounds=horizon, seed=seed
                )
                if not goal.evaluate(execution).achieved:
                    ok_all_seeds = False
                    break
                indications = _indications_per_round(sensing, execution.user_view)
                half = execution.rounds_executed // 2
                if not all(indications[half:]):
                    ok_all_seeds = False
                    break
            if ok_all_seeds:
                witness_found = True
                break
        if not witness_found:
            violations.append(
                Violation(
                    "<class>",
                    server.name,
                    -1,
                    "no user settles into all-positive indications",
                )
            )
    return PropertyReport(
        property_name="compact-viability",
        holds=not violations,
        violations=tuple(violations),
        checked_runs=runs,
    )


def check_forgiving(
    goal: Goal,
    rescuer: UserStrategy,
    junk_users: Sequence[UserStrategy],
    server: ServerStrategy,
    *,
    junk_rounds: Sequence[int] = (0, 3, 10),
    seeds: Sequence[int] = (0, 1),
    max_rounds: int = 512,
) -> PropertyReport:
    """Check forgivingness: success is reachable after any tested junk prefix.

    For each junk user and junk duration, runs the junk user for that many
    rounds and then hands control to ``rescuer`` (via
    :class:`repro.users.scripted.JunkThenUser` composition, imported lazily
    to avoid a package cycle); the goal must still be achieved.
    """
    from repro.users.scripted import JunkThenUser

    violations: List[Violation] = []
    runs = 0
    for junk in junk_users:
        for duration in junk_rounds:
            composite = JunkThenUser(junk=junk, then=rescuer, junk_rounds=duration)
            for seed in seeds:
                runs += 1
                execution = run_execution(
                    composite, server, goal.world, max_rounds=max_rounds, seed=seed
                )
                if not goal.evaluate(execution).achieved:
                    violations.append(
                        Violation(
                            composite.name,
                            server.name,
                            seed,
                            f"not recoverable after {duration} junk rounds",
                        )
                    )
    return PropertyReport(
        property_name="forgiving",
        holds=not violations,
        violations=tuple(violations),
        checked_runs=runs,
    )
