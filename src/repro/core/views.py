"""The user's local view of an execution.

Sensing functions (Section 3 of the paper) are "predicates of the history of
the portion of the system visible to the user" — the user sees its own
states and the messages it sent and received, *never* the server's or the
world's internal state.  :class:`UserView` packages exactly that surface, so
that a sensing function physically cannot depend on hidden information: the
type system enforces the paper's information constraint.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Iterator, List, Optional, Sequence

from repro.comm.messages import UserInbox, UserOutbox


@dataclass(frozen=True)
class ViewRecord:
    """What the user experienced during one round.

    ``state_before`` is the user's state entering the round; ``inbox`` what
    it read; ``outbox`` what it emitted; ``state_after`` the resulting state.
    """

    round_index: int
    state_before: Any
    inbox: UserInbox
    outbox: UserOutbox
    state_after: Any


class UserView:
    """An append-only sequence of :class:`ViewRecord`.

    The universal users maintain one view per *trial* (i.e., restarted from
    empty whenever they switch inner strategies), because a sensing verdict
    should judge the current strategy, not the wreckage of abandoned ones.
    The engine also maintains a whole-execution view for post-hoc analysis.
    """

    def __init__(self, records: Optional[Sequence[ViewRecord]] = None) -> None:
        self._records: List[ViewRecord] = list(records) if records else []

    def append(self, record: ViewRecord) -> None:
        """Add the latest round's record."""
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ViewRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> ViewRecord:
        return self._records[index]

    def __eq__(self, other: object) -> bool:
        """Structural equality: same rounds seen, same retained records.

        Views compare by content, not identity, so two executions of the
        same cast/seed have *equal* results — the property the batch and
        serve parity suites assert end to end.  Comparing ``len`` (total
        rounds, which for bounded views exceeds the retained count) keeps
        a bounded view distinct from a truncated full view.
        """
        if not isinstance(other, UserView):
            return NotImplemented
        return len(self) == len(other) and tuple(self._records) == tuple(
            other._records
        )

    __hash__ = None  # type: ignore[assignment]  # mutable container

    @property
    def records(self) -> Sequence[ViewRecord]:
        """Read-only access to the underlying records."""
        return tuple(self._records)

    def last(self) -> Optional[ViewRecord]:
        """The most recent record, or ``None`` for an empty view."""
        return self._records[-1] if self._records else None

    def messages_from_world(self) -> List[str]:
        """Every non-silent message the world sent the user, in order."""
        return [r.inbox.from_world for r in self._records if r.inbox.from_world]

    def messages_from_server(self) -> List[str]:
        """Every non-silent message the server sent the user, in order."""
        return [r.inbox.from_server for r in self._records if r.inbox.from_server]

    def messages_to_server(self) -> List[str]:
        """Every non-silent message the user sent the server, in order."""
        return [r.outbox.to_server for r in self._records if r.outbox.to_server]

    def messages_to_world(self) -> List[str]:
        """Every non-silent message the user sent the world, in order."""
        return [r.outbox.to_world for r in self._records if r.outbox.to_world]

    def tail(self, count: int) -> "UserView":
        """A view of only the last ``count`` rounds."""
        return UserView(self._records[-count:])

    def iter_reversed(self) -> Iterator[ViewRecord]:
        """Iterate newest-first without copying the record list."""
        return reversed(self._records)

    def last_world_message(self) -> Optional[str]:
        """The most recent non-silent message from the world, if any.

        Early-exits on the reverse scan — sensing functions are evaluated
        every round on a growing view, so this must not rebuild the full
        message list (that turns long executions quadratic).
        """
        for record in reversed(self._records):
            if record.inbox.from_world:
                return record.inbox.from_world
        return None

    def last_server_message(self) -> Optional[str]:
        """The most recent non-silent message from the server, if any."""
        for record in reversed(self._records):
            if record.inbox.from_server:
                return record.inbox.from_server
        return None


class BoundedUserView(UserView):
    """A :class:`UserView` that retains only the last ``window`` records.

    The metrics-only recording policy (see
    :class:`~repro.core.execution.RecordingPolicy`) uses this to stop a
    long execution from accumulating one :class:`ViewRecord` per round
    when nothing downstream will read the full history.  ``len`` still
    reports the *total* number of rounds seen — length-based sensing
    (grace windows, stall detectors) keeps working — while the record
    accessors answer over the retained window only.

    ``window=0`` stores nothing at all; callers use :meth:`advance` to
    tick the round count without even allocating a record.
    """

    def __init__(
        self, window: int, records: Optional[Sequence[ViewRecord]] = None
    ) -> None:
        if window < 0:
            raise ValueError(f"view window must be >= 0: {window}")
        self._window = window
        self._records: Deque[ViewRecord] = deque(records or (), maxlen=window)  # type: ignore[assignment]
        self._total = len(self._records)

    @property
    def window(self) -> int:
        """How many trailing records this view retains."""
        return self._window

    def append(self, record: ViewRecord) -> None:
        """Add the latest round's record, evicting the oldest past the window."""
        if self._window:
            self._records.append(record)
        self._total += 1

    def advance(self, rounds: int = 1) -> None:
        """Advance the round count without storing anything."""
        self._total += rounds

    def __len__(self) -> int:
        return self._total

    def tail(self, count: int) -> UserView:
        """A view of (up to) the last ``count`` *retained* rounds."""
        kept = list(self._records)
        return UserView(kept[-count:])
