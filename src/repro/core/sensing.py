"""Sensing: the user's feedback about its own progress.

Section 3 of the paper introduces *sensing* — "predicates of the history of
the portion of the system visible to the user" — as the resource that makes
universal communication possible.  A :class:`Sensing` object maps a
:class:`~repro.core.views.UserView` to a Boolean indication; ``True`` is a
*positive* indication (things look fine), ``False`` a *negative* one (the
current strategy is failing).

The value of a sensing function is captured by two properties, *safety* and
*viability*, defined relative to a goal and a server class; the empirical
checkers for those properties live in :mod:`repro.core.properties`.  This
module provides the interface plus combinators that concrete goals use to
assemble their sensing from world feedback.

Incremental evaluation
----------------------
``indicate`` is a predicate of the *whole* trial view, so calling it every
round costs O(len(view)) for sensing that scans — which turns a T-round
trial quadratic.  :meth:`Sensing.incremental` optionally returns a
stateful :class:`IncrementalSensing` monitor whose ``observe(record)``
consumes one new :class:`~repro.core.views.ViewRecord` at a time and
returns exactly what ``indicate`` would return on the prefix observed so
far — O(1) per round for every sensing shipped here.  Custom sensing
classes need not implement it: :func:`incremental_sensing` falls back to a
replay wrapper that accumulates the records and calls ``indicate``, so
behaviour is unchanged (only the asymptotics stay whatever the custom
``indicate`` costs).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

from repro.core.views import UserView, ViewRecord
from repro.obs.events import GraceSuppressed
from repro.obs.tracer import TracerLike, is_tracing


class IncrementalSensing:
    """A stateful, per-trial monitor equivalent to some :class:`Sensing`.

    ``observe`` must be fed every record of a trial view, in order, and
    returns the indication for the prefix seen so far.  Monitors are
    single-trial: start a fresh one (via :meth:`Sensing.incremental` or
    :func:`incremental_sensing`) whenever the view they mirror restarts.
    """

    def observe(self, record: ViewRecord) -> bool:
        """Consume one new round's record; return the current indication."""
        raise NotImplementedError

    def _state(self) -> Tuple[object, ...]:
        """Every slot value, MRO order — the monitor's structural content."""
        names: List[str] = []
        for klass in type(self).__mro__:
            names.extend(getattr(klass, "__slots__", ()))
        return tuple(getattr(self, name) for name in names)

    def __eq__(self, other: object) -> bool:
        """Structural equality: same monitor type, same slot contents.

        Universal-user states embed their monitors, and the serve/batch
        parity suites compare those states structurally — two runs of the
        same cast/seed must produce *equal* states, not merely equivalent
        ones.  Subclasses keep all state in ``__slots__``, so comparing
        slot tuples compares the full progress of the monitor.
        """
        if type(other) is not type(self):
            return NotImplemented
        return self._state() == other._state()

    __hash__ = None  # type: ignore[assignment]  # mutable monitor


class Sensing:
    """A Boolean feedback function over the user's local view."""

    def indicate(self, view: UserView) -> bool:
        """Return the indication for the given (trial-local) view."""
        raise NotImplementedError

    def incremental(self) -> Optional[IncrementalSensing]:
        """A fresh O(1)-per-round monitor, or ``None`` if unsupported.

        Implementations must guarantee that feeding a view's records to
        ``observe`` in order yields the same Booleans as calling
        ``indicate`` on each prefix.  Callers wanting a monitor
        unconditionally should use :func:`incremental_sensing`, which
        supplies the replay fallback.
        """
        return None

    def view_window(self) -> Optional[int]:
        """How many trailing records ``indicate`` inspects.

        ``None`` means the whole history may matter (the safe default);
        an integer ``w`` promises the verdict depends only on the last
        ``w`` records plus the view's *length*.  The metrics-only
        recording policy uses this to bound the engine's view retention.
        """
        return None

    @property
    def name(self) -> str:
        return type(self).__name__

    def negate(self) -> "Sensing":
        """The pointwise negation (used to build deliberately unsafe sensing)."""
        return _Negation(self)

    def __repr__(self) -> str:
        return f"<Sensing {self.name}>"


class _ReplayIncremental(IncrementalSensing):
    """Fallback monitor: accumulate records, re-ask ``indicate`` each round.

    Exactly as fast (or slow) as calling ``indicate`` on the growing view
    every round — which is what call sites did before the incremental
    protocol existed — so arbitrary custom sensing keeps its behaviour.
    """

    __slots__ = ("_sensing", "_view")

    def __init__(self, sensing: Sensing) -> None:
        self._sensing = sensing
        self._view = UserView()

    def observe(self, record: ViewRecord) -> bool:
        self._view.append(record)
        return self._sensing.indicate(self._view)


def incremental_sensing(sensing: Sensing) -> IncrementalSensing:
    """A fresh monitor for ``sensing``: native if offered, else replay."""
    return sensing.incremental() or _ReplayIncremental(sensing)


@dataclass(frozen=True)
class FunctionSensing(Sensing):
    """Adapts a plain callable into a :class:`Sensing`."""

    fn: Callable[[UserView], bool]
    label: str = "fn"

    @property
    def name(self) -> str:
        return self.label

    def indicate(self, view: UserView) -> bool:
        return bool(self.fn(view))


@dataclass(frozen=True)
class ConstantSensing(Sensing):
    """Always returns the same indication.

    ``ConstantSensing(True)`` is the degenerate, maximally *unsafe* sensing
    (never flags a failing strategy); ``ConstantSensing(False)`` is the
    maximally *non-viable* one (never endorses a working strategy).  Both
    appear in the ablation experiment E6.
    """

    value: bool

    @property
    def name(self) -> str:
        return "always-positive" if self.value else "always-negative"

    def indicate(self, view: UserView) -> bool:
        return self.value

    def incremental(self) -> IncrementalSensing:
        return _ConstantIncremental(self.value)

    def view_window(self) -> int:
        return 0


class _ConstantIncremental(IncrementalSensing):
    __slots__ = ("_value",)

    def __init__(self, value: bool) -> None:
        self._value = value

    def observe(self, record: ViewRecord) -> bool:
        return self._value


@dataclass(frozen=True)
class _Negation(Sensing):
    inner: Sensing

    @property
    def name(self) -> str:
        return f"not({self.inner.name})"

    def indicate(self, view: UserView) -> bool:
        return not self.inner.indicate(view)

    def incremental(self) -> Optional[IncrementalSensing]:
        monitor = self.inner.incremental()
        return None if monitor is None else _NegationIncremental(monitor)

    def view_window(self) -> Optional[int]:
        return self.inner.view_window()


class _NegationIncremental(IncrementalSensing):
    __slots__ = ("_inner",)

    def __init__(self, inner: IncrementalSensing) -> None:
        self._inner = inner

    def observe(self, record: ViewRecord) -> bool:
        return not self._inner.observe(record)


@dataclass(frozen=True)
class LastWorldMessageSensing(Sensing):
    """Judges the most recent non-silent message from the world.

    Many goals route ground-truth feedback through the world (the printer
    reports what it printed; the control world scores the last action).
    ``default`` is the indication used before any world message arrives —
    positive by default so a strategy is not condemned before it acted.
    """

    predicate: Callable[[str], bool]
    default: bool = True
    label: str = "last-world-msg"

    @property
    def name(self) -> str:
        return self.label

    def indicate(self, view: UserView) -> bool:
        message = view.last_world_message()
        if message is None:
            return self.default
        return bool(self.predicate(message))

    def incremental(self) -> IncrementalSensing:
        return _LastWorldMessageIncremental(self.predicate, self.default)


class _LastWorldMessageIncremental(IncrementalSensing):
    """Tracks the latest world message — O(1) where ``indicate`` rescans."""

    __slots__ = ("_predicate", "_verdict")

    def __init__(self, predicate: Callable[[str], bool], default: bool) -> None:
        self._predicate = predicate
        self._verdict = default

    def observe(self, record: ViewRecord) -> bool:
        message = record.inbox.from_world
        if message:
            self._verdict = bool(self._predicate(message))
        return self._verdict


@dataclass(frozen=True)
class GraceSensing(Sensing):
    """Wraps another sensing with an initial grace period.

    During the first ``grace_rounds`` of a trial the indication is positive
    regardless of the inner sensing; afterwards the inner verdict applies.
    Universal users need this when feedback is delayed by the two-round
    message latency of the synchronous model — without a grace period they
    would condemn every strategy before its first action could possibly be
    scored.

    When a :mod:`repro.obs` tracer is attached (``with_tracer``), each
    round where the grace window overrides a *negative* inner verdict
    emits a :class:`~repro.obs.events.GraceSuppressed` event — the exact
    feedback the grace ablation (E6) gives up.  The inner sensing is only
    consulted early when tracing, which is sound because sensing functions
    are pure predicates of the view.
    """

    inner: Sensing
    grace_rounds: int = 4
    tracer: TracerLike = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.grace_rounds < 0:
            raise ValueError(f"grace_rounds must be >= 0: {self.grace_rounds}")

    @property
    def name(self) -> str:
        return f"grace({self.grace_rounds},{self.inner.name})"

    def with_tracer(self, tracer: TracerLike) -> "GraceSensing":
        """A copy of this sensing reporting suppressions to ``tracer``."""
        return replace(self, tracer=tracer)

    def indicate(self, view: UserView) -> bool:
        if len(view) <= self.grace_rounds:
            if is_tracing(self.tracer) and not self.inner.indicate(view):
                self.tracer.emit(
                    GraceSuppressed(
                        round_index=len(view) - 1,
                        grace_rounds=self.grace_rounds,
                    )
                )
            return True
        return self.inner.indicate(view)

    def incremental(self) -> IncrementalSensing:
        # The inner monitor must see every record to stay in sync, so the
        # replay fallback is fine here: it costs what the plain per-round
        # ``indicate`` loop cost before.
        return _GraceIncremental(self, incremental_sensing(self.inner))

    def view_window(self) -> Optional[int]:
        return self.inner.view_window()


class _GraceIncremental(IncrementalSensing):
    """Counts rounds itself instead of re-measuring ``len(view)``.

    The inner monitor is advanced every round — including during grace,
    where the serial path only consults the inner sensing when tracing.
    Sensing functions are pure predicates of the view, so the verdicts
    (and any :class:`GraceSuppressed` events) are identical.
    """

    __slots__ = ("_sensing", "_inner", "_seen")

    def __init__(self, sensing: "GraceSensing", inner: IncrementalSensing) -> None:
        self._sensing = sensing
        self._inner = inner
        self._seen = 0

    def observe(self, record: ViewRecord) -> bool:
        self._seen += 1
        verdict = self._inner.observe(record)
        if self._seen <= self._sensing.grace_rounds:
            if not verdict and is_tracing(self._sensing.tracer):
                self._sensing.tracer.emit(
                    GraceSuppressed(
                        round_index=self._seen - 1,
                        grace_rounds=self._sensing.grace_rounds,
                    )
                )
            return True
        return verdict


@dataclass(frozen=True)
class AllOfSensing(Sensing):
    """Positive iff every component is positive."""

    parts: Tuple[Sensing, ...]

    @property
    def name(self) -> str:
        return "all(" + ",".join(p.name for p in self.parts) + ")"

    def indicate(self, view: UserView) -> bool:
        return all(part.indicate(view) for part in self.parts)

    def incremental(self) -> IncrementalSensing:
        return _CombinatorIncremental(
            [incremental_sensing(p) for p in self.parts], want_all=True
        )

    def view_window(self) -> Optional[int]:
        return _combined_window(self.parts)


@dataclass(frozen=True)
class AnyOfSensing(Sensing):
    """Positive iff at least one component is positive."""

    parts: Tuple[Sensing, ...]

    @property
    def name(self) -> str:
        return "any(" + ",".join(p.name for p in self.parts) + ")"

    def indicate(self, view: UserView) -> bool:
        return any(part.indicate(view) for part in self.parts)

    def incremental(self) -> IncrementalSensing:
        return _CombinatorIncremental(
            [incremental_sensing(p) for p in self.parts], want_all=False
        )

    def view_window(self) -> Optional[int]:
        return _combined_window(self.parts)


def _combined_window(parts: Tuple[Sensing, ...]) -> Optional[int]:
    """The widest component window (None as soon as any part is unbounded)."""
    widest = 0
    for part in parts:
        window = part.view_window()
        if window is None:
            return None
        widest = max(widest, window)
    return widest


class _CombinatorIncremental(IncrementalSensing):
    """Advances *every* component monitor, then combines.

    No short-circuiting — each component's state must track the full
    record stream; components are pure so the combined verdict matches
    the short-circuiting serial evaluation.
    """

    __slots__ = ("_monitors", "_want_all")

    def __init__(self, monitors: List[IncrementalSensing], want_all: bool) -> None:
        self._monitors = monitors
        self._want_all = want_all

    def observe(self, record: ViewRecord) -> bool:
        verdicts = [monitor.observe(record) for monitor in self._monitors]
        return all(verdicts) if self._want_all else any(verdicts)


@dataclass(frozen=True)
class NoRecentProgressSensing(Sensing):
    """Negative when the world has been silent for too long.

    A weak, generic sensing usable when the world offers no semantic
    feedback: it only detects *stalls*.  It is safe for goals where any
    progress is reflected in world chatter, and it is the best one can do in
    the feedback-free printer variant of experiment E9 — where it is
    provably not viable, illustrating why Theorem 1's hypotheses matter.
    """

    stall_rounds: int = 8

    @property
    def name(self) -> str:
        return f"no-stall({self.stall_rounds})"

    def indicate(self, view: UserView) -> bool:
        if len(view) < self.stall_rounds:
            return True
        recent = view.tail(self.stall_rounds)
        return any(r.inbox.from_world or r.inbox.from_server for r in recent)

    def incremental(self) -> IncrementalSensing:
        return _StallIncremental(self.stall_rounds)

    def view_window(self) -> int:
        return self.stall_rounds


class _StallIncremental(IncrementalSensing):
    """Remembers the last active round — O(1) where ``indicate`` rescans.

    Positive iff fewer than ``stall_rounds`` rounds have passed since the
    last inbound message (with round 0 counting as activity), which is
    precisely the windowed scan's verdict on every prefix length.
    """

    __slots__ = ("_stall_rounds", "_rounds", "_last_activity")

    def __init__(self, stall_rounds: int) -> None:
        self._stall_rounds = stall_rounds
        self._rounds = 0
        self._last_activity = 0

    def observe(self, record: ViewRecord) -> bool:
        self._rounds += 1
        if record.inbox.from_world or record.inbox.from_server:
            self._last_activity = self._rounds
        return self._rounds - self._last_activity < self._stall_rounds
