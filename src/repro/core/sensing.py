"""Sensing: the user's feedback about its own progress.

Section 3 of the paper introduces *sensing* — "predicates of the history of
the portion of the system visible to the user" — as the resource that makes
universal communication possible.  A :class:`Sensing` object maps a
:class:`~repro.core.views.UserView` to a Boolean indication; ``True`` is a
*positive* indication (things look fine), ``False`` a *negative* one (the
current strategy is failing).

The value of a sensing function is captured by two properties, *safety* and
*viability*, defined relative to a goal and a server class; the empirical
checkers for those properties live in :mod:`repro.core.properties`.  This
module provides the interface plus combinators that concrete goals use to
assemble their sensing from world feedback.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Tuple

from repro.core.views import UserView
from repro.obs.events import GraceSuppressed
from repro.obs.tracer import TracerLike, is_tracing


class Sensing:
    """A Boolean feedback function over the user's local view."""

    def indicate(self, view: UserView) -> bool:
        """Return the indication for the given (trial-local) view."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__

    def negate(self) -> "Sensing":
        """The pointwise negation (used to build deliberately unsafe sensing)."""
        return _Negation(self)

    def __repr__(self) -> str:
        return f"<Sensing {self.name}>"


@dataclass(frozen=True)
class FunctionSensing(Sensing):
    """Adapts a plain callable into a :class:`Sensing`."""

    fn: Callable[[UserView], bool]
    label: str = "fn"

    @property
    def name(self) -> str:
        return self.label

    def indicate(self, view: UserView) -> bool:
        return bool(self.fn(view))


@dataclass(frozen=True)
class ConstantSensing(Sensing):
    """Always returns the same indication.

    ``ConstantSensing(True)`` is the degenerate, maximally *unsafe* sensing
    (never flags a failing strategy); ``ConstantSensing(False)`` is the
    maximally *non-viable* one (never endorses a working strategy).  Both
    appear in the ablation experiment E6.
    """

    value: bool

    @property
    def name(self) -> str:
        return "always-positive" if self.value else "always-negative"

    def indicate(self, view: UserView) -> bool:
        return self.value


@dataclass(frozen=True)
class _Negation(Sensing):
    inner: Sensing

    @property
    def name(self) -> str:
        return f"not({self.inner.name})"

    def indicate(self, view: UserView) -> bool:
        return not self.inner.indicate(view)


@dataclass(frozen=True)
class LastWorldMessageSensing(Sensing):
    """Judges the most recent non-silent message from the world.

    Many goals route ground-truth feedback through the world (the printer
    reports what it printed; the control world scores the last action).
    ``default`` is the indication used before any world message arrives —
    positive by default so a strategy is not condemned before it acted.
    """

    predicate: Callable[[str], bool]
    default: bool = True
    label: str = "last-world-msg"

    @property
    def name(self) -> str:
        return self.label

    def indicate(self, view: UserView) -> bool:
        message = view.last_world_message()
        if message is None:
            return self.default
        return bool(self.predicate(message))


@dataclass(frozen=True)
class GraceSensing(Sensing):
    """Wraps another sensing with an initial grace period.

    During the first ``grace_rounds`` of a trial the indication is positive
    regardless of the inner sensing; afterwards the inner verdict applies.
    Universal users need this when feedback is delayed by the two-round
    message latency of the synchronous model — without a grace period they
    would condemn every strategy before its first action could possibly be
    scored.

    When a :mod:`repro.obs` tracer is attached (``with_tracer``), each
    round where the grace window overrides a *negative* inner verdict
    emits a :class:`~repro.obs.events.GraceSuppressed` event — the exact
    feedback the grace ablation (E6) gives up.  The inner sensing is only
    consulted early when tracing, which is sound because sensing functions
    are pure predicates of the view.
    """

    inner: Sensing
    grace_rounds: int = 4
    tracer: TracerLike = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.grace_rounds < 0:
            raise ValueError(f"grace_rounds must be >= 0: {self.grace_rounds}")

    @property
    def name(self) -> str:
        return f"grace({self.grace_rounds},{self.inner.name})"

    def with_tracer(self, tracer: TracerLike) -> "GraceSensing":
        """A copy of this sensing reporting suppressions to ``tracer``."""
        return replace(self, tracer=tracer)

    def indicate(self, view: UserView) -> bool:
        if len(view) <= self.grace_rounds:
            if is_tracing(self.tracer) and not self.inner.indicate(view):
                self.tracer.emit(
                    GraceSuppressed(
                        round_index=len(view) - 1,
                        grace_rounds=self.grace_rounds,
                    )
                )
            return True
        return self.inner.indicate(view)


@dataclass(frozen=True)
class AllOfSensing(Sensing):
    """Positive iff every component is positive."""

    parts: Tuple[Sensing, ...]

    @property
    def name(self) -> str:
        return "all(" + ",".join(p.name for p in self.parts) + ")"

    def indicate(self, view: UserView) -> bool:
        return all(part.indicate(view) for part in self.parts)


@dataclass(frozen=True)
class AnyOfSensing(Sensing):
    """Positive iff at least one component is positive."""

    parts: Tuple[Sensing, ...]

    @property
    def name(self) -> str:
        return "any(" + ",".join(p.name for p in self.parts) + ")"

    def indicate(self, view: UserView) -> bool:
        return any(part.indicate(view) for part in self.parts)


@dataclass(frozen=True)
class NoRecentProgressSensing(Sensing):
    """Negative when the world has been silent for too long.

    A weak, generic sensing usable when the world offers no semantic
    feedback: it only detects *stalls*.  It is safe for goals where any
    progress is reflected in world chatter, and it is the best one can do in
    the feedback-free printer variant of experiment E9 — where it is
    provably not viable, illustrating why Theorem 1's hypotheses matter.
    """

    stall_rounds: int = 8

    @property
    def name(self) -> str:
        return f"no-stall({self.stall_rounds})"

    def indicate(self, view: UserView) -> bool:
        if len(view) < self.stall_rounds:
            return True
        recent = view.tail(self.stall_rounds)
        return any(r.inbox.from_world or r.inbox.from_server for r in recent)
