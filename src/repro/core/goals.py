"""Goals of communication: a world strategy plus a referee.

"To fix a goal of communication, we take the world's strategy as fixed, and
fix a set of acceptable sequences of world states" (Section 2).  A
:class:`FiniteGoal` or :class:`CompactGoal` bundles exactly those two
ingredients, plus an :meth:`evaluate` method that runs the referee over an
execution and returns a uniform :class:`GoalOutcome`.

Non-determinism of the world (footnote 2 of the paper) is handled one level
up: an experiment quantifies over a *family* of goals sharing a referee but
differing in the world's drawn configuration; the probabilistic part of the
world lives in ``world.initial_state(rng)``.

Forgiving goals
---------------
The paper restricts attention to *forgiving* goals: every finite partial
history can be extended to a successful one.  Forgivingness is a semantic
property of the world+referee pair and cannot be decided generically, so
each concrete world in :mod:`repro.worlds` documents why its goals are
forgiving and ships a ``recovery`` test; the flag here is declarative
metadata that the universal users may sanity-check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.execution import ExecutionResult
from repro.core.referees import CompactReferee, CompactVerdict, FiniteReferee
from repro.core.strategy import WorldStrategy


@dataclass(frozen=True)
class GoalOutcome:
    """Uniform verdict for one execution against one goal.

    ``achieved`` is the headline answer.  For compact goals it is the
    *empirical* reading ("the bad prefixes stopped early enough"); the raw
    prefix accounting is kept in ``compact_verdict`` so analyses can apply
    stricter or looser settle criteria after the fact.
    """

    achieved: bool
    halted: bool
    rounds: int
    user_output: Optional[str] = None
    compact_verdict: Optional[CompactVerdict] = None
    note: str = ""


@dataclass(frozen=True)
class FiniteGoal:
    """A finite goal: the user must halt and the referee judges the history."""

    name: str
    world: WorldStrategy
    referee: FiniteReferee
    forgiving: bool = True

    @property
    def is_compact(self) -> bool:
        return False

    def evaluate(self, execution: ExecutionResult) -> GoalOutcome:
        """Judge one finished execution."""
        achieved = execution.halted and self.referee.accepts(execution)
        note = "" if execution.halted else "user never halted"
        return GoalOutcome(
            achieved=achieved,
            halted=execution.halted,
            rounds=execution.rounds_executed,
            user_output=execution.user_output,
            note=note,
        )


@dataclass(frozen=True)
class CompactGoal:
    """A compact goal: infinite execution, finitely many bad prefixes.

    ``settle_fraction`` defines the empirical horizon criterion used by
    :meth:`evaluate`: the goal counts as achieved when no prefix in the
    final ``settle_fraction`` of the run was unacceptable.  The default of
    0.5 demands a long clean tail, which makes false positives (a user that
    merely got lucky late) unlikely at the horizons the experiments use.
    """

    name: str
    world: WorldStrategy
    referee: CompactReferee
    forgiving: bool = True
    settle_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.settle_fraction < 1.0:
            raise ValueError(f"settle_fraction must be in (0, 1): {self.settle_fraction}")

    @property
    def is_compact(self) -> bool:
        return True

    def evaluate(self, execution: ExecutionResult) -> GoalOutcome:
        """Judge one finite run as a stand-in for the infinite execution."""
        verdict = self.referee.judge(execution)
        horizon = verdict.total_prefixes
        settle_round = int(horizon * (1.0 - self.settle_fraction))
        achieved = verdict.settled_since(settle_round)
        note = ""
        if not achieved and verdict.last_bad_round is not None:
            note = f"bad prefix at round {verdict.last_bad_round} of {horizon}"
        return GoalOutcome(
            achieved=achieved,
            halted=execution.halted,
            rounds=execution.rounds_executed,
            user_output=execution.user_output,
            compact_verdict=verdict,
            note=note,
        )


#: Either flavour of goal; most engine-side helpers accept both.
Goal = Union[FiniteGoal, CompactGoal]
