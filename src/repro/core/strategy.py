"""Strategies: the paper's model of communicating entities.

Section 2 of the paper describes each party by a *strategy* that maps an
internal state and an incoming message profile to (a distribution over) a
new state and an outgoing message profile.  :class:`Strategy` is the direct
transliteration: ``step(state, inbox, rng) -> (state, outbox)``, where the
``rng`` argument carries the randomness (a strategy that ignores it is
deterministic).

Role-specific subclasses (:class:`UserStrategy`, :class:`ServerStrategy`,
:class:`WorldStrategy`) fix the inbox/outbox types; the synchronous engine
in :mod:`repro.core.execution` drives one of each.

Design notes
------------
* States are opaque to the engine.  Strategies may use any hashable or
  non-hashable value; the engine only threads them through.  Immutable
  states (tuples, frozen dataclasses) are strongly encouraged — the
  universal users *simulate* inner strategies and rely on states not being
  mutated behind their back.
* ``initial_state(rng)`` performs the probabilistic part of initialisation.
  The paper's *non-deterministic* choice (footnote 2: "the world makes a
  single non-deterministic choice of a standard probabilistic strategy") is
  modelled one level up: experiments quantify over a *class* of world
  strategies (see :class:`repro.core.goals.Goal`), and likewise the
  adversarial choice of server is a quantification over a server class.
"""

from __future__ import annotations

import random
from typing import Any, Tuple

from repro.comm.messages import (
    ServerInbox,
    ServerOutbox,
    UserInbox,
    UserOutbox,
    WorldInbox,
    WorldOutbox,
)

State = Any


class Strategy:
    """Abstract strategy: ``(state, inbox, rng) -> (state, outbox)``."""

    def initial_state(self, rng: random.Random) -> State:
        """Draw the strategy's initial internal state."""
        raise NotImplementedError

    def step(self, state: State, inbox: Any, rng: random.Random) -> Tuple[State, Any]:
        """Consume one inbox; return the new state and this round's outbox."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        """Identifier used in experiment tables; defaults to the class name."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class UserStrategy(Strategy):
    """A strategy playing the *user* role.

    ``step`` receives a :class:`~repro.comm.messages.UserInbox` and must
    return a :class:`~repro.comm.messages.UserOutbox`.  Setting
    ``outbox.halt`` ends the execution (finite goals); ``outbox.output``
    carries the final result the referee will inspect.
    """

    def step(
        self, state: State, inbox: UserInbox, rng: random.Random
    ) -> Tuple[State, UserOutbox]:
        raise NotImplementedError


class ServerStrategy(Strategy):
    """A strategy playing the *server* role."""

    def step(
        self, state: State, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[State, ServerOutbox]:
        raise NotImplementedError


class WorldStrategy(Strategy):
    """A strategy playing the *world* role.

    The world is the third entity of the model — "a hypothetical referee,
    the rest of the system, or the environment" — whose state sequence
    *defines* goal achievement.  The engine therefore records every world
    state; world strategies should keep states cheap to copy and compare.
    """

    def step(
        self, state: State, inbox: WorldInbox, rng: random.Random
    ) -> Tuple[State, WorldOutbox]:
        raise NotImplementedError


class StatelessUser(UserStrategy):
    """Helper base for users whose behaviour depends only on the inbox.

    Subclasses override :meth:`react`; the state is a round counter, which
    is enough for simple scripted behaviours and keeps tests terse.
    """

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: UserInbox, rng: random.Random
    ) -> Tuple[int, UserOutbox]:
        return state + 1, self.react(state, inbox, rng)

    def react(self, round_index: int, inbox: UserInbox, rng: random.Random) -> UserOutbox:
        """Produce this round's outbox from the round number and inbox."""
        raise NotImplementedError


class SilentUser(StatelessUser):
    """A user that never says anything and never halts (a useful null case)."""

    def react(self, round_index: int, inbox: UserInbox, rng: random.Random) -> UserOutbox:
        return UserOutbox()


class SilentServer(ServerStrategy):
    """A server that never says anything (the unhelpful extreme)."""

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[int, ServerOutbox]:
        return state + 1, ServerOutbox()
