"""Structural interfaces (:class:`typing.Protocol`) for the core contracts.

Every extension point of the engine was historically duck-typed, with
"Like" stub classes (``FaultyChannelLike``, ``SweepExecutorLike``)
documenting the shape but checking nothing.  These Protocols make the
shapes *checkable*: ``mypy --strict`` verifies every implementation and
every call site, without forcing third-party strategies, sensing, or
executors to inherit from anything — the paper quantifies over strategy
*classes*, so the library must accept any object with the right
behaviour, not any object with the right ancestor.

The runtime contracts these shapes carry (determinism, purity,
statelessness) cannot be expressed in types; they are enforced by
``repro.lint`` (rules RL001–RL005, see ``docs/STATIC_ANALYSIS.md``) and
by the dynamic parity suites.  Protocols and lint rules are two walls
around the same invariants.
"""

from __future__ import annotations

import random
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

if TYPE_CHECKING:
    from repro.core.views import UserView, ViewRecord
    from repro.obs.events import Event


@runtime_checkable
class StrategyLike(Protocol):
    """Anything the engine can drive: ``(state, inbox, rng) -> (state, outbox)``.

    The concrete base classes in :mod:`repro.core.strategy` implement
    this; the engine and the universal users only ever rely on this
    surface.  ``step`` must not mutate the receiver (rule RL002) and may
    draw randomness only from ``rng`` (rule RL001).
    """

    def initial_state(self, rng: random.Random) -> Any: ...

    def step(self, state: Any, inbox: Any, rng: random.Random) -> Tuple[Any, Any]: ...

    @property
    def name(self) -> str: ...


@runtime_checkable
class SensingLike(Protocol):
    """A Boolean predicate of the user's trial-local view (rule RL003)."""

    def indicate(self, view: "UserView") -> bool: ...

    def incremental(self) -> Optional["IncrementalSensingLike"]: ...

    def view_window(self) -> Optional[int]: ...

    @property
    def name(self) -> str: ...


@runtime_checkable
class IncrementalSensingLike(Protocol):
    """A per-trial monitor equivalent to some :class:`SensingLike`."""

    def observe(self, record: "ViewRecord") -> bool: ...


#: A bare callable usable as sensing via ``FunctionSensing`` — must be a
#: module-level function for process-pool sweeps (rule RL004).
SensingPredicate = Callable[["UserView"], bool]


@runtime_checkable
class TracerProtocol(Protocol):
    """What instrumented code needs from a tracer (see ``repro.obs``)."""

    enabled: bool

    def emit(self, event: "Event") -> None: ...

    def close(self) -> None: ...


@runtime_checkable
class ChannelRunLike(Protocol):
    """Per-execution state of a fault channel: consulted once per round."""

    def apply(
        self, round_index: int, user_to_server: str, server_to_user: str
    ) -> Tuple[str, str]: ...


@runtime_checkable
class ChannelLike(Protocol):
    """An unreliable user↔server link accepted by ``run_execution(channel=)``.

    ``start`` must be non-mutating (a channel is shared across sweep
    cells) and the run it returns must be a pure function of ``seed`` —
    the engine derives that seed from the master seed so fault traces
    replay exactly.
    """

    def start(self, seed: int, tracer: Any = None) -> ChannelRunLike: ...


@runtime_checkable
class ScheduleRunLike(Protocol):
    """Per-execution state of a fault schedule: ``fires`` per round."""

    def fires(self, round_index: int) -> bool: ...


@runtime_checkable
class FaultScheduleLike(Protocol):
    """A picklable, immutable description of *when* faults fire."""

    def start(self, seed: int) -> ScheduleRunLike: ...

    @property
    def name(self) -> str: ...


__all__ = [
    "ChannelLike",
    "ChannelRunLike",
    "FaultScheduleLike",
    "IncrementalSensingLike",
    "ScheduleRunLike",
    "SensingLike",
    "SensingPredicate",
    "StrategyLike",
    "TracerProtocol",
]
