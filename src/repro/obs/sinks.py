"""Event sinks: where a trace goes.

A sink consumes the typed event stream; the tracer does not care which.
Three implementations cover the reproduction's needs:

* :class:`NullSink` — drops everything (counters still accumulate);
* :class:`MemorySink` — a bounded ring buffer for tests, examples, and
  interactive inspection;
* :class:`JsonlSink` — one JSON object per line with deterministic field
  ordering (``kind`` first, then dataclass-field order), so traces of the
  same seeded run are byte-identical and diffable.

:func:`read_jsonl` inverts :class:`JsonlSink` back into typed events.

Trace files are schema-versioned: the first line a :class:`JsonlSink`
writes is a header object ``{"trace_schema": 1, "trace_schema_minor": 1,
...}`` (never an event), and the replay path refuses schema majors it
does not understand with a :class:`TraceSchemaError` rather than
misparsing the stream.  Headerless files (pre-versioning traces,
hand-built fixtures) still read fine.  The minor revision is additive
evidence: minor >= 1 traces carry the fields ``repro.obs.certify`` needs
to re-derive the run's claims; older traces still read but are reported
as uncertifiable.

:func:`read_trace` materialises the whole event list; :func:`iter_trace`
streams it (header eagerly, events lazily), and
:func:`iter_trace_numbered` additionally yields each event's 1-based file
line number so downstream diagnostics can anchor to the exact line.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import (
    Any,
    Deque,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
    TypeVar,
    Union,
)

from repro.obs.events import Event, event_from_dict

E = TypeVar("E", bound=Event)

#: The trace-file schema major this build writes and understands.
TRACE_SCHEMA = 1

#: The additive minor revision.  Minor 1 adds the certificate evidence:
#: ``rng_digest`` on ``execution-started``, the ``goal-verdict`` event,
#: the ``proof-*`` events, and the channel fault spec in the header.
TRACE_SCHEMA_MINOR = 1


class TraceSchemaError(ValueError):
    """A trace file cannot be interpreted by this build.

    Raised both for schema declarations this build does not understand and
    for malformed lines; ``line`` carries the 1-based file line number when
    the error is anchored to one.
    """

    def __init__(self, message: str, *, line: Optional[int] = None) -> None:
        super().__init__(message)
        self.line = line


class Sink:
    """Consumer of a trace's event stream."""

    def emit(self, event: Event) -> None:
        """Accept one event."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent; no-op by default)."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullSink(Sink):
    """Discards every event."""

    def emit(self, event: Event) -> None:
        pass


class MemorySink(Sink):
    """Keeps the last ``capacity`` events in a ring buffer.

    ``capacity=None`` keeps everything — fine for bounded runs, the usual
    mode in tests; give long-lived processes a bound.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self._events: Deque[Event] = deque(maxlen=capacity)

    def emit(self, event: Event) -> None:
        self._events.append(event)

    @property
    def events(self) -> List[Event]:
        """The buffered events, oldest first."""
        return list(self._events)

    def of_kind(self, event_type: Type[E]) -> List[E]:
        """The buffered events that are instances of ``event_type``."""
        return [e for e in self._events if isinstance(e, event_type)]

    def clear(self) -> None:
        """Forget everything buffered so far."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)


class JsonlSink(Sink):
    """Writes one compact JSON object per event to a file.

    Field order is deterministic (insertion order of
    :meth:`~repro.obs.events.Event.to_dict`), separators are fixed, and
    nothing machine-dependent (timestamps, pids) is ever written — two
    traces of the same seeded run diff clean.

    The first line is the schema header (``{"trace_schema": 1}`` plus any
    ``header`` extras, which must themselves be deterministic values for
    the byte-identity guarantee to hold).
    """

    def __init__(
        self,
        path: Union[str, Path],
        header: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.path = Path(path)
        self._file = self.path.open("w", encoding="utf-8")
        head: Dict[str, Any] = {
            "trace_schema": TRACE_SCHEMA,
            "trace_schema_minor": TRACE_SCHEMA_MINOR,
        }
        for key, value in (header or {}).items():
            if key not in head:
                head[key] = value
        self._file.write(json.dumps(head, separators=(",", ":")))
        self._file.write("\n")

    def emit(self, event: Event) -> None:
        self._file.write(json.dumps(event.to_dict(), separators=(",", ":")))
        self._file.write("\n")

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


def _check_trace_header(header: Mapping[str, Any], path: Path) -> None:
    """Reject schema majors this build does not understand."""
    declared = header.get("trace_schema")
    if not isinstance(declared, int) or declared <= 0:
        raise TraceSchemaError(
            f"{path}: malformed trace_schema header value {declared!r}"
        )
    if declared > TRACE_SCHEMA:
        raise TraceSchemaError(
            f"{path}: trace_schema {declared} is newer than the supported "
            f"major {TRACE_SCHEMA}; re-read it with a matching repro build"
        )


def _parse_record(text: str, path: Path, number: int) -> Any:
    """One line of a trace file → parsed JSON, or a line-anchored error."""
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceSchemaError(
            f"{path}:{number}: not valid JSON: {exc.msg}", line=number
        ) from exc


def _parse_event(record: Any, path: Path, number: int) -> Event:
    """One parsed record → a typed event, or a line-anchored error."""
    if not isinstance(record, dict):
        raise TraceSchemaError(
            f"{path}:{number}: event line is not a JSON object", line=number
        )
    try:
        return event_from_dict(record)
    except KeyError as exc:
        raise TraceSchemaError(
            f"{path}:{number}: unknown or missing event kind "
            f"{exc.args[0]!r}",
            line=number,
        ) from exc
    except TypeError as exc:
        raise TraceSchemaError(
            f"{path}:{number}: malformed event payload: {exc}", line=number
        ) from exc


def iter_trace_numbered(
    path: Union[str, Path],
) -> Tuple[Dict[str, Any], Iterator[Tuple[int, Event]]]:
    """Stream a trace as ``(header, iterator of (line_number, event))``.

    The header line is consumed eagerly — schema errors raise before this
    returns — while events parse lazily as the iterator is drained, each
    paired with its 1-based file line number.  Malformed lines raise
    :class:`TraceSchemaError` anchored to that line; the file handle is
    closed when the iterator is exhausted or garbage-collected.
    """
    resolved = Path(path)
    handle = resolved.open("r", encoding="utf-8")
    header: Dict[str, Any] = {}
    first_event: Optional[Tuple[int, Event]] = None
    consumed = 0
    try:
        for line in handle:
            consumed += 1
            text = line.strip()
            if not text:
                continue
            record = _parse_record(text, resolved, consumed)
            if isinstance(record, dict) and "kind" not in record:
                _check_trace_header(record, resolved)
                header = record
            else:
                first_event = (consumed, _parse_event(record, resolved, consumed))
            break
    except BaseException:
        handle.close()
        raise

    def events(start: int) -> Iterator[Tuple[int, Event]]:
        with handle:
            if first_event is not None:
                yield first_event
            number = start
            for line in handle:
                number += 1
                text = line.strip()
                if not text:
                    continue
                record = _parse_record(text, resolved, number)
                yield number, _parse_event(record, resolved, number)

    return header, events(consumed)


def iter_trace(
    path: Union[str, Path],
) -> Tuple[Dict[str, Any], Iterator[Event]]:
    """Stream a trace as ``(header, event iterator)``.

    Like :func:`read_trace` but the events parse lazily — large traces are
    never materialised as a full list.  The header is ``{}`` for
    pre-versioning files whose first line is already an event.
    """
    header, numbered = iter_trace_numbered(path)
    return header, (event for _, event in numbered)


def read_trace(path: Union[str, Path]) -> Tuple[Dict[str, Any], List[Event]]:
    """Parse a :class:`JsonlSink` file into ``(header, events)``.

    The header is ``{}`` for pre-versioning files whose first line is
    already an event (anything carrying a ``kind`` tag).  Raises
    :class:`TraceSchemaError` on an unsupported or malformed schema
    declaration and on lines that are not valid events, anchored to the
    offending file line — a trace either round-trips exactly or fails
    loudly.
    """
    header, numbered = iter_trace_numbered(path)
    return header, [event for _, event in numbered]


def read_jsonl(path: Union[str, Path]) -> List[Event]:
    """Parse a :class:`JsonlSink` file back into typed events, in order."""
    return read_trace(path)[1]
