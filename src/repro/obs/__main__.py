"""The ``python -m repro.obs`` command line — trace analysis.

Subcommands (all stdlib-only, mirroring ``python -m repro.lint``):

* ``summarize <trace.jsonl ...>`` — per-event-kind counts and headline
  figures for each trace;
* ``overhead <trace.jsonl ...>`` — the enumeration-overhead decomposition
  (:mod:`repro.obs.overhead`) of each trace;
* ``timeline <trace.jsonl>`` — one plain-text line per event;
* ``certify <trace.jsonl>`` — re-derive the run's claims from the trace
  alone (:mod:`repro.obs.certify`), optionally cross-checked against a
  manifest (``--manifest``, or the sibling ``.json`` when present);
  ``--fragment`` certifies a flight dump's surviving invariants;
* ``top <source>`` — live serve metrics: tail a ``metrics.jsonl`` file
  or scrape a running engine's admin endpoint (``--follow`` refreshes);
* ``diff <old> <new>`` — compare two traces (``.jsonl``) or two ledger
  manifests (``.json``); ``diff --history FILE`` compares the two newest
  entries of a bench-history file.  ``--fail-on METRIC`` (repeatable,
  comma-separable) plus ``--tolerance PCT`` configure which increases
  count as regressions.

Exit codes: 0 clean, 1 configured regression (``diff``) or failed /
uncertifiable certificate (``certify``), 2 usage errors / malformed
inputs.  ``--format json`` swaps the text rendering for a
machine-readable document.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.analyze import (
    compute_diff,
    diff_history,
    metrics_for,
    render_timeline,
    summarize_events,
)
from repro.obs.overhead import compute_overhead
from repro.obs.sinks import iter_trace, read_trace


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=(
            "Trace analysis for repro JSONL traces and ledger manifests: "
            "summaries, overhead accounting, timelines, regression diffs."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="per-event-kind counts and headline figures"
    )
    summarize.add_argument("traces", nargs="+", metavar="TRACE")
    _add_format(summarize)

    overhead = sub.add_parser(
        "overhead", help="enumeration-overhead decomposition of a trace"
    )
    overhead.add_argument("traces", nargs="+", metavar="TRACE")
    _add_format(overhead)

    timeline = sub.add_parser(
        "timeline", help="one plain-text line per event, in stream order"
    )
    timeline.add_argument("trace", metavar="TRACE")
    timeline.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="show only the first N events",
    )

    certify = sub.add_parser(
        "certify",
        help="re-derive a recorded run's claims from its trace",
    )
    certify.add_argument("trace", metavar="TRACE")
    certify.add_argument(
        "--manifest", metavar="FILE", default=None,
        help="manifest to cross-check (default: the sibling .json, if any)",
    )
    certify.add_argument(
        "--fragment", action="store_true",
        help="certify a flight dump: check only the invariants that "
        "survive a missing prefix and a missing end",
    )
    _add_format(certify)

    top = sub.add_parser(
        "top",
        help="live serve metrics: tail a metrics.jsonl file or scrape "
        "an admin endpoint",
    )
    top.add_argument(
        "source", metavar="SOURCE",
        help="metrics.jsonl path, HOST:PORT, or admin .sock path",
    )
    top.add_argument(
        "--follow", action="store_true",
        help="refresh continuously instead of rendering one frame",
    )
    top.add_argument(
        "--frames", type=int, default=0, metavar="N",
        help="with --follow, stop after N frames (default: unbounded)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh interval with --follow (default: 2.0)",
    )

    diff = sub.add_parser(
        "diff",
        help="compare two traces/manifests, or a bench-history file",
    )
    diff.add_argument(
        "inputs", nargs="*", metavar="FILE",
        help="OLD and NEW: two .jsonl traces or two .json manifests",
    )
    diff.add_argument(
        "--history", metavar="FILE",
        help="instead of OLD/NEW, diff the two newest entries of this "
        "bench-history JSONL file",
    )
    diff.add_argument(
        "--fail-on", action="append", metavar="METRIC",
        help="exit 1 if this metric increased beyond the tolerance "
        "(repeatable, comma-separable)",
    )
    diff.add_argument(
        "--tolerance", type=float, default=0.0, metavar="PCT",
        help="allowed increase for --fail-on metrics, in percent "
        "(default: 0)",
    )
    _add_format(diff)
    return parser


def _add_format(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )


def _split_metrics(values: Optional[List[str]]) -> List[str]:
    metrics: List[str] = []
    for value in values or ():
        metrics.extend(part.strip() for part in value.split(",") if part.strip())
    return metrics


def _cmd_summarize(options: argparse.Namespace) -> int:
    documents: List[Dict[str, Any]] = []
    for path in options.traces:
        header, events = iter_trace(path)
        summary = summarize_events(events, path=path, header=header or None)
        if options.format == "json":
            documents.append(summary.to_dict())
        else:
            print(summary.format())
            print()
    if options.format == "json":
        print(json.dumps(documents, indent=2))
    return 0


def _cmd_overhead(options: argparse.Namespace) -> int:
    documents: List[Dict[str, Any]] = []
    for path in options.traces:
        _, events = read_trace(path)
        report = compute_overhead(events)
        if options.format == "json":
            documents.append({"path": path, **report.to_dict()})
        else:
            print(f"trace: {path}")
            print(report.format())
            print()
    if options.format == "json":
        print(json.dumps(documents, indent=2))
    return 0


def _cmd_timeline(options: argparse.Namespace) -> int:
    _, events = iter_trace(options.trace)
    print(render_timeline(events, limit=options.limit))
    return 0


def _cmd_certify(options: argparse.Namespace) -> int:
    # Lazy import: the checker (and the fault-channel module it pulls in)
    # only loads when certification is actually requested.
    from repro.obs.certify import certify_trace

    report = certify_trace(
        options.trace,
        manifest_path=options.manifest,
        fragment=options.fragment,
    )
    if options.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format())
    return 0 if report.ok else 1


def _cmd_top(options: argparse.Namespace) -> int:
    # Lazy import: the live-telemetry module only loads when asked for.
    from repro.obs.live import top_frames

    top_frames(
        options.source,
        frames=options.frames,
        interval_s=options.interval,
        follow=options.follow,
    )
    return 0


def _cmd_diff(options: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    fail_on = _split_metrics(options.fail_on)
    if options.history is not None:
        if options.inputs:
            parser.error("diff --history takes no positional inputs")
        report = diff_history(
            options.history, fail_on=fail_on, tolerance_pct=options.tolerance
        )
    else:
        if len(options.inputs) != 2:
            parser.error("diff needs exactly two inputs (or --history FILE)")
        old_path, new_path = options.inputs
        report = compute_diff(
            metrics_for(old_path),
            metrics_for(new_path),
            old_source=old_path,
            new_source=new_path,
            fail_on=fail_on,
            tolerance_pct=options.tolerance,
        )
    if options.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format())
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _parser()
    options = parser.parse_args(argv)
    try:
        if options.command == "summarize":
            return _cmd_summarize(options)
        if options.command == "overhead":
            return _cmd_overhead(options)
        if options.command == "timeline":
            return _cmd_timeline(options)
        if options.command == "certify":
            return _cmd_certify(options)
        if options.command == "top":
            return _cmd_top(options)
        return _cmd_diff(options, parser)
    except (OSError, ValueError, KeyError, TypeError) as error:
        # ValueError covers JSONDecodeError, TraceSchemaError, and
        # LedgerSchemaError; KeyError/TypeError cover malformed events.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
