"""Monotonic counters and scalar histograms.

A :class:`CounterSet` is the numeric half of a trace: where the event
stream answers *what happened when*, counters answer *how much in total* —
cheap enough to stay on for whole sweeps, structured enough to render as a
table.  Counters only ever go up (a reset makes a new set); histograms
record order statistics of repeated scalar observations (e.g. per-trial
round counts) without storing the observations themselves.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, Mapping, Tuple, Union

#: Log-bucket geometry shared by every histogram in the process (and, via
#: snapshots, across processes): bucket ``i`` covers ``(GAMMA**(i-1),
#: GAMMA**i]``.  Four buckets per octave keeps the relative half-width of
#: a bucket under ~9.6% (``(GAMMA - 1) / 2``), so any quantile read off a
#: bucket upper bound is within one bucket width of the sample-exact
#: value by construction.
BUCKET_GAMMA = 2.0**0.25
#: Index clamp: values outside ``(GAMMA**(MIN-1), GAMMA**MAX]`` land in
#: the edge buckets.  The range spans ~1e-9 .. ~1e12, which covers every
#: unit the repo observes (rounds, bits, milliseconds) with slack, and
#: bounds the bucket map at 281 entries — O(1) memory, never per-sample.
BUCKET_MIN_INDEX = -120
BUCKET_MAX_INDEX = 160

def bucket_upper(index: int) -> float:
    """Inclusive upper bound of bucket ``index``.

    Computed as ``2.0 ** (index / 4)`` rather than ``BUCKET_GAMMA **
    index`` so that every fourth boundary is an *exact* power of two —
    the exponent ``index * 0.25`` is exact in binary floating point.
    """
    return 2.0 ** (index * 0.25)


def bucket_index(value: float) -> int:
    """Deterministic bucket index for a positive observation.

    The initial ``ceil(4 * log2(value))`` estimate is corrected against
    the same :func:`bucket_upper` powers used for reading quantiles, so
    boundary values bucket identically on every platform regardless of
    libm rounding.
    """
    index = math.ceil(math.log2(value) * 4.0)
    while index > BUCKET_MIN_INDEX and bucket_upper(index - 1) >= value:
        index -= 1
    while index < BUCKET_MAX_INDEX and bucket_upper(index) < value:
        index += 1
    return max(BUCKET_MIN_INDEX, min(BUCKET_MAX_INDEX, index))


class Counter:
    """A named monotonic integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative: counters never decrease)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Histogram:
    """Streaming summary of scalar observations with log-bucket quantiles.

    Alongside the four-word summary (count/sum/min/max), each observation
    increments one fixed-log bucket (boundaries ``BUCKET_GAMMA ** i``,
    shared process-wide), so quantiles are available in O(1) memory
    without retaining samples.  Bucket maps from different workers merge
    by plain addition, which is associative and commutative — merging
    per-worker snapshots in any order yields the single-process totals.
    Non-positive observations (a clock that returned 0.0) fall into a
    dedicated ``low`` bucket with upper bound 0.0.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "low", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.low = 0
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value <= 0.0:
            self.low += 1
        else:
            index = bucket_index(value)
            self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        """Mean of observations (NaN when empty, matching ``Summary.of``)."""
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile read off bucket upper bounds.

        ``q`` is a fraction in ``[0, 1]`` (``quantile(0.95)`` is p95).
        The result is the upper bound of the bucket holding the ranked
        observation, clamped into ``[min, max]`` — so it is exact for the
        extremes and otherwise overshoots by at most one bucket width
        (relative error ≤ ``BUCKET_GAMMA - 1``).  NaN when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"histogram {self.name}: quantile {q} not in [0, 1]")
        if not self.count:
            return math.nan
        rank = min(self.count, max(1, math.ceil(q * self.count)))
        cumulative = self.low
        if cumulative >= rank:
            return min(max(0.0, self.minimum), self.maximum)
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                return min(max(bucket_upper(index), self.minimum), self.maximum)
        return self.maximum  # unreachable unless counts drifted

    def snapshot(self) -> HistogramSnapshot:
        """Plain-data copy: summary scalars plus the bucket map.

        Bucket keys are stringified indices so the snapshot survives a
        JSON round-trip unchanged (JSON object keys are strings).
        """
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else math.nan,
            "max": self.maximum if self.count else math.nan,
            "mean": self.mean,
            "low": self.low,
            "buckets": {str(i): self.buckets[i] for i in sorted(self.buckets)},
        }

    @classmethod
    def from_snapshot(cls, name: str, snapshot: Mapping[str, Any]) -> "Histogram":
        """Re-inflate a :meth:`snapshot` (possibly JSON round-tripped).

        The inverse used by readers — ``repro.obs top``, certificate
        cross-checks — that need quantiles from serialised bucket maps.
        """
        histogram = cls(name)
        histogram.merge_snapshot(snapshot)
        return histogram

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another histogram's snapshot into this one (associative)."""
        count = int(snapshot["count"])
        if not count:
            return
        self.count += count
        self.total += float(snapshot["total"])
        other_min = float(snapshot["min"])
        other_max = float(snapshot["max"])
        if other_min < self.minimum:
            self.minimum = other_min
        if other_max > self.maximum:
            self.maximum = other_max
        self.low += int(snapshot.get("low", 0))
        buckets = snapshot.get("buckets")
        if isinstance(buckets, Mapping):
            for key, n in buckets.items():
                index = int(key)
                self.buckets[index] = self.buckets.get(index, 0) + int(n)

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.2f}>"


#: A histogram snapshot: summary scalars plus the stringified bucket map.
HistogramSnapshot = Dict[str, Union[int, float, Dict[str, int]]]

#: Snapshot value types: counters flatten to int, histograms to a dict.
SnapshotValue = Union[int, HistogramSnapshot]


class CounterSet:
    """An ordered registry of counters and histograms.

    Names are created on first touch (``counters.inc("rounds")`` just
    works), and :meth:`snapshot` preserves creation order so rendered
    telemetry tables are stable across runs.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name)
        return found

    def inc(self, name: str, amount: int = 1) -> None:
        """Shorthand for ``self.counter(name).inc(amount)``."""
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Shorthand for ``self.histogram(name).observe(value)``."""
        self.histogram(name).observe(value)

    def get(self, name: str, default: int = 0) -> int:
        """Current value of counter ``name`` (``default`` if never touched)."""
        found = self._counters.get(name)
        return default if found is None else found.value

    def merge(self, snapshot: Mapping[str, SnapshotValue]) -> None:
        """Fold another accumulator's :meth:`snapshot` into this set.

        The primitive behind cross-process telemetry: each sweep worker
        counts locally, ships a plain-data snapshot back, and the parent
        merges — counters add, histograms combine count/total/min/max.
        Merging the per-worker snapshots of a partitioned workload yields
        exactly the single-process totals (addition is associative; the
        event streams are disjoint).  Names keep first-seen order, so
        merging in deterministic cell order gives stable tables.
        """
        for name, value in snapshot.items():
            if isinstance(value, int):
                self.counter(name).inc(value)
            else:
                self.histogram(name).merge_snapshot(value)

    def snapshot(self) -> Dict[str, SnapshotValue]:
        """Counters (as ints) then histograms (as summary dicts), in
        creation order — a plain-data copy safe to store or serialise."""
        out: Dict[str, SnapshotValue] = {
            name: c.value for name, c in self._counters.items()
        }
        for name, h in self._histograms.items():
            out[name] = h.snapshot()
        return out

    def __iter__(self) -> Iterator[Tuple[str, SnapshotValue]]:
        return iter(self.snapshot().items())

    def __repr__(self) -> str:
        return f"<CounterSet {self.snapshot()}>"
