"""Monotonic counters and scalar histograms.

A :class:`CounterSet` is the numeric half of a trace: where the event
stream answers *what happened when*, counters answer *how much in total* —
cheap enough to stay on for whole sweeps, structured enough to render as a
table.  Counters only ever go up (a reset makes a new set); histograms
record order statistics of repeated scalar observations (e.g. per-trial
round counts) without storing the observations themselves.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Mapping, Tuple, Union


class Counter:
    """A named monotonic integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative: counters never decrease)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Histogram:
    """Streaming summary of scalar observations (count/sum/min/max/mean).

    Deliberately bucket-free: the experiments need order-of-magnitude
    shape, not quantile precision, and a four-word summary never grows.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean of observations (NaN when empty, matching ``Summary.of``)."""
        return self.total / self.count if self.count else math.nan

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.2f}>"


#: Snapshot value types: counters flatten to int, histograms to a dict.
SnapshotValue = Union[int, Dict[str, float]]


class CounterSet:
    """An ordered registry of counters and histograms.

    Names are created on first touch (``counters.inc("rounds")`` just
    works), and :meth:`snapshot` preserves creation order so rendered
    telemetry tables are stable across runs.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name)
        return found

    def inc(self, name: str, amount: int = 1) -> None:
        """Shorthand for ``self.counter(name).inc(amount)``."""
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Shorthand for ``self.histogram(name).observe(value)``."""
        self.histogram(name).observe(value)

    def get(self, name: str, default: int = 0) -> int:
        """Current value of counter ``name`` (``default`` if never touched)."""
        found = self._counters.get(name)
        return default if found is None else found.value

    def merge(self, snapshot: Mapping[str, SnapshotValue]) -> None:
        """Fold another accumulator's :meth:`snapshot` into this set.

        The primitive behind cross-process telemetry: each sweep worker
        counts locally, ships a plain-data snapshot back, and the parent
        merges — counters add, histograms combine count/total/min/max.
        Merging the per-worker snapshots of a partitioned workload yields
        exactly the single-process totals (addition is associative; the
        event streams are disjoint).  Names keep first-seen order, so
        merging in deterministic cell order gives stable tables.
        """
        for name, value in snapshot.items():
            if isinstance(value, int):
                self.counter(name).inc(value)
            else:
                histogram = self.histogram(name)
                count = int(value["count"])
                if not count:
                    continue
                histogram.count += count
                histogram.total += value["total"]
                if value["min"] < histogram.minimum:
                    histogram.minimum = value["min"]
                if value["max"] > histogram.maximum:
                    histogram.maximum = value["max"]

    def snapshot(self) -> Dict[str, SnapshotValue]:
        """Counters (as ints) then histograms (as summary dicts), in
        creation order — a plain-data copy safe to store or serialise."""
        out: Dict[str, SnapshotValue] = {
            name: c.value for name, c in self._counters.items()
        }
        for name, h in self._histograms.items():
            out[name] = {
                "count": h.count,
                "total": h.total,
                "min": h.minimum if h.count else math.nan,
                "max": h.maximum if h.count else math.nan,
                "mean": h.mean,
            }
        return out

    def __iter__(self) -> Iterator[Tuple[str, SnapshotValue]]:
        return iter(self.snapshot().items())

    def __repr__(self) -> str:
        return f"<CounterSet {self.snapshot()}>"
