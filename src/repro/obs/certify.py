"""Run certificates: re-derive a recorded run's claims from its trace.

A trace written at schema minor >= 1 is *self-verifying*: together with
its manifest it forms a certificate that a small, engine-free checker can
validate offline — the VeriPB idea applied to goal-oriented executions.
:func:`certify_trace` replays the evidence a recorded run left behind and
re-derives every claim that is re-derivable without the engine:

* **stream shape** — one ``execution-started``/``execution-finished``
  pair, round indices consecutive from zero, per-round message tallies
  equal to the ``message-sent`` events, nothing after the halt;
* **seed chain** — the per-party RNG seeds derive from the recorded
  master seed (``rng_digest`` recomputes from ``seed`` alone, so an
  edited seed or digest is caught);
* **goal verdict** — the recorded ``goal-verdict`` is rechecked against
  the recorded prefix evidence: compact goals re-run the settle
  arithmetic (``settle_round = int(total_prefixes * (1 - f))``), finite
  goals must have halted to achieve;
* **switch legality** — every ``strategy-switch`` is justified by a
  preceding eviction/decay of the same candidate, itself justified by a
  negative sensing indication; enumeration order and wrap-around are
  rechecked, and a candidate change without a switch (a dropped event)
  is flagged;
* **overhead arithmetic** — the enumeration-overhead decomposition
  recomputed from the stream must agree with the event counts;
* **fault replay** — when the trace header carries the channel's fault
  spec, the whole fault schedule is replayed from the recorded seed and
  the ``fault-injected``/``fault-recovered`` events must match round for
  round;
* **proof transcripts** — ``proof-round`` events are rechecked: degree
  bounds, the quantifier/linearization/partial-sum consistency identity
  against the running claim, the claim chain, and
  ``claim_after = poly(challenge)``.

What is **not** re-derived: the verifier's *final* direct evaluation of
the arithmetized matrix/formula (it needs the instance, which the trace
does not carry) and the parties' actual message contents (the payloads
are recorded but their semantics belong to the strategies).  A rejecting
transcript whose recorded rounds all pass locally is therefore accepted
as-recorded.  See ``docs/OBSERVABILITY.md`` for the full threat model.

This module must stay **engine-free**: it imports only the emit-side
observability modules, the fault-channel description (itself engine
free), and the stdlib — never ``repro.core`` or the strategy packages.
A subprocess test pins this down.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.comm.messages import SILENCE
from repro.faults.channel import (
    SERVER_TO_USER,
    USER_TO_SERVER,
    FaultyChannelRun,
    channel_from_spec,
)
from repro.obs.events import (
    ABANDON_REASONS,
    SWITCH_BELIEF_DECAY,
    SWITCH_REASONS,
    SWITCH_SENSING_NEGATIVE,
    TRIAL_DECAYED,
    TRIAL_ENDORSED,
    TRIAL_EVICTED,
    TRIAL_HALT_REJECTED,
    TRIAL_REASONS,
    Event,
    ExecutionFinished,
    ExecutionStarted,
    FaultInjected,
    FaultRecovered,
    GoalVerdict,
    MessageSent,
    ProofFinished,
    ProofRoundChecked,
    ProofStarted,
    RoundExecuted,
    SensingIndication,
    SessionAbandoned,
    StrategySwitch,
    TrialFinished,
    TrialStarted,
    rng_chain_digest,
)
from repro.obs.overhead import compute_overhead
from repro.obs.sinks import (
    TRACE_SCHEMA_MINOR,
    MemorySink,
    TraceSchemaError,
    iter_trace_numbered,
)
from repro.obs.tracer import Tracer

#: Checks the certifier runs, in report order.
CHECKS = (
    "stream",
    "seed-chain",
    "goal-verdict",
    "switch-legality",
    "overhead",
    "fault-replay",
    "proof",
    "manifest",
)

#: The subset that still applies to a *fragment* (a flight dump: the
#: stream may be missing its prefix).  Overhead arithmetic needs the
#: whole stream, so it is the one check fragment mode drops.
FRAGMENT_CHECKS = tuple(check for check in CHECKS if check != "overhead")

#: ``TrialFinished`` reasons that require a *negative* sensing indication.
_NEGATIVE_EVIDENCE = frozenset({TRIAL_EVICTED, TRIAL_DECAYED, TRIAL_HALT_REJECTED})

#: Trial-close reason → the switch reason it licenses.
_SWITCH_FOR_CLOSE = {
    TRIAL_EVICTED: SWITCH_SENSING_NEGATIVE,
    TRIAL_DECAYED: SWITCH_BELIEF_DECAY,
}


class CertificationError(ValueError):
    """A trace failed certification (raised by the ``certify=`` hooks)."""


@dataclass(frozen=True)
class CertifyIssue:
    """One failed re-derivation, anchored to a trace line when possible."""

    check: str
    message: str
    line: Optional[int] = None

    def format(self, trace: str = "") -> str:
        anchor = trace or "<events>"
        if self.line is not None:
            anchor = f"{anchor}:{self.line}"
        return f"{anchor}: [{self.check}] {self.message}"


@dataclass(frozen=True)
class CertificateReport:
    """The outcome of certifying one trace (see :attr:`ok`)."""

    trace: str
    certifiable: bool
    reason: str
    issues: Tuple[CertifyIssue, ...]
    events: int
    trace_sha256: Optional[str] = None
    manifest: Optional[str] = None
    checks: Tuple[str, ...] = CHECKS
    fragment: bool = False

    @property
    def ok(self) -> bool:
        """True when the trace is certifiable and every check passed."""
        return self.certifiable and not self.issues

    def format(self) -> str:
        """Fixed-width text rendering (the CLI's default output)."""
        if not self.certifiable:
            status = f"UNCERTIFIABLE ({self.reason})"
        elif self.issues:
            status = f"FAILED ({len(self.issues)} issue(s))"
        else:
            status = "CERTIFIED"
        if self.fragment:
            status += " [fragment]"
        lines = [
            f"trace    : {self.trace}",
            f"events   : {self.events}",
            f"manifest : {self.manifest or '-'}",
            f"sha256   : {self.trace_sha256 or '-'}",
            f"checks   : {', '.join(self.checks)}",
            f"status   : {status}",
        ]
        for issue in self.issues:
            lines.append(issue.format(self.trace))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (the CLI's ``--format json`` output)."""
        return {
            "trace": self.trace,
            "certified": self.ok,
            "certifiable": self.certifiable,
            "reason": self.reason,
            "fragment": self.fragment,
            "events": self.events,
            "manifest": self.manifest,
            "trace_sha256": self.trace_sha256,
            "checks": list(self.checks),
            "issues": [
                {"check": i.check, "line": i.line, "message": i.message}
                for i in self.issues
            ],
        }


@dataclass
class _ProofState:
    """One open ``proof-started`` … ``proof-finished`` segment."""

    protocol: str
    modulus: int
    line: Optional[int]
    claim: int
    next_index: int = 0
    challenges: Dict[str, int] = field(default_factory=dict)
    rejected: bool = False
    all_rounds_ok: bool = True


class _Checker:
    """Single-pass re-derivation over one event stream.

    Feed events in trace order via :meth:`feed`, then call
    :meth:`finalize`; :attr:`issues` accumulates every failed check.

    With ``fragment=True`` the stream is a flight dump whose prefix may
    have been evicted: the first ``round-executed`` becomes the round
    sync point (its index is adopted, and the first — possibly partial —
    round's message tally is not checked), trial numbering syncs to the
    first trial event seen, a leading ``trial-finished``/``switch`` whose
    justifying context predates the window is accepted, and the
    whole-stream truncation and overhead checks are skipped.  Every
    in-window invariant still applies.
    """

    def __init__(
        self,
        header: Optional[Mapping[str, Any]],
        manifest: Optional[Mapping[str, Any]],
        *,
        fragment: bool = False,
    ) -> None:
        self.issues: List[CertifyIssue] = []
        self.events_seen = 0
        self._header = header or {}
        self._manifest = manifest
        self._fragment = fragment

        # Stream shape.
        self._started: Optional[ExecutionStarted] = None
        self._finished: Optional[ExecutionFinished] = None
        self._abandoned: Optional[SessionAbandoned] = None
        self._verdict: Optional[GoalVerdict] = None
        self._verdict_line: Optional[int] = None
        self._expected_round = 0
        self._rounds_synced = not fragment
        self._rounds_seen = 0
        self._halted = False
        self._round_messages = 0
        self._round_bytes = 0
        self._round_us: Optional[str] = None
        self._round_su: Optional[str] = None

        # Fault replay.
        self._replay: Optional[FaultyChannelRun] = None
        self._replay_sink: Optional[MemorySink] = None
        self._round_faults: List[Tuple[str, str, str]] = []
        self._unreplayable_fault_line: Optional[int] = None

        # Switch legality.
        self._last_indication: Optional[SensingIndication] = None
        self._open_trial: Optional[TrialStarted] = None
        self._trials_started = 0
        self._trials_synced = not fragment
        self._last_closed: Optional[Tuple[TrialStarted, str]] = None
        self._pending_switch: Optional[StrategySwitch] = None
        self._switches = 0
        self._wraps = 0

        # Proof segments.
        self._proof: Optional[_ProofState] = None
        self._proofs_finished = 0

        # Overhead recomputation input (message events carry no trial
        # attribution and dominate the stream, so they are not buffered).
        self._buffer: List[Event] = []

    # ------------------------------------------------------------------
    def issue(self, check: str, message: str, line: Optional[int] = None) -> None:
        self.issues.append(CertifyIssue(check=check, message=message, line=line))

    def feed(self, line: Optional[int], event: Event) -> None:
        self.events_seen += 1
        if not isinstance(event, MessageSent):
            self._buffer.append(event)
        if self._finished is not None and isinstance(
            event, (ExecutionStarted, MessageSent, RoundExecuted, FaultInjected, FaultRecovered)
        ):
            self.issue(
                "stream",
                f"{event.kind} event after execution-finished",
                line,
            )
        if self._abandoned is not None:
            self.issue(
                "stream",
                f"{event.kind} event after session-abandoned (the abandon "
                f"event terminates the stream)",
                line,
            )
        if isinstance(event, SessionAbandoned):
            self._feed_abandoned(line, event)
        elif isinstance(event, ExecutionStarted):
            self._feed_started(line, event)
        elif isinstance(event, MessageSent):
            self._feed_message(line, event)
        elif isinstance(event, (FaultInjected, FaultRecovered)):
            self._feed_fault(line, event)
        elif isinstance(event, RoundExecuted):
            self._feed_round(line, event)
        elif isinstance(event, ExecutionFinished):
            self._feed_finished(line, event)
        elif isinstance(event, SensingIndication):
            self._last_indication = event
        elif isinstance(event, TrialStarted):
            self._feed_trial_started(line, event)
        elif isinstance(event, TrialFinished):
            self._feed_trial_finished(line, event)
        elif isinstance(event, StrategySwitch):
            self._feed_switch(line, event)
        elif isinstance(event, GoalVerdict):
            self._feed_verdict(line, event)
        elif isinstance(event, ProofStarted):
            self._feed_proof_started(line, event)
        elif isinstance(event, ProofRoundChecked):
            self._feed_proof_round(line, event)
        elif isinstance(event, ProofFinished):
            self._feed_proof_finished(line, event)

    # ------------------------------------------------------------------
    # Stream shape + seed chain.
    def _feed_started(self, line: Optional[int], event: ExecutionStarted) -> None:
        if self._started is not None:
            self.issue("stream", "duplicate execution-started event", line)
            return
        self._started = event
        if self.events_seen == 1:
            # A fragment that still holds its execution-started lost no
            # prefix: every positional check applies from round zero.
            self._rounds_synced = True
            self._trials_synced = True
        draws = self._derive_seed_chain(line, event)
        self._setup_replay(line, draws)

    def _derive_seed_chain(
        self, line: Optional[int], event: ExecutionStarted
    ) -> Tuple[int, ...]:
        """Re-derive the per-party seeds; returns all four master draws."""
        master = random.Random(event.seed)
        draws = tuple(master.getrandbits(64) for _ in range(4))
        if event.rng_digest is None:
            self.issue(
                "seed-chain",
                "execution-started carries no rng digest (nothing commits "
                "to the seed derivation)",
                line,
            )
        else:
            expected = rng_chain_digest(event.seed, draws[:3])
            if event.rng_digest != expected:
                self.issue(
                    "seed-chain",
                    f"rng digest mismatch: trace records {event.rng_digest} "
                    f"but seed {event.seed} derives {expected} — the seed or "
                    f"digest field was edited",
                    line,
                )
        return draws

    def _setup_replay(self, line: Optional[int], draws: Tuple[int, ...]) -> None:
        spec = self._header.get("channel")
        if not isinstance(spec, Mapping):
            return
        try:
            channel = channel_from_spec(spec)
        except (KeyError, TypeError, ValueError) as exc:
            self.issue(
                "fault-replay",
                f"channel spec in the trace header does not rebuild: {exc}",
                line,
            )
            return
        # The engine draws the channel seed from the master stream right
        # after the three party seeds.
        self._replay_sink = MemorySink()
        self._replay = channel.start(draws[3], Tracer(sink=self._replay_sink))

    def _feed_abandoned(self, line: Optional[int], event: SessionAbandoned) -> None:
        self._abandoned = event
        if event.reason not in ABANDON_REASONS:
            self.issue(
                "stream",
                f"unknown session-abandoned reason {event.reason!r}",
                line,
            )
        if event.rounds_completed < self._rounds_seen:
            self.issue(
                "stream",
                f"session-abandoned claims {event.rounds_completed} round(s) "
                f"but the stream already shows {self._rounds_seen}",
                line,
            )

    def _feed_message(self, line: Optional[int], event: MessageSent) -> None:
        if event.round_index != self._expected_round and self._rounds_synced:
            self.issue(
                "stream",
                f"message-sent for round {event.round_index} inside round "
                f"{self._expected_round}",
                line,
            )
        if not event.payload:
            self.issue("stream", "message-sent with an empty payload", line)
        self._round_messages += 1
        self._round_bytes += len(event.payload)
        if event.sender == "user" and event.receiver == "server":
            if self._round_us is None:
                self._round_us = event.payload
        elif event.sender == "server" and event.receiver == "user":
            if self._round_su is None:
                self._round_su = event.payload

    def _feed_fault(
        self, line: Optional[int], event: Union[FaultInjected, FaultRecovered]
    ) -> None:
        if event.round_index != self._expected_round and self._rounds_synced:
            self.issue(
                "stream",
                f"{event.kind} for round {event.round_index} inside round "
                f"{self._expected_round}",
                line,
            )
        if event.site not in (USER_TO_SERVER, SERVER_TO_USER):
            return  # Server-side wrappers inject their own faults.
        if isinstance(event, FaultInjected):
            self._round_faults.append(("injected", event.site, event.fault))
        else:
            self._round_faults.append(("recovered", event.site, ""))
        if self._replay is None and self._unreplayable_fault_line is None:
            self._unreplayable_fault_line = line if line is not None else -1

    def _feed_round(self, line: Optional[int], event: RoundExecuted) -> None:
        synced = self._rounds_synced
        if not synced:
            # Fragment sync point: the dump's first round-executed fixes
            # where the surviving window sits in the original stream.
            self._rounds_synced = True
            self._expected_round = event.round_index
        if event.round_index != self._expected_round:
            self.issue(
                "stream",
                f"rounds out of order: round-executed {event.round_index} "
                f"where round {self._expected_round} was expected",
                line,
            )
            self._expected_round = event.round_index
        if self._halted:
            self.issue(
                "stream",
                f"round {event.round_index} executed after the user halted",
                line,
            )
        if synced and (
            event.messages != self._round_messages
            or event.message_bytes != self._round_bytes
        ):
            self.issue(
                "stream",
                f"round {event.round_index} claims {event.messages} message(s) "
                f"/ {event.message_bytes} byte(s) but the trace shows "
                f"{self._round_messages} / {self._round_bytes}",
                line,
            )
        self._replay_round(line, event)
        if event.halted:
            self._halted = True
        self._rounds_seen += 1
        self._expected_round = event.round_index + 1
        self._round_messages = 0
        self._round_bytes = 0
        self._round_us = None
        self._round_su = None
        self._round_faults = []

    def _replay_round(self, line: Optional[int], event: RoundExecuted) -> None:
        if self._replay is None or self._replay_sink is None:
            return
        user_to_server = self._round_us if self._round_us is not None else SILENCE
        server_to_user = self._round_su if self._round_su is not None else SILENCE
        try:
            self._replay.apply(event.round_index, user_to_server, server_to_user)
        except (KeyError, ValueError) as exc:
            self.issue(
                "fault-replay",
                f"fault-schedule replay lost sync at round "
                f"{event.round_index}: {exc}",
                line,
            )
            self._replay = None
            return
        replayed = [
            ("injected", e.site, e.fault)
            if isinstance(e, FaultInjected)
            else ("recovered", getattr(e, "site", "?"), "")
            for e in self._replay_sink.events
        ]
        self._replay_sink.clear()
        if replayed != self._round_faults:
            self.issue(
                "fault-replay",
                f"round {event.round_index}: fault events diverge from the "
                f"replayed schedule (replay derives "
                f"{_format_faults(replayed)}, trace has "
                f"{_format_faults(self._round_faults)})",
                line,
            )

    def _feed_finished(self, line: Optional[int], event: ExecutionFinished) -> None:
        if self._finished is not None:
            self.issue("stream", "duplicate execution-finished event", line)
            return
        self._finished = event
        if event.rounds_executed != self._rounds_seen:
            self.issue(
                "stream",
                f"execution-finished claims {event.rounds_executed} round(s) "
                f"but the trace shows {self._rounds_seen} round-executed "
                f"event(s)",
                line,
            )
        if event.halted != self._halted:
            self.issue(
                "stream",
                f"execution-finished halted={event.halted} disagrees with "
                f"the round events (halted={self._halted})",
                line,
            )

    # ------------------------------------------------------------------
    # Switch legality.
    def _feed_trial_started(self, line: Optional[int], event: TrialStarted) -> None:
        if self._open_trial is not None:
            self.issue(
                "switch-legality",
                f"trial {event.trial_number} started while trial "
                f"{self._open_trial.trial_number} is still open",
                line,
            )
        if not self._trials_synced:
            # Fragment sync point: adopt the first in-window trial number.
            self._trials_synced = True
            self._trials_started = event.trial_number
        if event.trial_number != self._trials_started:
            self.issue(
                "switch-legality",
                f"trial numbers not consecutive: got {event.trial_number}, "
                f"expected {self._trials_started}",
                line,
            )
        if self._pending_switch is not None:
            if event.candidate_index != self._pending_switch.to_index:
                self.issue(
                    "switch-legality",
                    f"trial opened on candidate {event.candidate_index} but "
                    f"the preceding switch moved to candidate "
                    f"{self._pending_switch.to_index}",
                    line,
                )
            self._pending_switch = None
        elif self._last_closed is not None:
            closed, _reason = self._last_closed
            if closed.budget is None and event.candidate_index != closed.candidate_index:
                self.issue(
                    "switch-legality",
                    f"candidate changed {closed.candidate_index} -> "
                    f"{event.candidate_index} without a justifying "
                    f"strategy-switch (dropped switch event?)",
                    line,
                )
        self._trials_started = event.trial_number + 1
        self._open_trial = event

    def _feed_trial_finished(self, line: Optional[int], event: TrialFinished) -> None:
        opened = self._open_trial
        pre_window = opened is None and not self._trials_synced
        if pre_window:
            # Fragment: this trial opened before the surviving window.
            # Sync numbering to it (the next start must be its successor)
            # and reconstruct the opened record from the finish itself so
            # a following switch can be justified; its sensing evidence
            # predates the window, so skip that.
            self._trials_synced = True
            self._trials_started = event.trial_number + 1
            opened = TrialStarted(
                round_index=event.round_index,
                trial_number=event.trial_number,
                candidate_index=event.candidate_index,
                budget=None,
            )
            self._open_trial = opened
        if opened is None:
            self.issue(
                "switch-legality",
                f"trial {event.trial_number} finished with no open trial",
                line,
            )
        elif (
            event.trial_number != opened.trial_number
            or event.candidate_index != opened.candidate_index
        ):
            self.issue(
                "switch-legality",
                f"trial-finished ({event.trial_number}, candidate "
                f"{event.candidate_index}) does not match the open trial "
                f"({opened.trial_number}, candidate {opened.candidate_index})",
                line,
            )
        if event.reason not in TRIAL_REASONS:
            self.issue(
                "switch-legality",
                f"unknown trial-finished reason {event.reason!r}",
                line,
            )
        indication = self._last_indication
        if pre_window:
            pass  # The justifying indication predates the dump window.
        elif event.reason in _NEGATIVE_EVIDENCE:
            if (
                indication is None
                or indication.candidate_index != event.candidate_index
                or indication.positive
            ):
                self.issue(
                    "switch-legality",
                    f"trial {event.trial_number} finished {event.reason!r} "
                    f"without a preceding negative sensing indication for "
                    f"candidate {event.candidate_index}",
                    line,
                )
        elif event.reason == TRIAL_ENDORSED:
            if (
                indication is None
                or indication.candidate_index != event.candidate_index
                or not indication.positive
            ):
                self.issue(
                    "switch-legality",
                    f"trial {event.trial_number} endorsed without a "
                    f"preceding positive sensing indication for candidate "
                    f"{event.candidate_index}",
                    line,
                )
        if opened is not None:
            self._last_closed = (opened, event.reason)
        self._open_trial = None

    def _feed_switch(self, line: Optional[int], event: StrategySwitch) -> None:
        self._switches += 1
        if event.wrapped:
            self._wraps += 1
        if event.reason not in SWITCH_REASONS:
            self.issue(
                "switch-legality",
                f"unknown strategy-switch reason {event.reason!r}",
                line,
            )
        if self._open_trial is not None:
            self.issue(
                "switch-legality",
                f"strategy-switch while trial "
                f"{self._open_trial.trial_number} is open",
                line,
            )
        closed = self._last_closed
        if closed is None and not self._trials_synced:
            # Fragment: the eviction/decay justifying a leading switch
            # predates the dump window; in-window geometry still applies.
            pass
        elif (
            closed is None
            or closed[0].candidate_index != event.from_index
            or closed[1] not in _SWITCH_FOR_CLOSE
        ):
            self.issue(
                "switch-legality",
                f"strategy-switch away from candidate {event.from_index} is "
                f"not justified by a preceding eviction/decay of that "
                f"candidate",
                line,
            )
        elif _SWITCH_FOR_CLOSE[closed[1]] != event.reason:
            self.issue(
                "switch-legality",
                f"switch reason {event.reason!r} does not match the closing "
                f"trial's reason {closed[1]!r}",
                line,
            )
        if event.wrapped and event.to_index != 0:
            self.issue(
                "switch-legality",
                f"wrapped switch must return to candidate 0, not "
                f"{event.to_index}",
                line,
            )
        if (
            event.reason == SWITCH_SENSING_NEGATIVE
            and not event.wrapped
            and event.to_index != event.from_index + 1
        ):
            self.issue(
                "switch-legality",
                f"sensing-negative switch must advance the enumeration "
                f"({event.from_index} -> {event.from_index + 1}), not jump "
                f"to {event.to_index}",
                line,
            )
        self._last_closed = None
        self._pending_switch = event

    # ------------------------------------------------------------------
    # Goal verdict.
    def _feed_verdict(self, line: Optional[int], event: GoalVerdict) -> None:
        if self._verdict is not None:
            self.issue("goal-verdict", "duplicate goal-verdict event", line)
            return
        self._verdict = event
        self._verdict_line = line

    def _check_verdict(self) -> None:
        verdict = self._verdict
        line = self._verdict_line
        if verdict is None:
            if self._manifest is not None and "achieved" in self._manifest:
                self.issue(
                    "goal-verdict",
                    "manifest claims a goal outcome but the trace records no "
                    "goal-verdict event",
                )
            return
        finished = self._finished
        if finished is not None:
            if verdict.rounds != finished.rounds_executed:
                self.issue(
                    "goal-verdict",
                    f"verdict counts {verdict.rounds} round(s) but the "
                    f"execution ran {finished.rounds_executed}",
                    line,
                )
            if verdict.halted != finished.halted:
                self.issue(
                    "goal-verdict",
                    f"verdict halted={verdict.halted} disagrees with the "
                    f"execution (halted={finished.halted})",
                    line,
                )
        if verdict.compact:
            self._check_compact_verdict(verdict, line)
        elif verdict.achieved and not verdict.halted:
            self.issue(
                "goal-verdict",
                "finite goal recorded as achieved without halting",
                line,
            )

    def _check_compact_verdict(
        self, verdict: GoalVerdict, line: Optional[int]
    ) -> None:
        if verdict.settle_fraction is None or verdict.total_prefixes is None:
            self.issue(
                "goal-verdict",
                "compact verdict carries no prefix evidence "
                "(settle_fraction/total_prefixes missing)",
                line,
            )
            return
        total = verdict.total_prefixes
        last_bad = verdict.last_bad_round
        if self._finished is not None and total != self._finished.rounds_executed + 1:
            self.issue(
                "goal-verdict",
                f"verdict judged {total} prefixes but "
                f"{self._finished.rounds_executed} executed round(s) yield "
                f"{self._finished.rounds_executed + 1} (the initial state "
                f"counts)",
                line,
            )
        bad = verdict.bad_prefixes or 0
        if last_bad is None:
            if bad != 0:
                self.issue(
                    "goal-verdict",
                    f"verdict counts {bad} bad prefix(es) but records no "
                    f"last bad round",
                    line,
                )
        elif not 1 <= last_bad <= total or bad < 1 or bad > total:
            self.issue(
                "goal-verdict",
                f"prefix evidence out of range: last bad round {last_bad}, "
                f"{bad} bad of {total} prefixes",
                line,
            )
        settle_round = int(total * (1 - verdict.settle_fraction))
        derived = last_bad is None or last_bad <= settle_round
        if derived != verdict.achieved:
            self.issue(
                "goal-verdict",
                f"recorded achieved={verdict.achieved} but the settle "
                f"arithmetic derives {derived} (settle round {settle_round}, "
                f"last bad prefix {last_bad})",
                line,
            )

    # ------------------------------------------------------------------
    # Proof transcripts.
    def _feed_proof_started(self, line: Optional[int], event: ProofStarted) -> None:
        if self._proof is not None:
            self.issue(
                "proof",
                "proof-started inside an unfinished proof segment",
                line,
            )
        if event.modulus < 2:
            self.issue("proof", f"modulus {event.modulus} is not a prime", line)
            self._proof = None
            return
        self._proof = _ProofState(
            protocol=event.protocol,
            modulus=event.modulus,
            line=line,
            claim=event.claimed_value % event.modulus,
        )

    def _feed_proof_round(self, line: Optional[int], event: ProofRoundChecked) -> None:
        proof = self._proof
        if proof is None:
            self.issue("proof", "proof-round outside a proof segment", line)
            return
        if event.index != proof.next_index:
            self.issue(
                "proof",
                f"proof rounds out of order: got {event.index}, expected "
                f"{proof.next_index}",
                line,
            )
        proof.next_index = event.index + 1
        if proof.rejected:
            self.issue("proof", "proof-round after a rejecting round", line)
            return
        p = proof.modulus
        coeffs = _parse_poly(event.poly)
        if coeffs is None:
            self.issue(
                "proof", f"unparseable polynomial wire form {event.poly!r}", line
            )
            proof.rejected = True
            proof.all_rounds_ok = False
            return
        coeffs = [c % p for c in coeffs]
        while coeffs and coeffs[-1] == 0:
            coeffs.pop()
        degree = len(coeffs) - 1
        s0 = _poly_eval(coeffs, 0, p)
        s1 = _poly_eval(coeffs, 1, p)
        derived_ok = degree <= event.degree_bound
        if derived_ok:
            expected = self._proof_identity(proof, event, s0, s1, line)
            derived_ok = expected is not None and expected == event.claim_before % p
        if event.claim_before % p != proof.claim:
            self.issue(
                "proof",
                f"claim chain broken at round {event.index}: claim_before "
                f"{event.claim_before} != running claim {proof.claim}",
                line,
            )
        recorded_ok = event.challenge is not None
        if recorded_ok != derived_ok:
            self.issue(
                "proof",
                f"round {event.index} ({event.op_kind} on {event.var}): "
                f"recorded {'pass' if recorded_ok else 'reject'} but "
                f"re-derivation says {'pass' if derived_ok else 'reject'}",
                line,
            )
        if event.challenge is not None:
            if not 0 <= event.challenge < p:
                self.issue(
                    "proof",
                    f"challenge {event.challenge} outside GF({p})",
                    line,
                )
            evaluated = _poly_eval(coeffs, event.challenge % p, p)
            if event.claim_after is None or event.claim_after % p != evaluated:
                self.issue(
                    "proof",
                    f"round {event.index}: claim_after {event.claim_after} "
                    f"!= poly({event.challenge}) = {evaluated}",
                    line,
                )
            proof.challenges[event.var] = event.challenge % p
            proof.claim = evaluated
        else:
            proof.rejected = True
            proof.all_rounds_ok = False
            if event.claim_after is not None:
                self.issue(
                    "proof",
                    f"rejected round {event.index} carries a claim_after",
                    line,
                )

    def _proof_identity(
        self,
        proof: _ProofState,
        event: ProofRoundChecked,
        s0: int,
        s1: int,
        line: Optional[int],
    ) -> Optional[int]:
        """The consistency identity's expected value, or None if unknown."""
        p = proof.modulus
        if event.op_kind == "forall":
            return (s0 * s1) % p
        if event.op_kind == "exists":
            return (s0 + s1 - s0 * s1) % p
        if event.op_kind == "sum":
            return (s0 + s1) % p
        if event.op_kind == "linearize":
            r_v = proof.challenges.get(event.var)
            if r_v is None:
                self.issue(
                    "proof",
                    f"linearize on {event.var} with no prior challenge for it",
                    line,
                )
                return None
            return ((1 - r_v) * s0 + r_v * s1) % p
        self.issue("proof", f"unknown proof operator {event.op_kind!r}", line)
        return None

    def _feed_proof_finished(self, line: Optional[int], event: ProofFinished) -> None:
        proof = self._proof
        if proof is None:
            self.issue("proof", "proof-finished outside a proof segment", line)
            return
        if event.accepted and not proof.all_rounds_ok:
            self.issue(
                "proof",
                "transcript accepted but a recorded round fails "
                "re-derivation",
                line,
            )
        # accepted=False with all rounds locally consistent is legitimate:
        # the verifier's final direct evaluation of the instance is the one
        # check this trace does not carry the data to re-derive.
        self._proof = None
        self._proofs_finished += 1

    # ------------------------------------------------------------------
    def finalize(self, trace_sha256: Optional[str] = None) -> None:
        """Run the whole-stream checks once the stream is exhausted.

        Truncation findings are suppressed for fragments (missing ends
        are their nature) and for streams terminated by a
        ``session-abandoned`` event — the abandon *is* the explained end
        of the stream, which is exactly what distinguishes a recovered
        flight dump from silent data loss.
        """
        explained_end = self._fragment or self._abandoned is not None
        if self._started is not None and self._finished is None:
            if not explained_end:
                self.issue(
                    "stream", "trace truncated: no execution-finished event"
                )
        if (self._round_messages or self._round_faults) and not explained_end:
            self.issue(
                "stream",
                "trace ends mid-round: message/fault events without a "
                "closing round-executed",
            )
        if self._proof is not None and not explained_end:
            self.issue(
                "proof", "proof segment truncated: no proof-finished event"
            )
        if (
            self._unreplayable_fault_line is not None
            and self._replay is None
            and not self._fragment
        ):
            spec = self._header.get("channel")
            if not isinstance(spec, Mapping):
                self.issue(
                    "fault-replay",
                    "channel fault events present but the trace header "
                    "carries no channel spec to replay them against",
                    None
                    if self._unreplayable_fault_line < 0
                    else self._unreplayable_fault_line,
                )
        self._check_verdict()
        if not self._fragment:
            self._check_overhead()
        self._check_manifest(trace_sha256)

    def _check_overhead(self) -> None:
        report = compute_overhead(self._buffer)
        if report.productive_rounds + report.overhead_rounds != report.total_rounds:
            self.issue(
                "overhead",
                f"overhead decomposition does not add up: "
                f"{report.productive_rounds} + {report.overhead_rounds} != "
                f"{report.total_rounds}",
            )
        if report.switches != self._switches or report.wraps != self._wraps:
            self.issue(
                "overhead",
                f"overhead counts {report.switches} switch(es) / "
                f"{report.wraps} wrap(s) but the stream shows "
                f"{self._switches} / {self._wraps}",
            )
        if report.trials != self._trials_started:
            self.issue(
                "overhead",
                f"overhead counts {report.trials} trial(s) but the stream "
                f"shows {self._trials_started}",
            )
        if self._finished is not None and self._rounds_seen:
            if report.total_rounds != self._finished.rounds_executed:
                self.issue(
                    "overhead",
                    f"overhead accounts {report.total_rounds} round(s) but "
                    f"the execution ran {self._finished.rounds_executed}",
                )

    def _check_manifest(self, trace_sha256: Optional[str]) -> None:
        manifest = self._manifest
        if manifest is None:
            return
        kind = manifest.get("kind")
        if kind not in ("run", "cell"):
            self.issue(
                "manifest", f"manifest kind {kind!r} is not a run manifest"
            )
            return
        recorded_sha = manifest.get("trace_sha256")
        if (
            isinstance(recorded_sha, str)
            and trace_sha256 is not None
            and recorded_sha != trace_sha256
        ):
            self.issue(
                "manifest",
                f"trace digest mismatch: manifest stamps {recorded_sha} but "
                f"the file hashes to {trace_sha256} — the trace was modified "
                f"after recording",
            )
        started = self._started
        if started is not None:
            seeds = manifest.get("seeds")
            if isinstance(seeds, list) and started.seed not in seeds:
                self.issue(
                    "manifest",
                    f"execution seed {started.seed} is not among the "
                    f"manifest seeds {seeds}",
                )
            for key, recorded, actual in (
                ("max_rounds", manifest.get("max_rounds"), started.max_rounds),
                ("user", manifest.get("user"), started.user),
                ("server", manifest.get("server"), started.server),
            ):
                if recorded is not None and recorded != actual:
                    self.issue(
                        "manifest",
                        f"manifest {key}={recorded!r} disagrees with the "
                        f"trace ({actual!r})",
                    )
        if kind != "run":
            return  # Cell manifests aggregate several seeds' totals.
        finished = self._finished
        if finished is not None:
            if manifest.get("rounds") != finished.rounds_executed:
                self.issue(
                    "manifest",
                    f"manifest rounds={manifest.get('rounds')} disagrees "
                    f"with the trace ({finished.rounds_executed})",
                )
            if manifest.get("halted") != int(finished.halted):
                self.issue(
                    "manifest",
                    f"manifest halted={manifest.get('halted')} disagrees "
                    f"with the trace ({int(finished.halted)})",
                )
        verdict = self._verdict
        if verdict is not None:
            if manifest.get("achieved") != int(verdict.achieved):
                self.issue(
                    "manifest",
                    f"manifest achieved={manifest.get('achieved')} disagrees "
                    f"with the recorded verdict ({int(verdict.achieved)})",
                )
            if manifest.get("goal") not in (None, verdict.goal):
                self.issue(
                    "manifest",
                    f"manifest goal={manifest.get('goal')!r} disagrees with "
                    f"the recorded verdict ({verdict.goal!r})",
                )


def _format_faults(entries: List[Tuple[str, str, str]]) -> str:
    if not entries:
        return "none"
    return "+".join(
        f"{kind}:{site}:{fault}" if fault else f"{kind}:{site}"
        for kind, site, fault in entries
    )


def _poly_eval(coeffs: List[int], x: int, p: int) -> int:
    """Horner evaluation of lowest-first coefficients over GF(p)."""
    result = 0
    for c in reversed(coeffs):
        result = (result * x + c) % p
    return result


def _parse_poly(text: str) -> Optional[List[int]]:
    """Parse :meth:`Poly.serialize` wire form ("" is the zero polynomial)."""
    if not text:
        return []
    try:
        return [int(part) for part in text.split(",")]
    except ValueError:
        return None


def _uncertifiable_reason(header: Optional[Mapping[str, Any]]) -> str:
    """Why a trace header rules out certification ("" = certifiable)."""
    if header is None:
        return ""  # In-memory streams come from this build's emitters.
    if not header:
        return "trace has no schema header (pre-versioning trace)"
    minor = header.get("trace_schema_minor")
    if not isinstance(minor, int) or minor < 1:
        return (
            f"trace predates the certificate evidence "
            f"(trace_schema_minor >= 1 required, header has {minor!r})"
        )
    if minor > TRACE_SCHEMA_MINOR:
        return (
            f"trace_schema_minor {minor} is newer than this build "
            f"({TRACE_SCHEMA_MINOR}); its evidence may not be understood"
        )
    return ""


def certify_events(
    events: Iterable[Event],
    *,
    header: Optional[Mapping[str, Any]] = None,
    manifest: Optional[Mapping[str, Any]] = None,
    trace: str = "<events>",
    fragment: bool = False,
) -> CertificateReport:
    """Certify an in-memory event stream (no file, no line anchors).

    ``header=None`` means the events came straight from this build's
    emitters and are treated as current-schema; pass the parsed file
    header to apply the certifiability gate.  ``fragment=True`` applies
    the flight-dump relaxations (see :class:`_Checker`).
    """
    reason = _uncertifiable_reason(header)
    checker = _Checker(header, manifest, fragment=fragment)
    if reason:
        count = sum(1 for _ in events)
        return CertificateReport(
            trace=trace,
            certifiable=False,
            reason=reason,
            issues=(),
            events=count,
            checks=FRAGMENT_CHECKS if fragment else CHECKS,
            fragment=fragment,
        )
    for event in events:
        checker.feed(None, event)
    checker.finalize()
    return CertificateReport(
        trace=trace,
        certifiable=True,
        reason="",
        issues=tuple(checker.issues),
        events=checker.events_seen,
        checks=FRAGMENT_CHECKS if fragment else CHECKS,
        fragment=fragment,
    )


def _load_manifest(
    trace_path: Path, manifest_path: Optional[Union[str, Path]]
) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
    """The manifest to check against, if any.

    An explicit path must exist and parse (``ValueError`` otherwise — a
    named manifest that cannot be read is a usage error, not a finding).
    Without one, the trace's sibling ``<name>.json`` is used when it
    exists and parses as an object; junk siblings are silently ignored.
    """
    if manifest_path is not None:
        resolved = Path(manifest_path)
        data = json.loads(resolved.read_text(encoding="utf-8"))
        if not isinstance(data, dict):
            raise ValueError(f"{resolved}: manifest is not a JSON object")
        return data, str(resolved)
    sibling = trace_path.with_suffix(".json")
    if not sibling.exists():
        return None, None
    try:
        data = json.loads(sibling.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None, None
    if not isinstance(data, dict):
        return None, None
    return data, str(sibling)


def _file_sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def certify_trace(
    path: Union[str, Path],
    manifest_path: Optional[Union[str, Path]] = None,
    *,
    fragment: bool = False,
) -> CertificateReport:
    """Certify a JSONL trace file (the ``repro.obs certify`` entry point).

    Streams the file once via :func:`~repro.obs.sinks.iter_trace_numbered`
    so every issue is anchored to its 1-based file line.  A malformed or
    truncated line mid-stream becomes a ``stream`` issue (the certificate
    *fails*, exit 1) rather than an error — tampering must never look
    like a usage mistake.  Header-level schema errors (an unsupported
    major) still raise :class:`~repro.obs.sinks.TraceSchemaError`.

    ``fragment=True`` (the CLI's ``--fragment``) checks a flight dump:
    the invariants that survive a missing prefix and a missing end.
    """
    resolved = Path(path)
    trace_sha256 = _file_sha256(resolved)
    manifest, manifest_label = _load_manifest(resolved, manifest_path)
    header, numbered = iter_trace_numbered(resolved)
    reason = _uncertifiable_reason(header)
    checker = _Checker(header, manifest, fragment=fragment)
    count = 0
    stream_issue: Optional[CertifyIssue] = None
    try:
        for line, event in numbered:
            count += 1
            if not reason:
                checker.feed(line, event)
    except TraceSchemaError as exc:
        stream_issue = CertifyIssue(
            check="stream",
            message=f"trace unreadable past this point: {exc}",
            line=exc.line,
        )
    checks = FRAGMENT_CHECKS if fragment else CHECKS
    if reason:
        return CertificateReport(
            trace=str(resolved),
            certifiable=False,
            reason=reason,
            issues=(stream_issue,) if stream_issue is not None else (),
            events=count,
            trace_sha256=trace_sha256,
            manifest=manifest_label,
            checks=checks,
            fragment=fragment,
        )
    checker.finalize(trace_sha256)
    issues = list(checker.issues)
    if stream_issue is not None:
        issues.insert(0, stream_issue)
    return CertificateReport(
        trace=str(resolved),
        certifiable=True,
        reason="",
        issues=tuple(issues),
        events=count,
        trace_sha256=trace_sha256,
        manifest=manifest_label,
        checks=checks,
        fragment=fragment,
    )


def certify_run(
    trace_path: Union[str, Path],
    manifest_path: Optional[Union[str, Path]] = None,
) -> CertificateReport:
    """Certify or raise — the hook behind ``record_run(..., certify=True)``."""
    report = certify_trace(trace_path, manifest_path)
    if not report.ok:
        raise CertificationError(report.format())
    return report


def sweep_cells_digest(directory: Union[str, Path], cells: Iterable[str]) -> str:
    """The sweep ledger's cell digest: SHA-256 over the per-cell digests.

    Defined as the hash of the newline-joined per-file SHA-256 hex digests
    in manifest order, so a single edited cell manifest changes it.
    """
    root = Path(directory)
    parts = [_file_sha256(root / name) for name in cells]
    return hashlib.sha256("\n".join(parts).encode("ascii")).hexdigest()


def certify_sweep(directory: Union[str, Path]) -> None:
    """Check a sweep ledger directory's integrity; raise on tampering.

    Verifies that ``sweep.json`` parses, every listed cell manifest
    exists, and the recorded ``cells_sha256`` matches the recomputed
    digest.  Used by ``analysis.runner.sweep(..., certify=True)``.
    """
    root = Path(directory)
    sweep_path = root / "sweep.json"
    data = json.loads(sweep_path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("kind") != "sweep":
        raise CertificationError(f"{sweep_path}: not a sweep manifest")
    cells = data.get("cells")
    if not isinstance(cells, list):
        raise CertificationError(f"{sweep_path}: manifest lists no cells")
    missing = [name for name in cells if not (root / name).exists()]
    if missing:
        raise CertificationError(
            f"{sweep_path}: missing cell manifest(s): {', '.join(missing)}"
        )
    recorded = data.get("cells_sha256")
    if recorded is None:
        raise CertificationError(
            f"{sweep_path}: manifest carries no cells_sha256 digest"
        )
    actual = sweep_cells_digest(root, cells)
    if recorded != actual:
        raise CertificationError(
            f"{sweep_path}: cells digest mismatch: manifest stamps "
            f"{recorded} but the cell files hash to {actual}"
        )


__all__ = [
    "CHECKS",
    "CertificateReport",
    "CertificationError",
    "CertifyIssue",
    "certify_events",
    "certify_run",
    "certify_sweep",
    "certify_trace",
    "sweep_cells_digest",
]
