"""Trace analysis: summaries, timelines, and regression diffs.

The library behind ``python -m repro.obs`` (see ``repro/obs/__main__``).
Everything here consumes the *recorded* artefacts — JSONL traces written
by :class:`~repro.obs.sinks.JsonlSink`, manifests written by
:mod:`repro.obs.ledger`, bench history files — and produces plain-data
reports, so the same functions back the CLI's text and JSON outputs and
the test suite's assertions.

Three report shapes:

* :class:`TraceSummary` — per-event-kind counts plus the headline run
  figures (rounds, halt, message volume, fault count) extracted from one
  trace;
* a timeline — :func:`render_timeline` turns an event stream into one
  plain-text line per event, in stream order, for eyeballing a run;
* :class:`DiffReport` — :func:`compute_diff` compares two metric
  dictionaries (from traces, manifests, or bench-history entries) and
  flags *configured* regressions: a metric named in ``fail_on`` whose new
  value exceeds the old by more than ``tolerance`` percent.

This module is analysis-side: nothing on the tracing-off hot path
imports it (see the lazy re-exports in ``repro/obs/__init__``).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs.events import (
    Event,
    ExecutionFinished,
    ExecutionStarted,
    FaultInjected,
    GoalVerdict,
    GraceSuppressed,
    MessageSent,
    ProofFinished,
    ProofRoundChecked,
    ProofStarted,
    RoundExecuted,
    SensingIndication,
    SessionAbandoned,
    StrategySwitch,
    TrialFinished,
    TrialStarted,
)
from repro.obs.sinks import iter_trace, read_trace


# --------------------------------------------------------------------------
# Summaries
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TraceSummary:
    """Per-kind counts and headline figures for one trace file."""

    path: str
    trace_schema: Optional[int]
    events: int
    counts: Tuple[Tuple[str, int], ...]
    rounds: int
    halted: bool
    messages: int
    message_bytes: int
    faults_injected: int
    user: Optional[str]
    server: Optional[str]

    def format(self) -> str:
        """Fixed-width text rendering (the CLI's ``summarize`` output)."""
        cast = (
            f"{self.user} vs {self.server}"
            if self.user is not None
            else "(no execution-started event)"
        )
        lines = [
            f"trace      : {self.path}",
            f"schema     : "
            f"{'-' if self.trace_schema is None else self.trace_schema}",
            f"cast       : {cast}",
            f"events     : {self.events}",
            f"rounds     : {self.rounds}{' (halted)' if self.halted else ''}",
            f"messages   : {self.messages} ({self.message_bytes} bytes)",
            f"faults     : {self.faults_injected}",
        ]
        if self.counts:
            lines.append("events by kind:")
            width = max(len(kind) for kind, _ in self.counts)
            lines.extend(
                f"  {kind:<{width}}  {count}" for kind, count in self.counts
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (the CLI's ``--format json`` output)."""
        return {
            "path": self.path,
            "trace_schema": self.trace_schema,
            "events": self.events,
            "counts": dict(self.counts),
            "rounds": self.rounds,
            "halted": self.halted,
            "messages": self.messages,
            "message_bytes": self.message_bytes,
            "faults_injected": self.faults_injected,
            "user": self.user,
            "server": self.server,
        }


def summarize_events(
    events: Iterable[Event],
    *,
    path: str = "<memory>",
    header: Optional[Mapping[str, Any]] = None,
) -> TraceSummary:
    """Build a :class:`TraceSummary` from an ordered event stream.

    Single-pass: any iterable works, including the lazy stream from
    :func:`~repro.obs.sinks.iter_trace`, so a multi-gigabyte trace is
    never materialised.
    """
    kinds: "Counter[str]" = Counter()
    total = 0
    rounds = 0
    halted = False
    messages = 0
    message_bytes = 0
    faults = 0
    user: Optional[str] = None
    server: Optional[str] = None
    for event in events:
        kinds[event.kind] += 1
        total += 1
        if isinstance(event, RoundExecuted):
            rounds += 1
            messages += event.messages
            message_bytes += event.message_bytes
        elif isinstance(event, ExecutionFinished):
            rounds = event.rounds_executed
            halted = event.halted
        elif isinstance(event, ExecutionStarted):
            user = event.user
            server = event.server
        elif isinstance(event, FaultInjected):
            faults += 1
    schema = None
    if header is not None:
        declared = header.get("trace_schema")
        schema = declared if isinstance(declared, int) else None
    return TraceSummary(
        path=path,
        trace_schema=schema,
        events=total,
        counts=tuple(sorted(kinds.items())),
        rounds=rounds,
        halted=halted,
        messages=messages,
        message_bytes=message_bytes,
        faults_injected=faults,
        user=user,
        server=server,
    )


def summarize_trace(path: Union[str, Path]) -> TraceSummary:
    """Stream one JSONL trace and summarise it."""
    header, events = iter_trace(path)
    return summarize_events(events, path=str(path), header=header or None)


# --------------------------------------------------------------------------
# Timeline
# --------------------------------------------------------------------------


def _detail(event: Event) -> str:
    """One human-readable clause describing the event's payload."""
    if isinstance(event, ExecutionStarted):
        return (
            f"{event.user} vs {event.server} on {event.world} "
            f"(max_rounds={event.max_rounds}, seed={event.seed})"
        )
    if isinstance(event, MessageSent):
        return f"{event.sender}->{event.receiver} {event.payload!r}"
    if isinstance(event, RoundExecuted):
        halt = "  HALT" if event.halted else ""
        return f"messages={event.messages} bytes={event.message_bytes}{halt}"
    if isinstance(event, ExecutionFinished):
        return (
            f"rounds={event.rounds_executed} "
            f"{'halted' if event.halted else 'exhausted'}"
        )
    if isinstance(event, FaultInjected):
        return f"{event.fault} at {event.site}"
    if isinstance(event, SensingIndication):
        verdict = "positive" if event.positive else "NEGATIVE"
        return f"candidate {event.candidate_index}: {verdict}"
    if isinstance(event, StrategySwitch):
        wrap = ", wrapped" if event.wrapped else ""
        return (
            f"{event.from_index} -> {event.to_index} ({event.reason}{wrap})"
        )
    if isinstance(event, TrialStarted):
        budget = "open-ended" if event.budget is None else f"budget={event.budget}"
        return (
            f"trial {event.trial_number} of candidate "
            f"{event.candidate_index} ({budget})"
        )
    if isinstance(event, TrialFinished):
        return (
            f"trial {event.trial_number} of candidate "
            f"{event.candidate_index}: {event.reason} "
            f"after {event.rounds_used} round(s)"
        )
    if isinstance(event, GraceSuppressed):
        return f"grace window ({event.grace_rounds} rounds) masked a negative"
    if isinstance(event, GoalVerdict):
        verdict = "ACHIEVED" if event.achieved else "not achieved"
        evidence = (
            f", settled by prefix {event.last_bad_round}"
            if event.last_bad_round is not None
            else ""
        )
        return f"{event.goal}: {verdict} after {event.rounds} round(s){evidence}"
    if isinstance(event, ProofStarted):
        return (
            f"{event.protocol} over GF({event.modulus}), "
            f"claim {event.claimed_value}"
        )
    if isinstance(event, ProofRoundChecked):
        status = "rejected" if event.challenge is None else "passed"
        return (
            f"round {event.index}: {event.op_kind}({event.var}) "
            f"deg<={event.degree_bound} {status}"
        )
    if isinstance(event, ProofFinished):
        if event.accepted:
            return "ACCEPTED"
        return f"REJECTED ({event.reason or 'no reason recorded'})"
    if isinstance(event, SessionAbandoned):
        return (
            f"session {event.session_id} abandoned ({event.reason}) "
            f"after {event.rounds_completed} round(s)"
        )
    payload = {k: v for k, v in event.to_dict().items() if k != "kind"}
    payload.pop("round_index", None)
    return " ".join(f"{k}={v!r}" for k, v in payload.items())


def render_timeline(events: Iterable[Event], *, limit: Optional[int] = None) -> str:
    """One plain-text line per event, in stream order.

    ``limit`` truncates to the first N events (with a trailing marker), so
    a multi-thousand-round trace stays glanceable.  Single-pass: events
    past the limit are counted for the marker but never rendered, so a
    lazy :func:`~repro.obs.sinks.iter_trace` stream works unmaterialised.
    """
    lines: List[str] = []
    truncated = 0
    for event in events:
        if limit is not None and len(lines) >= limit:
            truncated += 1
            continue
        round_index = getattr(event, "round_index", None)
        where = "     -" if round_index is None else f"{round_index:>6}"
        lines.append(f"[{where}] {event.kind:<19} {_detail(event)}")
    if truncated:
        lines.append(f"... {truncated} more event(s) truncated")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Diffs
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DiffEntry:
    """One metric's old/new pair in a diff."""

    metric: str
    old: float
    new: float

    @property
    def delta(self) -> float:
        return self.new - self.old


@dataclass(frozen=True)
class DiffReport:
    """A metric-by-metric comparison of two runs, with verdicts.

    ``regressions`` lists the metrics named in ``fail_on`` whose new value
    exceeded the old by more than the tolerance — the CLI exits 1 exactly
    when this tuple is non-empty.
    """

    old_source: str
    new_source: str
    entries: Tuple[DiffEntry, ...]
    regressions: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        """Fixed-width text rendering (the CLI's ``diff`` output)."""
        lines = [f"old: {self.old_source}", f"new: {self.new_source}"]
        if not self.entries:
            lines.append("no shared numeric metrics to compare")
            return "\n".join(lines)
        width = max(len(e.metric) for e in self.entries)
        for e in self.entries:
            flag = "  << REGRESSION" if e.metric in self.regressions else ""
            lines.append(
                f"  {e.metric:<{width}}  {e.old:g} -> {e.new:g} "
                f"({e.delta:+g}){flag}"
            )
        verdict = (
            "ok"
            if self.ok
            else f"{len(self.regressions)} regression(s): "
            + ", ".join(self.regressions)
        )
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (the CLI's ``--format json`` output)."""
        return {
            "old_source": self.old_source,
            "new_source": self.new_source,
            "metrics": [
                {"metric": e.metric, "old": e.old, "new": e.new, "delta": e.delta}
                for e in self.entries
            ],
            "regressions": list(self.regressions),
            "ok": self.ok,
        }


def compute_diff(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    *,
    old_source: str = "old",
    new_source: str = "new",
    fail_on: Sequence[str] = (),
    tolerance_pct: float = 0.0,
) -> DiffReport:
    """Compare the numeric metrics two runs share.

    A metric regresses when it is named in ``fail_on`` and its new value
    exceeds ``old * (1 + tolerance_pct/100)`` (for an old value of 0, any
    increase beyond 0 counts).  Unknown ``fail_on`` names raise
    ``ValueError`` — a gate that silently checks nothing is worse than no
    gate.
    """
    entries: List[DiffEntry] = []
    for metric in sorted(set(old) & set(new)):
        old_value, new_value = old[metric], new[metric]
        if isinstance(old_value, bool) or isinstance(new_value, bool):
            continue
        if isinstance(old_value, (int, float)) and isinstance(
            new_value, (int, float)
        ):
            entries.append(
                DiffEntry(metric=metric, old=float(old_value), new=float(new_value))
            )
    known = {e.metric for e in entries}
    missing = [metric for metric in fail_on if metric not in known]
    if missing:
        raise ValueError(
            f"--fail-on names metrics absent from both inputs: "
            f"{', '.join(sorted(missing))} (have: {', '.join(sorted(known))})"
        )
    regressions = tuple(
        e.metric
        for e in entries
        if e.metric in fail_on
        and e.new > e.old * (1.0 + tolerance_pct / 100.0) + (
            0.0 if e.old else 1e-12
        )
    )
    return DiffReport(
        old_source=old_source,
        new_source=new_source,
        entries=tuple(entries),
        regressions=regressions,
    )


def trace_metrics(path: Union[str, Path]) -> Dict[str, Any]:
    """The diffable metrics of one JSONL trace (summary + overhead)."""
    from repro.obs.overhead import compute_overhead

    header, events = read_trace(path)
    summary = summarize_events(events, path=str(path), header=header or None)
    overhead = compute_overhead(events)
    return {
        "events": summary.events,
        "rounds": summary.rounds,
        "messages": summary.messages,
        "message_bytes": summary.message_bytes,
        "faults_injected": summary.faults_injected,
        "overhead_rounds": overhead.overhead_rounds,
        "overhead_ratio": overhead.overhead_ratio,
        "switches": overhead.switches,
        "trials": overhead.trials,
    }


def manifest_metrics(path: Union[str, Path]) -> Dict[str, Any]:
    """The diffable metrics of one ledger manifest."""
    from repro.obs.ledger import RunManifest, read_manifest

    manifest = read_manifest(path)
    metrics: Dict[str, Any] = {
        "wall_time_s": manifest.wall_time_s,
        "max_rounds": manifest.max_rounds,
    }
    if isinstance(manifest, RunManifest):
        metrics.update(
            rounds=manifest.rounds,
            achieved=manifest.achieved,
            halted=manifest.halted,
            cpu_time_s=manifest.cpu_time_s,
        )
    return metrics


def metrics_for(path: Union[str, Path]) -> Dict[str, Any]:
    """Dispatch on suffix: ``.jsonl`` is a trace, ``.json`` a manifest."""
    resolved = Path(path)
    if resolved.suffix == ".jsonl":
        return trace_metrics(resolved)
    if resolved.suffix == ".json":
        return manifest_metrics(resolved)
    raise ValueError(
        f"{resolved}: cannot classify input (expected a .jsonl trace or a "
        f".json manifest)"
    )


def history_entries(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a bench-history JSONL file (one ``{manifest, metrics}`` per line)."""
    resolved = Path(path)
    entries: List[Dict[str, Any]] = []
    with resolved.open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            document = json.loads(line)
            if not isinstance(document, dict) or "metrics" not in document:
                raise ValueError(
                    f"{resolved}:{number}: history entries must be JSON "
                    f"objects with a 'metrics' key"
                )
            entries.append(document)
    return entries


def diff_history(
    path: Union[str, Path],
    *,
    fail_on: Sequence[str] = (),
    tolerance_pct: float = 0.0,
) -> DiffReport:
    """Diff the two newest entries of a bench-history file."""
    entries = history_entries(path)
    if len(entries) < 2:
        raise ValueError(
            f"{path}: need at least 2 history entries to diff, "
            f"found {len(entries)}"
        )
    old, new = entries[-2], entries[-1]
    return compute_diff(
        old["metrics"],
        new["metrics"],
        old_source=f"{path} entry {len(entries) - 1}",
        new_source=f"{path} entry {len(entries)}",
        fail_on=fail_on,
        tolerance_pct=tolerance_pct,
    )


__all__ = [
    "DiffEntry",
    "DiffReport",
    "TraceSummary",
    "compute_diff",
    "diff_history",
    "history_entries",
    "manifest_metrics",
    "metrics_for",
    "render_timeline",
    "summarize_events",
    "summarize_trace",
    "trace_metrics",
]
