"""Run ledger: machine-readable provenance for executions and sweeps.

A trace (``JsonlSink``) records *what happened*; a manifest records *what
produced it*: the code version, the seeds, the cast (goal, user, server,
channel — the channel name embeds the fault-schedule identifiers), the
recording policy, and the run's headline figures (rounds, wall/CPU time).
Writing the manifest beside the trace makes a directory of runs
self-describing — every benchmark number stays attributable to the exact
configuration that produced it, which is what turns the paper's overhead
claims into replayable measurements instead of anecdotes.

Two manifest kinds share one schema version (``ledger_schema``):

* :class:`RunManifest` — one execution (``kind="run"``) or one sweep cell
  aggregated over its seeds (``kind="cell"``);
* :class:`SweepManifest` — the top-level index of a ledgered sweep,
  linking the per-cell manifest files.

Serialisation is deterministic: ``ledger_schema`` first, then dataclass
fields in declaration order, fixed separators — manifests of identical
configurations differ only in their timing fields.  :func:`read_manifest`
rejects schema majors it does not understand with a clear error.

:func:`record_run` is the one-call provenance wrapper around
:func:`~repro.core.execution.run_execution`: it traces the run to a JSONL
file, times it, and writes the manifest beside the trace.

This module is analysis-side: nothing in the engine (or any tracing-off
code path) imports it — see the lazy re-exports in ``repro/obs/__init__``.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.core.execution import (
    FULL_RECORDING,
    ExecutionResult,
    FaultyChannelLike,
    RecordingPolicy,
    run_execution,
)
from repro.core.goals import Goal, GoalOutcome
from repro.core.strategy import ServerStrategy, UserStrategy
from repro.obs.events import GoalVerdict
from repro.obs.sinks import JsonlSink
from repro.obs.tracer import Tracer
from repro.version import __version__

#: The manifest schema major this build writes and understands.
LEDGER_SCHEMA = 1


class LedgerSchemaError(ValueError):
    """A manifest declares a schema this build cannot interpret."""


def git_sha() -> Optional[str]:
    """The repository's HEAD commit, best effort (``None`` off a checkout).

    Provenance only — never used in any computation — so every failure
    mode (no git binary, not a repository, timeout) degrades to ``None``.
    """
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = completed.stdout.strip()
    if completed.returncode != 0 or not sha:
        return None
    return sha


def _serialise(manifest: Any) -> Dict[str, Any]:
    """``ledger_schema`` first, then dataclass fields in declared order."""
    data: Dict[str, Any] = {"ledger_schema": LEDGER_SCHEMA}
    for f in fields(manifest):
        value = getattr(manifest, f.name)
        data[f.name] = list(value) if isinstance(value, tuple) else value
    return data


def _check_schema(data: Mapping[str, Any], source: str) -> None:
    declared = data.get("ledger_schema")
    if not isinstance(declared, int) or declared <= 0:
        raise LedgerSchemaError(
            f"{source}: malformed ledger_schema value {declared!r}"
        )
    if declared > LEDGER_SCHEMA:
        raise LedgerSchemaError(
            f"{source}: ledger_schema {declared} is newer than the supported "
            f"major {LEDGER_SCHEMA}; read it with a matching repro build"
        )


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one execution (``kind="run"``) or sweep cell (``"cell"``).

    Identity fields — ``goal``, ``user``, ``server``, ``channel`` (the
    fault-channel name, which embeds its fault-schedule identifiers;
    ``None`` = perfect link), ``seeds``, ``max_rounds``, ``recording`` —
    pin down exactly which configuration ran; :meth:`run_id` hashes them
    into a stable short identifier.  ``rounds`` / ``achieved`` / ``halted``
    are totals over the seeds; ``wall_time_s`` / ``cpu_time_s`` are the
    only machine-dependent values.  ``trace_path`` names the JSONL trace
    this manifest describes (relative to the manifest's directory), when
    one was written.
    """

    kind: str
    goal: str
    user: str
    server: str
    channel: Optional[str]
    recording: str
    seeds: Tuple[int, ...]
    max_rounds: int
    rounds: int
    achieved: int
    halted: int
    wall_time_s: float
    cpu_time_s: float
    trace_path: Optional[str] = None
    trace_sha256: Optional[str] = None
    repro_version: str = __version__
    git_sha: Optional[str] = None

    def run_id(self) -> str:
        """A stable 12-hex-digit digest of the identity fields."""
        identity = json.dumps(
            [
                self.kind, self.goal, self.user, self.server, self.channel,
                self.recording, list(self.seeds), self.max_rounds,
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(identity.encode("utf-8")).hexdigest()[:12]

    def to_json(self) -> str:
        """Deterministic single-document JSON (trailing newline included)."""
        return json.dumps(_serialise(self), indent=2) + "\n"

    @staticmethod
    def from_dict(data: Mapping[str, Any], source: str = "manifest") -> "RunManifest":
        _check_schema(data, source)
        payload = {f.name: data[f.name] for f in fields(RunManifest) if f.name in data}
        payload["seeds"] = tuple(payload.get("seeds", ()))
        return RunManifest(**payload)


@dataclass(frozen=True)
class SweepManifest:
    """Top-level index of a ledgered sweep: one entry per cell manifest.

    ``backend`` names the executor that dispatched the cells (``serial``,
    ``process``, ``batch``, ``batch-process``) and ``batch_width`` records
    the lockstep width for batched backends (``None`` otherwise) — results
    are backend-independent by contract, so these are provenance, not
    identity.
    """

    goal: str
    user: str
    cells: Tuple[str, ...]
    seeds: Tuple[int, ...]
    max_rounds: int
    wall_time_s: float
    cells_sha256: Optional[str] = None
    repro_version: str = __version__
    git_sha: Optional[str] = None
    kind: str = "sweep"
    backend: str = "serial"
    batch_width: Optional[int] = None

    def to_json(self) -> str:
        """Deterministic single-document JSON (trailing newline included)."""
        return json.dumps(_serialise(self), indent=2) + "\n"

    @staticmethod
    def from_dict(data: Mapping[str, Any], source: str = "manifest") -> "SweepManifest":
        _check_schema(data, source)
        payload = {f.name: data[f.name] for f in fields(SweepManifest) if f.name in data}
        payload["cells"] = tuple(payload.get("cells", ()))
        payload["seeds"] = tuple(payload.get("seeds", ()))
        return SweepManifest(**payload)


Manifest = Union[RunManifest, SweepManifest]


def write_manifest(manifest: Manifest, path: Union[str, Path]) -> Path:
    """Write one manifest as a JSON document; returns the resolved path."""
    resolved = Path(path)
    resolved.parent.mkdir(parents=True, exist_ok=True)
    resolved.write_text(manifest.to_json(), encoding="utf-8")
    return resolved


def read_manifest(path: Union[str, Path]) -> Manifest:
    """Parse a manifest file back into its typed form (by ``kind``).

    Raises :class:`LedgerSchemaError` on unknown schema majors and
    ``ValueError`` on a missing/unknown ``kind`` — a ledger directory
    either round-trips exactly or fails loudly.
    """
    resolved = Path(path)
    data = json.loads(resolved.read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise ValueError(f"{resolved}: manifest is not a JSON object")
    kind = data.get("kind")
    if kind == "sweep":
        return SweepManifest.from_dict(data, source=str(resolved))
    if kind in ("run", "cell"):
        return RunManifest.from_dict(data, source=str(resolved))
    raise ValueError(f"{resolved}: unknown manifest kind {kind!r}")


@dataclass(frozen=True)
class RecordedRun:
    """What :func:`record_run` hands back: the run plus its paper trail."""

    execution: ExecutionResult
    manifest: RunManifest
    manifest_path: Path
    trace_path: Path


def file_sha256(path: Union[str, Path]) -> str:
    """SHA-256 of a file's bytes — the certificate digest of a trace."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def channel_spec(channel: Optional[FaultyChannelLike]) -> Optional[Dict[str, Any]]:
    """The channel's self-description for the trace header, if it has one.

    Custom channels without a ``spec()`` (or whose schedules cannot
    describe themselves) simply record no spec: the run stays certifiable
    except for fault replay.  Shared by :func:`record_run` and the session
    service (:mod:`repro.serve`), which write the same trace headers.
    """
    spec = getattr(channel, "spec", None)
    if not callable(spec):
        return None
    try:
        described = spec()
    except NotImplementedError:
        return None
    return described if isinstance(described, dict) else None


def emit_goal_verdict(tracer: Tracer, goal: Goal, outcome: GoalOutcome) -> None:
    """Record ``outcome`` as a :class:`~repro.obs.events.GoalVerdict` event.

    The verdict goes *into* the trace so the claim being certified is part
    of the evidence stream, not only manifest metadata.  Every writer of a
    certifiable trace (:func:`record_run`, :mod:`repro.serve` sessions)
    emits its verdict through this helper so the event shape cannot drift.
    """
    verdict = outcome.compact_verdict
    tracer.emit(
        GoalVerdict(
            goal=goal.name,
            compact=goal.is_compact,
            achieved=outcome.achieved,
            halted=outcome.halted,
            rounds=outcome.rounds,
            settle_fraction=(
                goal.settle_fraction if goal.is_compact else None
            ),
            total_prefixes=None if verdict is None else verdict.total_prefixes,
            bad_prefixes=None if verdict is None else verdict.bad_prefixes,
            last_bad_round=None if verdict is None else verdict.last_bad_round,
            note=outcome.note,
        )
    )


def record_run(
    user: UserStrategy,
    server: ServerStrategy,
    goal: Goal,
    *,
    max_rounds: int,
    seed: int = 0,
    out_dir: Union[str, Path],
    name: str = "run",
    recording: RecordingPolicy = FULL_RECORDING,
    channel: Optional[FaultyChannelLike] = None,
    certify: bool = False,
) -> RecordedRun:
    """Run one traced execution and write ``<name>.jsonl`` + ``<name>.json``.

    The provenance-first entry point: the trace captures the event stream,
    the manifest captures what produced it, and the pair lands in
    ``out_dir`` so the directory is self-describing.  Universal users
    (anything exposing a reassignable ``tracer`` attribute) contribute
    their sensing/switch/trial events to the same trace; the attribute is
    restored afterwards.

    The trace doubles as a certificate: the header carries the channel's
    fault spec (when it can describe itself), the goal's verdict is
    recorded as a :class:`~repro.obs.events.GoalVerdict` event with its
    evidence, and the manifest stamps the trace's SHA-256.  With
    ``certify=True`` the freshly written pair is immediately re-checked by
    :func:`repro.obs.certify.certify_trace`;
    :class:`~repro.obs.certify.CertificationError` means the recording
    pipeline itself is broken.
    """
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    trace_path = directory / f"{name}.jsonl"
    manifest_path = directory / f"{name}.json"

    header: Dict[str, Any] = {}
    spec = channel_spec(channel)
    if spec is not None:
        header["channel"] = spec
    tracer = Tracer(sink=JsonlSink(trace_path, header=header))
    user_traced = hasattr(user, "tracer")
    saved = user.tracer if user_traced else None
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    if user_traced:
        user.tracer = tracer
    try:
        execution = run_execution(
            user, server, goal.world,
            max_rounds=max_rounds, seed=seed,
            tracer=tracer, recording=recording, channel=channel,
        )
        outcome = goal.evaluate(execution)
        emit_goal_verdict(tracer, goal, outcome)
    finally:
        if user_traced:
            user.tracer = saved
        tracer.close()
    wall = time.perf_counter() - wall_start
    cpu = time.process_time() - cpu_start

    manifest = RunManifest(
        kind="run",
        goal=goal.name,
        user=user.name,
        server=server.name,
        channel=None if channel is None else getattr(channel, "name", "channel"),
        recording=recording.label,
        seeds=(seed,),
        max_rounds=max_rounds,
        rounds=execution.rounds_executed,
        achieved=int(outcome.achieved),
        halted=int(execution.halted),
        wall_time_s=round(wall, 6),
        cpu_time_s=round(cpu, 6),
        trace_path=trace_path.name,
        trace_sha256=file_sha256(trace_path),
        git_sha=git_sha(),
    )
    write_manifest(manifest, manifest_path)
    if certify:
        from repro.obs.certify import certify_run

        certify_run(trace_path, manifest_path)
    return RecordedRun(
        execution=execution,
        manifest=manifest,
        manifest_path=manifest_path,
        trace_path=trace_path,
    )


__all__ = [
    "LEDGER_SCHEMA",
    "LedgerSchemaError",
    "Manifest",
    "RecordedRun",
    "RunManifest",
    "SweepManifest",
    "channel_spec",
    "emit_goal_verdict",
    "file_sha256",
    "git_sha",
    "read_manifest",
    "record_run",
    "write_manifest",
]
