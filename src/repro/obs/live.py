"""Live telemetry: the in-flight observability plane for long runs.

Everything in :mod:`repro.obs` before this module is *post-hoc*: traces,
ledgers, and certificates are written while a run executes but read after
it ends.  A long-running :class:`~repro.serve.engine.ServeEngine` needs
the complementary live half — what is the service doing *right now*, and
what was it doing just before it died — without giving up the repo's
determinism discipline (no wall clocks in payloads, injectable monotonic
clocks, schema-versioned files).

Three pieces live here:

* :class:`MetricsSampler` — periodically samples a
  :class:`~repro.obs.counters.CounterSet` plus caller-supplied gauges to
  a ``metrics.jsonl`` stream: a ``{"metrics_schema": 1}`` header line,
  then one sample object per tick with a monotonic ``seq``, counter
  *deltas* since the previous tick, gauge *levels*, and *cumulative*
  histogram bucket state.  Every tick is flushed, so a SIGKILL loses at
  most one interval; :func:`read_metrics` tolerates (and drops) a
  half-written final line.  Summing the deltas of a complete stream
  reproduces the final counter totals exactly.

* :class:`AdminServer` — a deliberately tiny HTTP/1.0 scrape endpoint
  bound to loopback or a UNIX socket, serving caller-registered routes
  (for the serve engine: ``/status`` and ``/sessions`` as JSON and
  ``/metrics`` as Prometheus text exposition,
  :func:`render_prometheus`).  One request per connection, no keep-alive,
  no external dependencies.

* ``top`` — :func:`render_top` and friends turn a metrics stream (or a
  live ``/status`` scrape) into the refreshing rates/quantiles table
  behind ``python -m repro.obs top``.

:func:`write_metrics` also lives here: the compose-don't-clobber JSON
summary writer used for ``engine.json`` (merge onto whatever is already
in the file, stamp ``metrics_schema`` and the git SHA), replacing the
silently-overwriting summary write the serve engine started with.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.obs.counters import (
    CounterSet,
    Histogram,
    HistogramSnapshot,
    bucket_upper,
)

#: The metrics-stream schema major this build writes and understands.
METRICS_SCHEMA = 1

#: The serve engine's metric contract, mirrored by a static-vs-runtime
#: self-check in the tests: every counter/histogram the engine touches
#: and every gauge the sampler and admin plane report must appear here,
#: so dashboards and scrape configs can be written against a fixed list.
SERVE_COUNTERS = (
    "serve.sessions_submitted",
    "serve.sessions_rejected",
    "serve.sessions_parked",
    "serve.sessions_settled",
    "serve.sessions_achieved",
    "serve.sessions_failed",
    "serve.rounds",
)
SERVE_HISTOGRAMS = (
    "serve.open_sessions",
    "serve.queue_depth",
    "serve.session_rounds",
    "serve.session_wall_ms",
)
SERVE_GAUGES = (
    "open_sessions",
    "queue_depth",
    "draining",
)

#: Gauge levels are read on demand from a zero-argument callable so the
#: sampler never holds a reference into engine internals.
GaugeReader = Callable[[], Mapping[str, float]]


class MetricsSchemaError(ValueError):
    """A metrics stream cannot be interpreted by this build."""


class MetricsSampler:
    """Periodic counter/gauge/histogram snapshots to a JSONL stream.

    The sampler owns its file handle: the header line is written at
    construction, :meth:`tick` appends one flushed sample, and
    :meth:`close` writes a final tick (capturing the tail deltas) before
    releasing the handle — so the stream's counter deltas always sum to
    the accumulator's final totals.  :meth:`run` is the asyncio driver
    the serve engine spawns; :meth:`tick` stays callable directly so
    tests (and synchronous callers) need no event loop.

    The clock is injectable and monotonic; nothing wall-clock-derived is
    written, keeping the stream free of ambient nondeterminism beyond
    the inherently timing-shaped ``uptime_s``.
    """

    def __init__(
        self,
        counters: CounterSet,
        path: Union[str, Path],
        *,
        interval_s: float = 1.0,
        gauges: Optional[GaugeReader] = None,
        header: Optional[Mapping[str, Any]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive: {interval_s}")
        self.path = Path(path)
        self.interval_s = interval_s
        self._counters = counters
        self._gauges = gauges
        self._clock = clock
        self._started = clock()
        self._seq = 0
        self._last: Dict[str, int] = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = self.path.open("w", encoding="utf-8")
        head: Dict[str, Any] = {
            "metrics_schema": METRICS_SCHEMA,
            "interval_s": interval_s,
        }
        for key, value in (header or {}).items():
            if key not in head:
                head[key] = value
        self._file.write(json.dumps(head, separators=(",", ":")))
        self._file.write("\n")
        self._file.flush()

    @property
    def closed(self) -> bool:
        return self._file.closed

    @property
    def seq(self) -> int:
        """Sequence number of the most recently written sample."""
        return self._seq

    def tick(self) -> Dict[str, Any]:
        """Write one sample: counter deltas, gauge levels, histograms.

        Returns the sample object (handy in tests).  The write is
        flushed before returning — the at-most-one-interval loss bound.
        """
        snapshot = self._counters.snapshot()
        deltas: Dict[str, int] = {}
        histograms: Dict[str, HistogramSnapshot] = {}
        for name, value in snapshot.items():
            if isinstance(value, int):
                delta = value - self._last.get(name, 0)
                self._last[name] = value
                if delta:
                    deltas[name] = delta
            else:
                histograms[name] = value
        self._seq += 1
        sample: Dict[str, Any] = {
            "seq": self._seq,
            "uptime_s": round(self._clock() - self._started, 6),
            "counters": deltas,
            "gauges": dict(self._gauges()) if self._gauges is not None else {},
            "histograms": histograms,
        }
        self._file.write(json.dumps(sample, separators=(",", ":")))
        self._file.write("\n")
        self._file.flush()
        return sample

    async def run(self) -> None:
        """Tick every ``interval_s`` until cancelled (the engine's task)."""
        while True:
            await asyncio.sleep(self.interval_s)
            # Deliberate inline I/O on the loop: one small flushed write
            # per interval, the same single-threaded write path as the
            # session ledger (docs/SERVING.md).
            self.tick()  # reprolint: disable=RL101

    def close(self) -> None:
        """Final tick (tail deltas) and release the handle.  Idempotent."""
        if self._file.closed:
            return
        self.tick()
        self._file.close()


def read_metrics(
    path: Union[str, Path],
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Parse a metrics stream into ``(header, samples)``.

    A half-written *final* line — the SIGKILL case the flush contract
    allows — is dropped silently; a malformed line anywhere else raises
    :class:`MetricsSchemaError`, as does a missing or unsupported schema
    header.
    """
    resolved = Path(path)
    lines = resolved.read_text(encoding="utf-8").splitlines()
    records: List[Dict[str, Any]] = []
    for number, text in enumerate(lines, start=1):
        stripped = text.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as exc:
            if number == len(lines):
                break  # torn final write: the allowed one-interval loss
            raise MetricsSchemaError(
                f"{resolved}:{number}: not valid JSON: {exc.msg}"
            ) from exc
        if not isinstance(record, dict):
            raise MetricsSchemaError(
                f"{resolved}:{number}: metrics line is not a JSON object"
            )
        records.append(record)
    if not records or "metrics_schema" not in records[0]:
        raise MetricsSchemaError(f"{resolved}: missing metrics_schema header")
    header = records[0]
    declared = header["metrics_schema"]
    if not isinstance(declared, int) or declared <= 0:
        raise MetricsSchemaError(
            f"{resolved}: malformed metrics_schema value {declared!r}"
        )
    if declared > METRICS_SCHEMA:
        raise MetricsSchemaError(
            f"{resolved}: metrics_schema {declared} is newer than the "
            f"supported major {METRICS_SCHEMA}"
        )
    return header, records[1:]


def cumulative_counters(samples: Iterable[Mapping[str, Any]]) -> Dict[str, int]:
    """Sum per-tick counter deltas back into cumulative totals."""
    totals: Dict[str, int] = {}
    for sample in samples:
        for name, delta in sample.get("counters", {}).items():
            totals[name] = totals.get(name, 0) + int(delta)
    return totals


def final_histograms(
    samples: Iterable[Mapping[str, Any]],
) -> Dict[str, HistogramSnapshot]:
    """The last (cumulative) histogram snapshot seen for each name."""
    last: Dict[str, HistogramSnapshot] = {}
    for sample in samples:
        for name, snap in sample.get("histograms", {}).items():
            last[name] = snap
    return last


def write_metrics(
    path: Union[str, Path],
    payload: Mapping[str, Any],
    *,
    git_sha: Optional[str] = None,
) -> Dict[str, Any]:
    """Compose-don't-clobber JSON summary write with provenance stamps.

    Merges ``payload`` over whatever object the file already holds (so a
    re-run refreshes its own fields without erasing keys another tool
    parked there — the ``BENCH_serve.json`` discipline), then stamps
    ``metrics_schema`` and the ``git_sha`` (pass a pre-computed SHA to
    avoid the ``git rev-parse`` subprocess — the serve engine hands over
    its warmed cache).  Returns the merged object as written.
    """
    if git_sha is None:
        from repro.obs.ledger import git_sha as _current_git_sha

        git_sha = _current_git_sha()
    resolved = Path(path)
    merged: Dict[str, Any] = {}
    if resolved.exists():
        try:
            existing = json.loads(resolved.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict):
            merged.update(existing)
    merged.update(payload)
    merged["metrics_schema"] = METRICS_SCHEMA
    merged["git_sha"] = git_sha
    resolved.parent.mkdir(parents=True, exist_ok=True)
    resolved.write_text(
        json.dumps(merged, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return merged


# ----------------------------------------------------------------------
# Prometheus text exposition


def _prom_name(name: str) -> str:
    """``serve.session_wall_ms`` → ``repro_serve_session_wall_ms``."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{cleaned}"


def _prom_float(value: float) -> str:
    """Float formatting per the exposition format (Go-style specials)."""
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value)


def render_prometheus(
    stats: Mapping[str, Any], gauges: Optional[Mapping[str, float]] = None
) -> str:
    """A counters snapshot (+ gauge levels) as Prometheus text exposition.

    Counters become ``<name>_total`` counter samples; histogram
    snapshots become native Prometheus histograms — cumulative
    ``_bucket{le="..."}`` series at the fixed-log boundaries (the low
    bucket surfaces as ``le="0"``), plus ``_sum`` and ``_count``.
    """
    lines: List[str] = []
    for name, value in stats.items():
        metric = _prom_name(name)
        if isinstance(value, int):
            lines.append(f"# TYPE {metric}_total counter")
            lines.append(f"{metric}_total {value}")
        elif isinstance(value, Mapping):
            lines.append(f"# TYPE {metric} histogram")
            cumulative = int(value.get("low", 0))
            if cumulative:
                lines.append(f'{metric}_bucket{{le="0"}} {cumulative}')
            buckets = value.get("buckets", {})
            if isinstance(buckets, Mapping):
                for key in sorted(buckets, key=int):
                    cumulative += int(buckets[key])
                    edge = _prom_float(bucket_upper(int(key)))
                    lines.append(f'{metric}_bucket{{le="{edge}"}} {cumulative}')
            count = int(value.get("count", 0))
            lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
            lines.append(f"{metric}_sum {_prom_float(float(value.get('total', 0.0)))}")
            lines.append(f"{metric}_count {count}")
    for name, level in (gauges or {}).items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_float(float(level))}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Text exposition → ``{sample_name_with_labels: value}``.

    The inverse of :func:`render_prometheus`, shared by the tests and the
    CI smoke so "the scrape parses and agrees with ``engine.json``" is
    checked with the same tokenizer everywhere.
    """
    samples: Dict[str, float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise MetricsSchemaError(f"unparseable exposition line: {raw!r}")
        try:
            samples[name] = float(value)
        except ValueError as exc:
            raise MetricsSchemaError(
                f"unparseable exposition value: {raw!r}"
            ) from exc
    return samples


# ----------------------------------------------------------------------
# Admin plane

#: A route returns ``(content_type, body)``; the server adds the rest.
AdminRoute = Callable[[], Tuple[str, str]]

_LOOPBACK_HOSTS = frozenset({"127.0.0.1", "localhost", "::1"})


def json_route(provider: Callable[[], Any]) -> AdminRoute:
    """Wrap a payload provider as a JSON admin route."""

    def route() -> Tuple[str, str]:
        return (
            "application/json",
            json.dumps(provider(), indent=2, sort_keys=False) + "\n",
        )

    return route


class AdminServer:
    """A minimal localhost/UNIX-socket HTTP scrape endpoint.

    One request per connection, ``GET`` only, routes registered as
    callables returning ``(content_type, body)`` — enough surface for a
    Prometheus scraper, ``curl``, and ``repro.obs top``, and small
    enough to audit at a glance.  TCP specs must name a loopback host:
    the admin plane is an operator's side door, never a public API.
    """

    def __init__(self, routes: Mapping[str, AdminRoute]) -> None:
        self._routes = dict(routes)
        self._server: Optional[asyncio.AbstractServer] = None
        self._unix_path: Optional[Path] = None
        self.address: Optional[str] = None

    async def start(self, spec: str) -> str:
        """Bind per ``spec`` and return the resolved address.

        ``spec`` containing ``/`` is a UNIX socket path; otherwise
        ``[host:]port`` on loopback (port ``0`` picks an ephemeral port,
        and the resolved address reports the real one).
        """
        if self._server is not None:
            raise RuntimeError("admin server already started")
        if "/" in spec:
            self._unix_path = Path(spec)
            self._unix_path.parent.mkdir(parents=True, exist_ok=True)
            if self._unix_path.exists():
                # One stale-socket unlink at bind time: startup-budget
                # metadata I/O, before any session is being served.
                self._unix_path.unlink()  # reprolint: disable=RL101
            self._server = await asyncio.start_unix_server(
                self._handle, path=str(self._unix_path)
            )
            self.address = str(self._unix_path)
            return self.address
        host, _, port_text = spec.rpartition(":")
        host = host or "127.0.0.1"
        if host not in _LOOPBACK_HOSTS:
            raise ValueError(f"admin plane binds loopback only, got {host!r}")
        try:
            port = int(port_text)
        except ValueError as exc:
            raise ValueError(f"malformed admin spec {spec!r}") from exc
        self._server = await asyncio.start_server(self._handle, host, port)
        bound = self._server.sockets[0].getsockname()
        self.address = f"{bound[0]}:{bound[1]}"
        return self.address

    async def aclose(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if self._unix_path is not None and self._unix_path.exists():
            # Teardown-time metadata I/O: the engine has already drained.
            self._unix_path.unlink()  # reprolint: disable=RL101

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readline()
            parts = request.decode("latin-1").split()
            # Drain request headers (bounded: readline caps line length).
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            if len(parts) < 2 or parts[0] != "GET":
                await self._respond(writer, 405, "text/plain", "GET only\n")
                return
            route = self._routes.get(parts[1].rstrip("/") or "/")
            if route is None:
                known = " ".join(sorted(self._routes))
                await self._respond(
                    writer, 404, "text/plain", f"unknown path; routes: {known}\n"
                )
                return
            content_type, body = route()
            await self._respond(writer, 200, content_type, body)
        finally:
            writer.close()

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: str,
    ) -> None:
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}.get(
            status, "Error"
        )
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.0 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()


async def fetch_admin(spec: str, path: str = "/status") -> str:
    """Async in-process scrape of an :class:`AdminServer` route body."""
    if "/" in spec.split(":", 1)[0] or ":" not in spec:
        reader, writer = await asyncio.open_unix_connection(spec)
    else:
        host, _, port = spec.rpartition(":")
        reader, writer = await asyncio.open_connection(host or "127.0.0.1", int(port))
    writer.write(f"GET {path} HTTP/1.0\r\nHost: admin\r\n\r\n".encode("latin-1"))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    return _http_body(raw)


def scrape_admin(spec: str, path: str = "/status", timeout_s: float = 5.0) -> str:
    """Blocking scrape for out-of-process callers (CLI, CI smoke)."""
    if "/" in spec.split(":", 1)[0] or ":" not in spec:
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.settimeout(timeout_s)
        conn.connect(spec)
    else:
        host, _, port = spec.rpartition(":")
        conn = socket.create_connection(
            (host or "127.0.0.1", int(port)), timeout=timeout_s
        )
    try:
        conn.sendall(f"GET {path} HTTP/1.0\r\nHost: admin\r\n\r\n".encode("latin-1"))
        chunks: List[bytes] = []
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    finally:
        conn.close()
    return _http_body(b"".join(chunks))


def _http_body(raw: bytes) -> str:
    head, separator, body = raw.partition(b"\r\n\r\n")
    if not separator:
        raise MetricsSchemaError("malformed admin response (no header break)")
    status = head.split(b"\r\n", 1)[0].decode("latin-1")
    if " 200 " not in f"{status} ":
        raise MetricsSchemaError(f"admin scrape failed: {status}")
    return body.decode("utf-8")


# ----------------------------------------------------------------------
# top: the refreshing rates/quantiles table


def build_view(
    counters: Mapping[str, Any],
    gauges: Mapping[str, float],
    *,
    uptime_s: float = 0.0,
    seq: int = 0,
) -> Dict[str, Any]:
    """Normalise either telemetry source into the shape ``render_top`` eats."""
    plain: Dict[str, int] = {}
    histograms: Dict[str, HistogramSnapshot] = {}
    for name, value in counters.items():
        if isinstance(value, int):
            plain[name] = value
        elif isinstance(value, Mapping):
            histograms[name] = dict(value)
    return {
        "seq": seq,
        "uptime_s": uptime_s,
        "counters": plain,
        "histograms": histograms,
        "gauges": dict(gauges),
    }


def view_from_samples(samples: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold a metrics stream's samples into the latest cumulative view."""
    if not samples:
        return build_view({}, {})
    last = samples[-1]
    counters: Dict[str, Any] = dict(cumulative_counters(samples))
    counters.update(final_histograms(samples))
    return build_view(
        counters,
        last.get("gauges", {}),
        uptime_s=float(last.get("uptime_s", 0.0)),
        seq=int(last.get("seq", 0)),
    )


def render_top(
    view: Mapping[str, Any], previous: Optional[Mapping[str, Any]] = None
) -> str:
    """One ``top`` frame: gauges, counter rates, histogram quantiles.

    Rates come from the difference against ``previous`` (another view,
    typically one refresh earlier); without one, rates average over the
    whole uptime.
    """
    lines: List[str] = []
    uptime = float(view.get("uptime_s", 0.0))
    lines.append(f"uptime {uptime:8.1f}s   seq {int(view.get('seq', 0))}")
    gauges = view.get("gauges", {})
    if gauges:
        levels = "   ".join(f"{k}={g:g}" for k, g in gauges.items())
        lines.append(f"gauges: {levels}")
    lines.append("")
    lines.append(f"{'counter':<32}{'total':>12}{'rate/s':>12}")
    prev_counters: Mapping[str, int] = (previous or {}).get("counters", {})
    prev_uptime = float((previous or {}).get("uptime_s", 0.0))
    span = uptime - prev_uptime
    for name, total in view.get("counters", {}).items():
        delta = total - prev_counters.get(name, 0)
        window = span if previous is not None and span > 0 else uptime
        rate = delta / window if window > 0 else 0.0
        lines.append(f"{name:<32}{total:>12}{rate:>12.1f}")
    histograms = view.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append(
            f"{'histogram':<32}{'count':>10}{'p50':>10}{'p95':>10}{'p99':>10}"
            f"{'max':>10}"
        )
        for name, snap in histograms.items():
            h = Histogram.from_snapshot(name, snap)
            if not h.count:
                continue
            lines.append(
                f"{name:<32}{h.count:>10}"
                f"{h.quantile(0.5):>10.1f}{h.quantile(0.95):>10.1f}"
                f"{h.quantile(0.99):>10.1f}{h.maximum:>10.1f}"
            )
    return "\n".join(lines) + "\n"


def top_frames(
    source: str,
    *,
    frames: int = 0,
    interval_s: float = 2.0,
    follow: bool = False,
    write: Callable[[str], None] = lambda text: print(text, end=""),
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Drive ``repro.obs top``: render frames from a file or endpoint.

    ``source`` is a ``metrics.jsonl`` path unless it looks like an admin
    endpoint (``host:port`` or a ``.sock`` path), in which case each
    frame scrapes ``/status``.  ``follow`` keeps refreshing (ANSI clear
    between frames) until ``frames`` is exhausted — ``frames=0`` with
    ``follow`` runs until interrupted, and without ``follow`` renders a
    single frame.
    """
    endpoint = source.endswith(".sock") or (
        ":" in source and "/" not in source.split(":", 1)[0]
    )
    previous: Optional[Dict[str, Any]] = None
    remaining = frames if frames > 0 else (None if follow else 1)
    rendered = 0
    while remaining is None or rendered < remaining:
        if endpoint:
            status = json.loads(scrape_admin(source, "/status"))
            view = build_view(
                status.get("counters", {}),
                status.get("gauges", {}),
                uptime_s=float(status.get("uptime_s", 0.0)),
                seq=int(status.get("seq", 0)),
            )
        else:
            _, samples = read_metrics(source)
            view = view_from_samples(samples)
        frame = render_top(view, previous)
        if follow:
            write("\x1b[2J\x1b[H")
        write(frame)
        previous = view
        rendered += 1
        if remaining is None or rendered < remaining:
            sleep(interval_s)
    return 0
