"""Wall-clock phase timers.

Accumulates ``time.perf_counter`` spans per named phase, so a benchmark can
split "where did the wall time go" into engine rounds vs. sensing vs.
reporting without a profiler.  Timing is the one part of a trace that is
*not* deterministic; it lives in its own object (never inside events) so
that JSONL traces of the same seeded run stay byte-identical.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterator, Tuple


class _Span:
    """Context manager that adds its elapsed time to one phase bucket."""

    __slots__ = ("_timer", "_name", "_start")

    def __init__(self, timer: "PhaseTimer", name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._timer._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer._add(self._name, self._timer._clock() - self._start)


class PhaseTimer:
    """Named accumulating wall-clock buckets.

    >>> timer = PhaseTimer(clock=iter([0.0, 1.5]).__next__)
    >>> with timer.phase("engine"):
    ...     pass
    >>> timer.total("engine")
    1.5

    ``clock`` is injectable for tests; it defaults to
    :func:`time.perf_counter`.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._totals: Dict[str, float] = {}
        self._entries: Dict[str, int] = {}

    def phase(self, name: str) -> _Span:
        """A context manager timing one entry of phase ``name``."""
        return _Span(self, name)

    def _add(self, name: str, elapsed: float) -> None:
        self._totals[name] = self._totals.get(name, 0.0) + elapsed
        self._entries[name] = self._entries.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Accumulated seconds in phase ``name`` (0.0 if never entered)."""
        return self._totals.get(name, 0.0)

    def entries(self, name: str) -> int:
        """How many spans of phase ``name`` completed."""
        return self._entries.get(name, 0)

    def snapshot(self) -> Dict[str, float]:
        """Phase → accumulated seconds, in first-entered order."""
        return dict(self._totals)

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(self._totals.items())

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v:.4f}s" for k, v in self._totals.items())
        return f"<PhaseTimer {parts or 'empty'}>"
