"""Structured tracing and metrics for the execution engine.

The paper's universal user is a *dynamic* — enumerate, sense, switch — and
this package makes that dynamic inspectable: typed events
(:mod:`.events`), monotonic counters and histograms (:mod:`.counters`),
wall-clock phase timers (:mod:`.timers`), pluggable sinks including a
deterministic JSONL writer (:mod:`.sinks`), and the :class:`~.tracer.Tracer`
that ties them together (:mod:`.tracer`).

Instrumented call sites: ``run_execution(..., tracer=)`` (round and
message events), the universal users (sensing, switch, and trial events),
:class:`~repro.core.sensing.GraceSensing` (grace-suppression events), and
``analysis.runner.sweep(..., telemetry=True)`` (per-cell counters).

Tracing is strictly opt-in and the off path is allocation-free; see
``docs/OBSERVABILITY.md`` for the taxonomy and usage patterns.

The read/analysis half of the stack — the run ledger (:mod:`.ledger`),
overhead accounting (:mod:`.overhead`), the certificate checker
(:mod:`.certify`), the live-telemetry plane (:mod:`.live`), and the
``python -m repro.obs`` trace CLI (:mod:`.analyze`) — is re-exported
*lazily* (PEP 562): the engine's ``from repro.obs.events import ...``
runs this ``__init__``, and the tracing-off path must not pay for (or
even load) analysis-side code.  The flight recorder (:mod:`.flight`) is
emit-side and eager: a bounded ring plus :func:`dump_flight` for the
last-events-before-death black box.
"""

from repro.obs.counters import Counter, CounterSet, Histogram
from repro.obs.events import (
    Event,
    ExecutionFinished,
    ExecutionStarted,
    FaultInjected,
    FaultRecovered,
    GoalVerdict,
    GraceSuppressed,
    MessageSent,
    ProofFinished,
    ProofRoundChecked,
    ProofStarted,
    RoundExecuted,
    SensingIndication,
    SessionAbandoned,
    StrategySwitch,
    TrialFinished,
    TrialStarted,
    event_from_dict,
    event_kinds,
)
from repro.obs.flight import FlightBuffer, TeeSink, dump_flight
from repro.obs.sinks import (
    TRACE_SCHEMA,
    TRACE_SCHEMA_MINOR,
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    TraceSchemaError,
    iter_trace,
    iter_trace_numbered,
    read_jsonl,
    read_trace,
)
from repro.obs.timers import PhaseTimer
from repro.obs.tracer import NoopTracer, Tracer, TracerLike, is_tracing

#: Analysis-side names resolved on first attribute access (PEP 562), so
#: importing the emit-side modules never loads ledger/overhead code.
_LAZY_EXPORTS = {
    "RunManifest": "repro.obs.ledger",
    "SweepManifest": "repro.obs.ledger",
    "record_run": "repro.obs.ledger",
    "OverheadReport": "repro.obs.overhead",
    "StrategyAttribution": "repro.obs.overhead",
    "compute_overhead": "repro.obs.overhead",
    "DiffReport": "repro.obs.analyze",
    "TraceSummary": "repro.obs.analyze",
    "compute_diff": "repro.obs.analyze",
    "render_timeline": "repro.obs.analyze",
    "summarize_trace": "repro.obs.analyze",
    "CertificateReport": "repro.obs.certify",
    "CertificationError": "repro.obs.certify",
    "CertifyIssue": "repro.obs.certify",
    "certify_events": "repro.obs.certify",
    "certify_run": "repro.obs.certify",
    "certify_sweep": "repro.obs.certify",
    "certify_trace": "repro.obs.certify",
    "METRICS_SCHEMA": "repro.obs.live",
    "AdminServer": "repro.obs.live",
    "MetricsSampler": "repro.obs.live",
    "MetricsSchemaError": "repro.obs.live",
    "cumulative_counters": "repro.obs.live",
    "parse_prometheus": "repro.obs.live",
    "read_metrics": "repro.obs.live",
    "render_prometheus": "repro.obs.live",
    "scrape_admin": "repro.obs.live",
    "write_metrics": "repro.obs.live",
}


def __getattr__(name: str) -> object:
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


__all__ = [
    "Counter",
    "CounterSet",
    "Histogram",
    "Event",
    "ExecutionStarted",
    "ExecutionFinished",
    "RoundExecuted",
    "MessageSent",
    "SensingIndication",
    "StrategySwitch",
    "TrialStarted",
    "TrialFinished",
    "GraceSuppressed",
    "FaultInjected",
    "FaultRecovered",
    "GoalVerdict",
    "ProofStarted",
    "ProofRoundChecked",
    "ProofFinished",
    "SessionAbandoned",
    "event_from_dict",
    "event_kinds",
    "FlightBuffer",
    "TeeSink",
    "dump_flight",
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_MINOR",
    "TraceSchemaError",
    "iter_trace",
    "iter_trace_numbered",
    "read_jsonl",
    "read_trace",
    "CertificateReport",
    "CertificationError",
    "CertifyIssue",
    "certify_events",
    "certify_run",
    "certify_sweep",
    "certify_trace",
    "METRICS_SCHEMA",
    "AdminServer",
    "MetricsSampler",
    "MetricsSchemaError",
    "cumulative_counters",
    "parse_prometheus",
    "read_metrics",
    "render_prometheus",
    "scrape_admin",
    "write_metrics",
    "RunManifest",
    "SweepManifest",
    "record_run",
    "OverheadReport",
    "StrategyAttribution",
    "compute_overhead",
    "DiffReport",
    "TraceSummary",
    "compute_diff",
    "render_timeline",
    "summarize_trace",
    "PhaseTimer",
    "NoopTracer",
    "Tracer",
    "TracerLike",
    "is_tracing",
]
