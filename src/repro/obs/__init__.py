"""Structured tracing and metrics for the execution engine.

The paper's universal user is a *dynamic* — enumerate, sense, switch — and
this package makes that dynamic inspectable: typed events
(:mod:`.events`), monotonic counters and histograms (:mod:`.counters`),
wall-clock phase timers (:mod:`.timers`), pluggable sinks including a
deterministic JSONL writer (:mod:`.sinks`), and the :class:`~.tracer.Tracer`
that ties them together (:mod:`.tracer`).

Instrumented call sites: ``run_execution(..., tracer=)`` (round and
message events), the universal users (sensing, switch, and trial events),
:class:`~repro.core.sensing.GraceSensing` (grace-suppression events), and
``analysis.runner.sweep(..., telemetry=True)`` (per-cell counters).

Tracing is strictly opt-in and the off path is allocation-free; see
``docs/OBSERVABILITY.md`` for the taxonomy and usage patterns.
"""

from repro.obs.counters import Counter, CounterSet, Histogram
from repro.obs.events import (
    Event,
    ExecutionFinished,
    ExecutionStarted,
    FaultInjected,
    FaultRecovered,
    GraceSuppressed,
    MessageSent,
    RoundExecuted,
    SensingIndication,
    StrategySwitch,
    TrialFinished,
    TrialStarted,
    event_from_dict,
    event_kinds,
)
from repro.obs.sinks import JsonlSink, MemorySink, NullSink, Sink, read_jsonl
from repro.obs.timers import PhaseTimer
from repro.obs.tracer import NoopTracer, Tracer, TracerLike, is_tracing

__all__ = [
    "Counter",
    "CounterSet",
    "Histogram",
    "Event",
    "ExecutionStarted",
    "ExecutionFinished",
    "RoundExecuted",
    "MessageSent",
    "SensingIndication",
    "StrategySwitch",
    "TrialStarted",
    "TrialFinished",
    "GraceSuppressed",
    "FaultInjected",
    "FaultRecovered",
    "event_from_dict",
    "event_kinds",
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "read_jsonl",
    "PhaseTimer",
    "NoopTracer",
    "Tracer",
    "TracerLike",
    "is_tracing",
]
