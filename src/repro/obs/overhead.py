"""Overhead accounting: where a universal user's rounds went.

Theorem 1's universal user pays an *enumeration overhead* — rounds spent
on candidate strategies that sensing later evicts — and the paper's
lower bound (the password server class, E3) shows this overhead is
necessary in general.  This module turns that story into a measured
quantity: :func:`compute_overhead` replays a trace (a live
:class:`~repro.obs.sinks.MemorySink` buffer or a JSONL file parsed by
:func:`~repro.obs.sinks.read_jsonl`) and attributes every round to the
enumerated strategy that consumed it.

Definitions (over one execution's event stream):

* a round belongs to the trial that was live when it ran; trials belong
  to their ``candidate_index``;
* the **settled** trial is the one still live when the trace ends, or
  the one that ended ``"endorsed"`` (the finite user's successful halt);
  a trace whose last trial was evicted/abandoned settled nowhere;
* **productive rounds** are the settled trial's rounds — the paper's
  "cost of the adequate strategy";
* **overhead rounds** are everything else: the enumeration's wasted
  work, ``overhead_ratio`` = overhead / total.

The accounting consumes only event fields the universal users emit
(``TrialStarted`` / ``TrialFinished`` / ``SensingIndication`` /
``StrategySwitch``), so it works identically on compact, finite, and
belief-weighted traces, live or replayed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.obs.events import (
    TRIAL_ENDORSED,
    Event,
    ExecutionFinished,
    RoundExecuted,
    SensingIndication,
    StrategySwitch,
    TrialFinished,
    TrialStarted,
)

#: ``TrialFinished.reason`` values that mean the candidate *succeeded*.
_SUCCESS_REASONS = frozenset({TRIAL_ENDORSED})


@dataclass(frozen=True)
class StrategyAttribution:
    """One enumerated strategy's share of the run.

    ``rounds`` counts every round the strategy's trials consumed,
    ``indications`` / ``negative_indications`` the sensing verdicts it
    was judged on, ``switched_away`` whether any of its trials ended by
    eviction/abandonment (as opposed to settling or being endorsed).
    """

    index: int
    trials: int
    rounds: int
    indications: int
    negative_indications: int
    switched_away: bool


@dataclass(frozen=True)
class OverheadReport:
    """The enumeration-overhead decomposition of one traced execution."""

    total_rounds: int
    productive_rounds: int
    overhead_rounds: int
    overhead_ratio: float
    settled_index: Optional[int]
    switches: int
    wraps: int
    trials: int
    per_strategy: Tuple[StrategyAttribution, ...]

    def strategy(self, index: int) -> StrategyAttribution:
        """Look up one strategy's attribution by enumeration index."""
        for attribution in self.per_strategy:
            if attribution.index == index:
                return attribution
        raise KeyError(f"no attribution for strategy index {index}")

    def format(self) -> str:
        """A fixed-width text rendering (the CLI's ``overhead`` output)."""
        lines = [
            f"total rounds      : {self.total_rounds}",
            f"productive rounds : {self.productive_rounds}",
            f"overhead rounds   : {self.overhead_rounds}",
            f"overhead ratio    : {self.overhead_ratio:.3f}",
            f"settled index     : "
            f"{'-' if self.settled_index is None else self.settled_index}",
            f"switches          : {self.switches} (wraps: {self.wraps})",
            f"trials            : {self.trials}",
        ]
        if self.per_strategy:
            lines.append("per-strategy attribution:")
            lines.append("  index  trials  rounds  neg/indications  switched-away")
            for a in self.per_strategy:
                lines.append(
                    f"  {a.index:>5}  {a.trials:>6}  {a.rounds:>6}  "
                    f"{a.negative_indications:>3}/{a.indications:<11}  "
                    f"{'yes' if a.switched_away else 'no'}"
                )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (the CLI's ``--format json`` output)."""
        return {
            "total_rounds": self.total_rounds,
            "productive_rounds": self.productive_rounds,
            "overhead_rounds": self.overhead_rounds,
            "overhead_ratio": self.overhead_ratio,
            "settled_index": self.settled_index,
            "switches": self.switches,
            "wraps": self.wraps,
            "trials": self.trials,
            "per_strategy": [
                {
                    "index": a.index,
                    "trials": a.trials,
                    "rounds": a.rounds,
                    "indications": a.indications,
                    "negative_indications": a.negative_indications,
                    "switched_away": a.switched_away,
                }
                for a in self.per_strategy
            ],
        }


@dataclass
class _TrialTally:
    """Mutable per-strategy accumulator used while scanning the stream."""

    index: int
    trials: int = 0
    rounds: int = 0
    indications: int = 0
    negative_indications: int = 0
    switched_away: bool = False


def compute_overhead(events: Iterable[Event]) -> OverheadReport:
    """Attribute a traced execution's rounds to its enumerated strategies.

    Accepts any ordered event stream — ``MemorySink.events``, the list
    from :func:`~repro.obs.sinks.read_jsonl`, or a generator.  Traces
    without universal-user events (no trials) yield an all-zero report
    with ``settled_index=None`` and an overhead ratio of 0.0: a
    non-enumerating user has no enumeration overhead by definition.
    """
    tallies: Dict[int, _TrialTally] = {}
    engine_rounds: Optional[int] = None
    rounds_executed = 0
    switches = 0
    wraps = 0
    trials = 0
    closed_trial_rounds = 0

    open_index: Optional[int] = None
    open_rounds = 0  # Sensing consultations seen in the open trial.
    endorsed_index: Optional[int] = None
    endorsed_rounds = 0

    def tally(index: int) -> _TrialTally:
        found = tallies.get(index)
        if found is None:
            found = tallies[index] = _TrialTally(index=index)
        return found

    for event in events:
        if isinstance(event, RoundExecuted):
            rounds_executed += 1
        elif isinstance(event, ExecutionFinished):
            engine_rounds = event.rounds_executed
        elif isinstance(event, TrialStarted):
            open_index = event.candidate_index
            open_rounds = 0
            endorsed_index = None  # A new trial supersedes any endorsement.
            trials += 1
            tally(event.candidate_index).trials += 1
        elif isinstance(event, SensingIndication):
            t = tally(event.candidate_index)
            t.indications += 1
            if not event.positive:
                t.negative_indications += 1
            if event.candidate_index == open_index:
                open_rounds += 1
        elif isinstance(event, TrialFinished):
            t = tally(event.candidate_index)
            t.rounds += event.rounds_used
            closed_trial_rounds += event.rounds_used
            if event.reason in _SUCCESS_REASONS:
                endorsed_index = event.candidate_index
                endorsed_rounds = event.rounds_used
            else:
                t.switched_away = True
            if event.candidate_index == open_index:
                open_index = None
                open_rounds = 0
        elif isinstance(event, StrategySwitch):
            switches += 1
            if event.wrapped:
                wraps += 1

    total_rounds = engine_rounds if engine_rounds is not None else rounds_executed
    if total_rounds == 0:
        # User-only trace (tracer attached to the user but not the engine):
        # every user round produced one sensing consultation.
        total_rounds = closed_trial_rounds + open_rounds

    # The open trial's rounds: whatever the closed trials did not consume.
    # (More robust than counting its indications — a patience budget or a
    # grace wrapper can consult sensing on a subset of rounds.)
    open_trial_rounds = max(0, total_rounds - closed_trial_rounds)
    if open_index is not None:
        tally(open_index).rounds += open_trial_rounds

    if open_index is not None:
        settled_index: Optional[int] = open_index
        productive_rounds = open_trial_rounds
    elif endorsed_index is not None:
        # The finite user's successful halt: exactly the endorsed trial's
        # own rounds were productive; earlier trials of the same candidate
        # (budget re-runs) still count as overhead.
        settled_index = endorsed_index
        productive_rounds = endorsed_rounds
    else:
        settled_index = None
        productive_rounds = 0

    overhead_rounds = max(0, total_rounds - productive_rounds)
    ratio = overhead_rounds / total_rounds if total_rounds else 0.0
    per_strategy = tuple(
        StrategyAttribution(
            index=t.index,
            trials=t.trials,
            rounds=t.rounds,
            indications=t.indications,
            negative_indications=t.negative_indications,
            switched_away=t.switched_away,
        )
        for t in sorted(tallies.values(), key=lambda t: t.index)
    )
    return OverheadReport(
        total_rounds=total_rounds,
        productive_rounds=productive_rounds,
        overhead_rounds=overhead_rounds,
        overhead_ratio=ratio,
        settled_index=settled_index,
        switches=switches,
        wraps=wraps,
        trials=trials,
        per_strategy=per_strategy,
    )


__all__ = ["OverheadReport", "StrategyAttribution", "compute_overhead"]
