"""Flight recorder: the last N events of a session, recoverable on death.

Full tracing writes every event to disk and costs accordingly; the
flight recorder is the cheap always-on alternative for long-running
serving.  A :class:`FlightBuffer` is a bounded ring that keeps only the
most recent events in memory (plus a count of what it evicted), and
:func:`dump_flight` turns that ring into a ``flight/<session_id>.jsonl``
file when a session dies — the aviation black-box model: nothing is
written while things go well, and the final seconds survive a crash.

A dump is an ordinary schema-versioned trace *fragment*: the header
carries ``"flight": true`` and the eviction count, the body is normal
event lines, so :func:`repro.obs.sinks.iter_trace` reads it and
``python -m repro.obs certify --fragment`` checks the invariants that
survive a missing prefix.

:class:`TeeSink` composes the ring with full tracing when both are on —
one emit fans out to every child sink, keeping the session's single
tracer (and therefore the byte-identical trace guarantee) intact.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, Iterable, List, Mapping, Optional, Union

from repro.obs.events import Event
from repro.obs.sinks import TRACE_SCHEMA, TRACE_SCHEMA_MINOR, Sink


class FlightBuffer(Sink):
    """A bounded ring of the most recent events.

    Unlike :class:`~repro.obs.sinks.MemorySink` (unbounded by default,
    built for tests), the flight buffer *requires* a capacity and counts
    what it dropped — ``evicted`` is how a reader knows the dump's first
    event is not the session's first event.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"flight capacity must be positive: {capacity}")
        self.capacity = capacity
        self.evicted = 0
        self._events: Deque[Event] = deque()

    def emit(self, event: Event) -> None:
        if len(self._events) == self.capacity:
            self._events.popleft()
            self.evicted += 1
        self._events.append(event)

    @property
    def events(self) -> List[Event]:
        """The buffered events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._events)


class TeeSink(Sink):
    """Fans each event out to every child sink, in order.

    ``close`` closes every child even if an earlier close raises — the
    flight buffer must stay dumpable when the trace file's flush fails.
    """

    def __init__(self, *sinks: Sink) -> None:
        if not sinks:
            raise ValueError("TeeSink needs at least one child sink")
        self.sinks = sinks

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        first_error: Optional[BaseException] = None
        for sink in self.sinks:
            try:
                sink.close()
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error


def dump_flight(
    events: Union[FlightBuffer, Iterable[Event]],
    path: Union[str, Path],
    *,
    header: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write a flight dump: schema header + the buffered events.

    The header is a normal trace header (current schema major/minor) plus
    ``"flight": true`` and, for a :class:`FlightBuffer`, the ``evicted``
    count — so downstream tooling can both read it with the stock trace
    readers and recognise it as a fragment.  Returns the written path.
    """
    resolved = Path(path)
    resolved.parent.mkdir(parents=True, exist_ok=True)
    head: Dict[str, Any] = {
        "trace_schema": TRACE_SCHEMA,
        "trace_schema_minor": TRACE_SCHEMA_MINOR,
        "flight": True,
    }
    if isinstance(events, FlightBuffer):
        head["evicted"] = events.evicted
        records = events.events
    else:
        records = list(events)
    for key, value in (header or {}).items():
        if key not in head:
            head[key] = value
    with resolved.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(head, separators=(",", ":")))
        handle.write("\n")
        for event in records:
            handle.write(json.dumps(event.to_dict(), separators=(",", ":")))
            handle.write("\n")
    return resolved
