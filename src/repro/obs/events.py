"""Typed structured events — the vocabulary of the tracing layer.

Every observable moment in an execution is one frozen dataclass here, so a
trace is a typed object stream rather than a pile of log lines.  Events
carry only plain scalars (ints, strs, bools) — never live strategy state or
message objects — which keeps them trivially serialisable and guarantees
that *recording* an execution cannot perturb it.

The taxonomy mirrors the paper's dynamics:

* engine level — :class:`ExecutionStarted`, :class:`RoundExecuted`,
  :class:`MessageSent`, :class:`ExecutionFinished`;
* universal-user level (Theorem 1's enumerate-and-switch loop) —
  :class:`SensingIndication`, :class:`StrategySwitch`,
  :class:`TrialStarted`, :class:`TrialFinished`;
* sensing level — :class:`GraceSuppressed`, emitted when a grace window
  masks a negative inner indication;
* verdict level (the certificate evidence, schema minor >= 1) —
  :class:`GoalVerdict`, recorded by :func:`repro.obs.ledger.record_run`
  once the referee has judged the run, and the interactive-proof events
  :class:`ProofStarted` / :class:`ProofRoundChecked` /
  :class:`ProofFinished`, recorded by the delegation users when a
  verifier session concludes.

Serialisation is deterministic: :meth:`Event.to_dict` emits ``kind`` first
and then the dataclass fields in declaration order, and
:func:`event_from_dict` inverts it via the ``kind`` registry.

The ``reason`` vocabularies of :class:`StrategySwitch` and
:class:`TrialFinished` are exported as constants (``SWITCH_*`` /
``TRIAL_*``) so the emitters (the universal users), the overhead
accounting, and the ``repro.obs certify`` checker agree on the exact
strings by construction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Mapping, Optional, Sequence, Type

#: ``StrategySwitch.reason`` vocabulary.
SWITCH_SENSING_NEGATIVE = "sensing-negative"
SWITCH_BELIEF_DECAY = "belief-decay"
SWITCH_REASONS = frozenset({SWITCH_SENSING_NEGATIVE, SWITCH_BELIEF_DECAY})

#: ``SessionAbandoned.reason`` vocabulary.
ABANDON_FAILURE = "failure"
ABANDON_ABORT = "abort"
ABANDON_EXPLICIT = "abandon"
ABANDON_REASONS = frozenset({ABANDON_FAILURE, ABANDON_ABORT, ABANDON_EXPLICIT})

#: ``TrialFinished.reason`` vocabulary.
TRIAL_EVICTED = "evicted"
TRIAL_ENDORSED = "endorsed"
TRIAL_HALT_REJECTED = "halt-rejected"
TRIAL_BUDGET = "budget"
TRIAL_MISSING = "missing"
TRIAL_DECAYED = "decayed"
TRIAL_REASONS = frozenset(
    {
        TRIAL_EVICTED,
        TRIAL_ENDORSED,
        TRIAL_HALT_REJECTED,
        TRIAL_BUDGET,
        TRIAL_MISSING,
        TRIAL_DECAYED,
    }
)


def rng_chain_digest(seed: int, draws: Sequence[int]) -> str:
    """Digest of the engine's per-party RNG seed derivation.

    The engine derives one 64-bit stream seed per party from the master
    seed; this digest commits to that chain so an offline checker can
    re-derive it from ``ExecutionStarted.seed`` alone and detect an edited
    seed field (the derivation is pure stdlib ``random.Random``).
    """
    payload = ":".join([str(seed), *(str(draw) for draw in draws)])
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]


@dataclass(frozen=True)
class Event:
    """Base class for all trace events.

    Subclasses set ``kind`` (the wire tag) and declare their payload as
    ordinary dataclass fields.  Field order *is* the serialised order.
    """

    kind: ClassVar[str] = "event"

    def to_dict(self) -> Dict[str, Any]:
        """A plain dict with ``kind`` first, then fields in declared order."""
        data: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            data[f.name] = getattr(self, f.name)
        return data


_REGISTRY: Dict[str, Type[Event]] = {}


def register(cls: Type[Event]) -> Type[Event]:
    """Class decorator adding an event type to the ``kind`` registry."""
    if cls.kind in _REGISTRY:
        raise ValueError(f"duplicate event kind: {cls.kind!r}")
    _REGISTRY[cls.kind] = cls
    return cls


def event_from_dict(data: Mapping[str, Any]) -> Event:
    """Rebuild an event from :meth:`Event.to_dict` output.

    Raises ``KeyError`` on an unknown ``kind`` and ``TypeError`` on a
    payload that does not match the event's fields — a parsed trace either
    round-trips exactly or fails loudly.
    """
    payload = dict(data)
    kind = payload.pop("kind")
    cls = _REGISTRY[kind]
    return cls(**payload)


def event_kinds() -> Dict[str, Type[Event]]:
    """A copy of the kind → class registry (for docs and tests)."""
    return dict(_REGISTRY)


# --------------------------------------------------------------------------
# Engine-level events
# --------------------------------------------------------------------------


@register
@dataclass(frozen=True)
class ExecutionStarted(Event):
    """``run_execution`` began: the cast and the horizon.

    ``rng_digest`` (schema minor >= 1) commits to the per-party RNG seed
    chain the engine derived from ``seed`` — see :func:`rng_chain_digest`.
    ``None`` on legacy traces.
    """

    kind: ClassVar[str] = "execution-started"

    user: str
    server: str
    world: str
    max_rounds: int
    seed: int
    rng_digest: Optional[str] = None


@register
@dataclass(frozen=True)
class MessageSent(Event):
    """One non-silent message crossed one channel during one round.

    ``sender``/``receiver`` are role names (``user``/``server``/``world``).
    The payload is included verbatim — traces of adversarial codecs show
    the scrambled bytes, exactly what the receiving party saw.
    """

    kind: ClassVar[str] = "message-sent"

    round_index: int
    sender: str
    receiver: str
    payload: str


@register
@dataclass(frozen=True)
class RoundExecuted(Event):
    """One synchronous round completed.

    ``messages`` counts the non-silent channel messages emitted this round
    and ``message_bytes`` their total payload length; ``halted`` is True on
    the round where the user halted.
    """

    kind: ClassVar[str] = "round-executed"

    round_index: int
    messages: int
    message_bytes: int
    halted: bool


@register
@dataclass(frozen=True)
class ExecutionFinished(Event):
    """``run_execution`` returned."""

    kind: ClassVar[str] = "execution-finished"

    rounds_executed: int
    halted: bool


# --------------------------------------------------------------------------
# Fault-injection events (repro.faults)
# --------------------------------------------------------------------------


@register
@dataclass(frozen=True)
class FaultInjected(Event):
    """A fault disturbed the system (see :mod:`repro.faults`).

    ``site`` locates the fault: a channel direction (``user->server`` /
    ``server->user``) or ``server`` for the server-side wrappers.
    ``fault`` is the fault type (``drop``, ``corrupt``, ``duplicate``,
    ``delay``, ``flaky``, ``crash``, ``byzantine``).
    """

    kind: ClassVar[str] = "fault-injected"

    round_index: int
    site: str
    fault: str


@register
@dataclass(frozen=True)
class FaultRecovered(Event):
    """A fault site delivered cleanly again after a faulted stretch.

    Emitted on the first clean non-silent delivery (channels) or the first
    live round (servers) after one or more faulted rounds; never emitted
    by a fail-stop crash, which by definition does not recover.
    """

    kind: ClassVar[str] = "fault-recovered"

    round_index: int
    site: str


# --------------------------------------------------------------------------
# Universal-user events (the Theorem 1 loop)
# --------------------------------------------------------------------------


@register
@dataclass(frozen=True)
class SensingIndication(Event):
    """The sensing function was consulted on a trial-local view.

    ``round_index`` is the user's global round; ``candidate_index`` the
    enumeration index of the strategy being judged; ``positive`` the verdict.
    """

    kind: ClassVar[str] = "sensing-indication"

    round_index: int
    candidate_index: int
    positive: bool


@register
@dataclass(frozen=True)
class StrategySwitch(Event):
    """A universal user abandoned one candidate for another.

    ``reason`` names what triggered the move, so overhead attribution
    (:mod:`repro.obs.overhead`) can distinguish the enumeration's own
    cost from prior-driven re-ranking:

    * ``"sensing-negative"`` — compact user: the enumeration advanced on
      a negative indication (Theorem 1's switch);
    * ``"belief-decay"`` — belief-weighted user: the candidate's decayed
      weight fell below another candidate's.
    """

    kind: ClassVar[str] = "strategy-switch"

    round_index: int
    from_index: int
    to_index: int
    wrapped: bool
    reason: str = "sensing-negative"


@register
@dataclass(frozen=True)
class TrialStarted(Event):
    """A candidate strategy began a (re)trial.

    ``budget`` is the trial's round budget under a Levin-style schedule, or
    ``None`` for the compact user's open-ended trials.
    """

    kind: ClassVar[str] = "trial-started"

    round_index: int
    trial_number: int
    candidate_index: int
    budget: Optional[int] = None


@register
@dataclass(frozen=True)
class TrialFinished(Event):
    """A trial ended.  ``reason`` is one of:

    * ``"evicted"`` — compact user: sensing read negative, candidate evicted;
    * ``"endorsed"`` — finite user: candidate halted and sensing endorsed it;
    * ``"halt-rejected"`` — finite user: candidate halted, sensing refused;
    * ``"budget"`` — finite user: the trial's round budget ran out;
    * ``"missing"`` — finite user: the scheduled index fell outside the class;
    * ``"decayed"`` — belief-weighted user: the candidate's weight decayed
      below another's.
    """

    kind: ClassVar[str] = "trial-finished"

    round_index: int
    trial_number: int
    candidate_index: int
    rounds_used: int
    reason: str


# --------------------------------------------------------------------------
# Sensing-level events
# --------------------------------------------------------------------------


@register
@dataclass(frozen=True)
class GraceSuppressed(Event):
    """A grace window masked a negative inner indication.

    Emitted by :class:`~repro.core.sensing.GraceSensing` when the inner
    sensing would have condemned the current strategy but the trial is
    still inside its first ``grace_rounds`` rounds.  The count of these is
    exactly the feedback the grace ablation (E6) trades away.
    """

    kind: ClassVar[str] = "grace-suppressed"

    round_index: int
    grace_rounds: int


# --------------------------------------------------------------------------
# Verdict-level events (certificate evidence, schema minor >= 1)
# --------------------------------------------------------------------------


@register
@dataclass(frozen=True)
class GoalVerdict(Event):
    """The referee's judgement of the finished run, with its evidence.

    For compact goals the verdict carries the prefix statistics the referee
    derived (``total_prefixes``, ``bad_prefixes``, ``last_bad_round``) plus
    the goal's ``settle_fraction``, so a checker can re-derive ``achieved``
    from the settle arithmetic alone.  For finite goals those fields are
    ``None`` and the invariant is ``achieved`` implies ``halted``.
    """

    kind: ClassVar[str] = "goal-verdict"

    goal: str
    compact: bool
    achieved: bool
    halted: bool
    rounds: int
    settle_fraction: Optional[float] = None
    total_prefixes: Optional[int] = None
    bad_prefixes: Optional[int] = None
    last_bad_round: Optional[int] = None
    note: str = ""


@register
@dataclass(frozen=True)
class SessionAbandoned(Event):
    """A serve-engine session ended without settling (schema minor >= 1).

    The terminator of a *flight dump*: when a session fails or the engine
    aborts, :meth:`repro.serve.session.Session.abandon` emits this before
    flushing sinks, so a recovered fragment is self-describing — the
    reader knows the stream stopped because the session was torn down,
    not because the file was truncated.  ``reason`` is one of the
    ``ABANDON_*`` constants (``"failure"``, ``"abort"``, ``"abandon"``).
    """

    kind: ClassVar[str] = "session-abandoned"

    session_id: str
    rounds_completed: int
    reason: str = ABANDON_EXPLICIT


@register
@dataclass(frozen=True)
class ProofStarted(Event):
    """An interactive-proof verifier session began.

    ``protocol`` is ``"qbf"`` or ``"sumcheck"``; ``modulus`` the prime of
    the working field; ``claimed_value`` the prover's claim (already
    normalised into the field).
    """

    kind: ClassVar[str] = "proof-started"

    protocol: str
    modulus: int
    claimed_value: int


@register
@dataclass(frozen=True)
class ProofRoundChecked(Event):
    """One verifier round of an interactive proof, with full evidence.

    ``poly`` is the round polynomial in :meth:`repro.mathx.polynomials.Poly.
    serialize` wire form (comma-separated coefficients, lowest degree
    first).  ``challenge`` and ``claim_after`` are ``None`` when the
    verifier rejected this round before drawing a challenge.
    """

    kind: ClassVar[str] = "proof-round"

    index: int
    op_kind: str
    var: str
    degree_bound: int
    poly: str
    challenge: Optional[int]
    claim_before: int
    claim_after: Optional[int]


@register
@dataclass(frozen=True)
class ProofFinished(Event):
    """The verifier session concluded.

    ``accepted=False`` with a round-level cause carries the verifier's
    ``reason``; acceptance additionally attests the final evaluation check
    against the instance, which a trace-only checker cannot re-derive.
    """

    kind: ClassVar[str] = "proof-finished"

    accepted: bool
    reason: str = ""
