"""Typed structured events — the vocabulary of the tracing layer.

Every observable moment in an execution is one frozen dataclass here, so a
trace is a typed object stream rather than a pile of log lines.  Events
carry only plain scalars (ints, strs, bools) — never live strategy state or
message objects — which keeps them trivially serialisable and guarantees
that *recording* an execution cannot perturb it.

The taxonomy mirrors the paper's dynamics:

* engine level — :class:`ExecutionStarted`, :class:`RoundExecuted`,
  :class:`MessageSent`, :class:`ExecutionFinished`;
* universal-user level (Theorem 1's enumerate-and-switch loop) —
  :class:`SensingIndication`, :class:`StrategySwitch`,
  :class:`TrialStarted`, :class:`TrialFinished`;
* sensing level — :class:`GraceSuppressed`, emitted when a grace window
  masks a negative inner indication.

Serialisation is deterministic: :meth:`Event.to_dict` emits ``kind`` first
and then the dataclass fields in declaration order, and
:func:`event_from_dict` inverts it via the ``kind`` registry.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Mapping, Optional, Type


@dataclass(frozen=True)
class Event:
    """Base class for all trace events.

    Subclasses set ``kind`` (the wire tag) and declare their payload as
    ordinary dataclass fields.  Field order *is* the serialised order.
    """

    kind: ClassVar[str] = "event"

    def to_dict(self) -> Dict[str, Any]:
        """A plain dict with ``kind`` first, then fields in declared order."""
        data: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            data[f.name] = getattr(self, f.name)
        return data


_REGISTRY: Dict[str, Type[Event]] = {}


def register(cls: Type[Event]) -> Type[Event]:
    """Class decorator adding an event type to the ``kind`` registry."""
    if cls.kind in _REGISTRY:
        raise ValueError(f"duplicate event kind: {cls.kind!r}")
    _REGISTRY[cls.kind] = cls
    return cls


def event_from_dict(data: Mapping[str, Any]) -> Event:
    """Rebuild an event from :meth:`Event.to_dict` output.

    Raises ``KeyError`` on an unknown ``kind`` and ``TypeError`` on a
    payload that does not match the event's fields — a parsed trace either
    round-trips exactly or fails loudly.
    """
    payload = dict(data)
    kind = payload.pop("kind")
    cls = _REGISTRY[kind]
    return cls(**payload)


def event_kinds() -> Dict[str, Type[Event]]:
    """A copy of the kind → class registry (for docs and tests)."""
    return dict(_REGISTRY)


# --------------------------------------------------------------------------
# Engine-level events
# --------------------------------------------------------------------------


@register
@dataclass(frozen=True)
class ExecutionStarted(Event):
    """``run_execution`` began: the cast and the horizon."""

    kind: ClassVar[str] = "execution-started"

    user: str
    server: str
    world: str
    max_rounds: int
    seed: int


@register
@dataclass(frozen=True)
class MessageSent(Event):
    """One non-silent message crossed one channel during one round.

    ``sender``/``receiver`` are role names (``user``/``server``/``world``).
    The payload is included verbatim — traces of adversarial codecs show
    the scrambled bytes, exactly what the receiving party saw.
    """

    kind: ClassVar[str] = "message-sent"

    round_index: int
    sender: str
    receiver: str
    payload: str


@register
@dataclass(frozen=True)
class RoundExecuted(Event):
    """One synchronous round completed.

    ``messages`` counts the non-silent channel messages emitted this round
    and ``message_bytes`` their total payload length; ``halted`` is True on
    the round where the user halted.
    """

    kind: ClassVar[str] = "round-executed"

    round_index: int
    messages: int
    message_bytes: int
    halted: bool


@register
@dataclass(frozen=True)
class ExecutionFinished(Event):
    """``run_execution`` returned."""

    kind: ClassVar[str] = "execution-finished"

    rounds_executed: int
    halted: bool


# --------------------------------------------------------------------------
# Fault-injection events (repro.faults)
# --------------------------------------------------------------------------


@register
@dataclass(frozen=True)
class FaultInjected(Event):
    """A fault disturbed the system (see :mod:`repro.faults`).

    ``site`` locates the fault: a channel direction (``user->server`` /
    ``server->user``) or ``server`` for the server-side wrappers.
    ``fault`` is the fault type (``drop``, ``corrupt``, ``duplicate``,
    ``delay``, ``flaky``, ``crash``, ``byzantine``).
    """

    kind: ClassVar[str] = "fault-injected"

    round_index: int
    site: str
    fault: str


@register
@dataclass(frozen=True)
class FaultRecovered(Event):
    """A fault site delivered cleanly again after a faulted stretch.

    Emitted on the first clean non-silent delivery (channels) or the first
    live round (servers) after one or more faulted rounds; never emitted
    by a fail-stop crash, which by definition does not recover.
    """

    kind: ClassVar[str] = "fault-recovered"

    round_index: int
    site: str


# --------------------------------------------------------------------------
# Universal-user events (the Theorem 1 loop)
# --------------------------------------------------------------------------


@register
@dataclass(frozen=True)
class SensingIndication(Event):
    """The sensing function was consulted on a trial-local view.

    ``round_index`` is the user's global round; ``candidate_index`` the
    enumeration index of the strategy being judged; ``positive`` the verdict.
    """

    kind: ClassVar[str] = "sensing-indication"

    round_index: int
    candidate_index: int
    positive: bool


@register
@dataclass(frozen=True)
class StrategySwitch(Event):
    """A universal user abandoned one candidate for another.

    ``reason`` names what triggered the move, so overhead attribution
    (:mod:`repro.obs.overhead`) can distinguish the enumeration's own
    cost from prior-driven re-ranking:

    * ``"sensing-negative"`` — compact user: the enumeration advanced on
      a negative indication (Theorem 1's switch);
    * ``"belief-decay"`` — belief-weighted user: the candidate's decayed
      weight fell below another candidate's.
    """

    kind: ClassVar[str] = "strategy-switch"

    round_index: int
    from_index: int
    to_index: int
    wrapped: bool
    reason: str = "sensing-negative"


@register
@dataclass(frozen=True)
class TrialStarted(Event):
    """A candidate strategy began a (re)trial.

    ``budget`` is the trial's round budget under a Levin-style schedule, or
    ``None`` for the compact user's open-ended trials.
    """

    kind: ClassVar[str] = "trial-started"

    round_index: int
    trial_number: int
    candidate_index: int
    budget: Optional[int] = None


@register
@dataclass(frozen=True)
class TrialFinished(Event):
    """A trial ended.  ``reason`` is one of:

    * ``"evicted"`` — compact user: sensing read negative, candidate evicted;
    * ``"endorsed"`` — finite user: candidate halted and sensing endorsed it;
    * ``"halt-rejected"`` — finite user: candidate halted, sensing refused;
    * ``"budget"`` — finite user: the trial's round budget ran out;
    * ``"missing"`` — finite user: the scheduled index fell outside the class;
    * ``"decayed"`` — belief-weighted user: the candidate's weight decayed
      below another's.
    """

    kind: ClassVar[str] = "trial-finished"

    round_index: int
    trial_number: int
    candidate_index: int
    rounds_used: int
    reason: str


# --------------------------------------------------------------------------
# Sensing-level events
# --------------------------------------------------------------------------


@register
@dataclass(frozen=True)
class GraceSuppressed(Event):
    """A grace window masked a negative inner indication.

    Emitted by :class:`~repro.core.sensing.GraceSensing` when the inner
    sensing would have condemned the current strategy but the trial is
    still inside its first ``grace_rounds`` rounds.  The count of these is
    exactly the feedback the grace ablation (E6) trades away.
    """

    kind: ClassVar[str] = "grace-suppressed"

    round_index: int
    grace_rounds: int
