"""Tracers: the single object threaded through an instrumented run.

A tracer bundles a sink (the event stream), a :class:`CounterSet` (running
totals derived from the events), and a :class:`PhaseTimer` (wall clock).
Instrumented code holds exactly one reference and calls ``emit``.

The contract that keeps the engine fast: every tracer exposes a class-level
``enabled`` flag, and instrumented hot loops hoist ``tracer is not None and
tracer.enabled`` into a local before the loop.  With ``tracer=None`` or a
:class:`NoopTracer`, the loop body therefore allocates *nothing* — no event
objects, no string joins, not even a method call — so tracing-off costs one
branch per round (benchmarked in ``benchmarks/bench_engine.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:
    from repro.obs.timers import _Span

from repro.obs.counters import CounterSet
from repro.obs.events import (
    Event,
    FaultInjected,
    FaultRecovered,
    GraceSuppressed,
    MessageSent,
    RoundExecuted,
    SensingIndication,
    StrategySwitch,
    TrialStarted,
)
from repro.obs.sinks import NullSink, Sink
from repro.obs.timers import PhaseTimer


class NoopTracer:
    """A tracer that records nothing.

    Exists so call sites can take a tracer unconditionally; instrumented
    code that honours the ``enabled`` contract never even calls
    :meth:`emit`.  (The method is still a correct no-op for code that
    doesn't bother checking.)
    """

    __slots__ = ()
    enabled = False

    def emit(self, event: Event) -> None:
        pass

    def close(self) -> None:
        pass


class Tracer:
    """An enabled tracer: events to the sink, totals to the counters.

    Parameters
    ----------
    sink:
        Event destination; defaults to :class:`~repro.obs.sinks.NullSink`,
        i.e. a counters-only tracer — the cheapest *on* configuration,
        which is what sweeps use for per-cell telemetry.
    counters, timers:
        Injectable so several runs can share one accumulator (a sweep cell
        aggregates across seeds this way).
    """

    enabled = True

    def __init__(
        self,
        sink: Optional[Sink] = None,
        counters: Optional[CounterSet] = None,
        timers: Optional[PhaseTimer] = None,
    ) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.counters = counters if counters is not None else CounterSet()
        self.timers = timers if timers is not None else PhaseTimer()

    def emit(self, event: Event) -> None:
        """Record one event: update counters, then forward to the sink."""
        counters = self.counters
        if type(event) is RoundExecuted:
            counters.inc("rounds")
        elif type(event) is MessageSent:
            counters.inc("messages")
            counters.inc("message_bytes", len(event.payload))
        elif type(event) is SensingIndication:
            counters.inc(
                "sensing_positive" if event.positive else "sensing_negative"
            )
        elif type(event) is StrategySwitch:
            counters.inc("switches")
            if event.wrapped:
                counters.inc("wraps")
        elif type(event) is TrialStarted:
            counters.inc("trials")
        elif type(event) is GraceSuppressed:
            counters.inc("grace_suppressed")
        elif type(event) is FaultInjected:
            counters.inc("faults_injected")
        elif type(event) is FaultRecovered:
            counters.inc("faults_recovered")
        self.sink.emit(event)

    def phase(self, name: str) -> "_Span":
        """Time a phase: ``with tracer.phase("engine"): ...``."""
        return self.timers.phase(name)

    def close(self) -> None:
        """Close the sink (counters and timers remain readable)."""
        self.sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: What instrumented code accepts: off (None), explicitly off, or on.
TracerLike = Union[None, NoopTracer, Tracer]


def is_tracing(tracer: TracerLike) -> bool:
    """The hoisted hot-loop check, as a named helper for call sites."""
    return tracer is not None and tracer.enabled
