"""Grid-sampled multivariate polynomials over a prime field.

The honest provers of :mod:`repro.ip` must manipulate the *partial
evaluations* of an arithmetized formula under quantifier and linearization
operators.  Done naively (recursing over all remaining operators for every
requested point) this is exponential in the number of protocol rounds; the
classical fix is to exploit that all intermediate objects are polynomials
of *known, small per-variable degree*, and such a polynomial is completely
determined by its values on a product grid with ``degree+1`` sample points
per axis.

:class:`GridPoly` is that representation: a value table over the grid
``{0, 1, ..., d_i}`` per variable ``i``.  It supports

* exact evaluation anywhere (tensor-product Lagrange, axis by axis),
* restriction of a variable to a field value (dropping the axis),
* regridding to larger degree bounds (before a degree-raising product),
* pointwise products/affine combinations on aligned grids.

With these, each protocol operator costs time polynomial in the grid size
(at most ``3**n`` entries after linearization), turning the honest prover
from exponential-per-round into comfortably interactive at the instance
sizes the experiments use.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.errors import AlgebraError
from repro.mathx.modular import Field
from repro.mathx.polynomials import Poly, interpolate

Assignment = Mapping[str, int]
GridKey = Tuple[int, ...]


def _lagrange_at(field: Field, xs: Sequence[int], ys: Sequence[int], x: int) -> int:
    """Evaluate the interpolating polynomial through (xs, ys) at ``x``.

    Direct O(d^2) Lagrange; d never exceeds a handful here.  When ``x`` is
    one of the sample points the sample value is returned exactly.
    """
    x = field.normalize(x)
    for xi, yi in zip(xs, ys):
        if xi == x:
            return field.normalize(yi)
    total = 0
    for i, (xi, yi) in enumerate(zip(xs, ys)):
        num = 1
        den = 1
        for j, xj in enumerate(xs):
            if j == i:
                continue
            num = field.mul(num, field.sub(x, xj))
            den = field.mul(den, field.sub(xi, xj))
        total = field.add(total, field.mul(yi, field.div(num, den)))
    return total


@dataclass(frozen=True)
class GridPoly:
    """A multivariate polynomial stored by its values on a product grid.

    ``variables`` fixes the axis order; axis ``i`` carries degree bound
    ``degrees[i]`` and sample points ``0 .. degrees[i]``.  ``values`` maps
    each grid key (one sample index per axis — the indices *are* the field
    sample points) to the polynomial's value there.  Immutable; operations
    return new instances.
    """

    field: Field
    variables: Tuple[str, ...]
    degrees: Tuple[int, ...]
    values: Mapping[GridKey, int]

    def __post_init__(self) -> None:
        if len(self.variables) != len(self.degrees):
            raise AlgebraError("variables/degrees length mismatch")
        if len(set(self.variables)) != len(self.variables):
            raise AlgebraError(f"duplicate variables: {self.variables}")
        if any(d < 0 for d in self.degrees):
            raise AlgebraError(f"negative degree bound: {self.degrees}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_function(
        field: Field,
        variables: Sequence[str],
        degrees: Sequence[int],
        fn: Callable[[Dict[str, int]], int],
    ) -> "GridPoly":
        """Sample ``fn`` (a polynomial of the given degree bounds) on the grid."""
        variables = tuple(variables)
        degrees = tuple(degrees)
        values: Dict[GridKey, int] = {}
        axes = [range(d + 1) for d in degrees]
        for key in itertools.product(*axes):
            assignment = dict(zip(variables, key))
            values[key] = field.normalize(fn(assignment))
        return GridPoly(field, variables, degrees, values)

    @staticmethod
    def constant(field: Field, value: int) -> "GridPoly":
        """The 0-variable polynomial with the given value."""
        return GridPoly(field, (), (), {(): field.normalize(value)})

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        return len(self.variables)

    def grid_size(self) -> int:
        size = 1
        for d in self.degrees:
            size *= d + 1
        return size

    def as_constant(self) -> int:
        """The value of a 0-variable polynomial."""
        if self.variables:
            raise AlgebraError(f"not a constant: free variables {self.variables}")
        return self.values[()]

    def _axis(self, var: str) -> int:
        try:
            return self.variables.index(var)
        except ValueError:
            raise AlgebraError(f"variable {var!r} not free in {self.variables}") from None

    def degree_of(self, var: str) -> int:
        return self.degrees[self._axis(var)]

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def restrict(self, var: str, value: int) -> "GridPoly":
        """Substitute ``var = value``; the axis disappears.

        When ``value`` is one of the axis' sample points this is a cheap
        slice; otherwise each fiber along the axis is interpolated at
        ``value``.
        """
        axis = self._axis(var)
        value = self.field.normalize(value)
        samples = list(range(self.degrees[axis] + 1))
        new_vars = self.variables[:axis] + self.variables[axis + 1:]
        new_degs = self.degrees[:axis] + self.degrees[axis + 1:]
        new_values: Dict[GridKey, int] = {}
        if value in samples:
            for key, val in self.values.items():
                if key[axis] == value:
                    new_values[key[:axis] + key[axis + 1:]] = val
        else:
            fibers: Dict[GridKey, List[int]] = {}
            for key, val in self.values.items():
                rest = key[:axis] + key[axis + 1:]
                fibers.setdefault(rest, [0] * len(samples))[key[axis]] = val
            for rest, ys in fibers.items():
                new_values[rest] = _lagrange_at(self.field, samples, ys, value)
        return GridPoly(self.field, new_vars, new_degs, new_values)

    def evaluate(self, assignment: Assignment) -> int:
        """Evaluate at a full assignment of the free variables."""
        current: GridPoly = self
        for var in self.variables:
            if var not in assignment:
                raise AlgebraError(f"assignment missing variable {var!r}")
            current = current.restrict(var, assignment[var])
        return current.as_constant()

    def to_univariate(self, var: str, others: Assignment) -> Poly:
        """The polynomial in ``var`` after fixing every other variable.

        This is exactly the message an honest prover sends in one protocol
        round.
        """
        current: GridPoly = self
        for other in self.variables:
            if other == var:
                continue
            if other not in others:
                raise AlgebraError(f"assignment missing variable {other!r}")
            current = current.restrict(other, others[other])
        axis_degree = current.degrees[current._axis(var)]
        samples = list(range(axis_degree + 1))
        points = [(x, current.values[(x,)]) for x in samples]
        return interpolate(self.field, points)

    def regrid(self, new_degrees: Sequence[int]) -> "GridPoly":
        """Resample onto a grid with (weakly) larger degree bounds.

        Needed before pointwise products: the product of two degree-d
        polynomials has degree 2d, so both factors are first resampled onto
        the degree-2d grid.  Shrinking a bound is refused — it would
        silently corrupt the representation unless the true degree is lower,
        which the caller cannot generally know.
        """
        new_degrees = tuple(new_degrees)
        if len(new_degrees) != len(self.degrees):
            raise AlgebraError("regrid degree vector has wrong length")
        for old, new in zip(self.degrees, new_degrees):
            if new < old:
                raise AlgebraError(f"regrid cannot shrink degree bound {old} -> {new}")
        current = self
        for axis in range(len(new_degrees)):
            current = current._expand_axis(axis, new_degrees[axis])
        return current

    def _expand_axis(self, axis: int, new_degree: int) -> "GridPoly":
        old_degree = self.degrees[axis]
        if new_degree == old_degree:
            return self
        samples = list(range(old_degree + 1))
        fibers: Dict[GridKey, List[int]] = {}
        for key, val in self.values.items():
            rest = key[:axis] + key[axis + 1:]
            fibers.setdefault(rest, [0] * len(samples))[key[axis]] = val
        new_values: Dict[GridKey, int] = {}
        for rest, ys in fibers.items():
            for x in range(new_degree + 1):
                value = (
                    ys[x] if x <= old_degree
                    else _lagrange_at(self.field, samples, ys, x)
                )
                new_values[rest[:axis] + (x,) + rest[axis:]] = value
        new_degs = self.degrees[:axis] + (new_degree,) + self.degrees[axis + 1:]
        return GridPoly(self.field, self.variables, new_degs, new_values)

    # ------------------------------------------------------------------
    # Pointwise combinations (grids must be aligned)
    # ------------------------------------------------------------------
    def _check_aligned(self, other: "GridPoly") -> None:
        if self.field != other.field:
            raise AlgebraError("mixed fields")
        if self.variables != other.variables or self.degrees != other.degrees:
            raise AlgebraError(
                f"misaligned grids: {self.variables}/{self.degrees} vs "
                f"{other.variables}/{other.degrees}"
            )

    def combine(
        self, other: "GridPoly", op: Callable[[int, int], int]
    ) -> "GridPoly":
        """Pointwise binary combination on aligned grids."""
        self._check_aligned(other)
        values = {key: self.field.normalize(op(val, other.values[key]))
                  for key, val in self.values.items()}
        return GridPoly(self.field, self.variables, self.degrees, values)

    def pointwise_product(self, other: "GridPoly") -> "GridPoly":
        """Pointwise product — callers must have regridded to 2x degrees."""
        return self.combine(other, self.field.mul)

    def pointwise_or(self, other: "GridPoly") -> "GridPoly":
        """Pointwise a + b - a*b (the arithmetized OR)."""
        return self.combine(other, self.field.bool_or)

    def sum_over_boolean_cube(self) -> int:
        """Sum of the polynomial over all Boolean assignments (for sumcheck)."""
        total = 0
        assignments = itertools.product((0, 1), repeat=self.arity)
        for bits in assignments:
            total += self.evaluate(dict(zip(self.variables, bits)))
        return self.field.normalize(total)
