"""Univariate polynomials over a prime field.

The messages of the interactive proofs (:mod:`repro.ip`) are univariate
polynomials: each round the prover sends the partial evaluation of a
multivariate claim as a polynomial in the single "active" variable.
:class:`Poly` provides the arithmetic the protocols need — evaluation,
ring operations, and Lagrange interpolation (how the honest prover builds
its message from point evaluations) — plus a compact wire serialisation.

Representation: coefficient tuple, lowest degree first, normalised (no
trailing zeros; the zero polynomial is the empty tuple).  All coefficients
are canonical field representatives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import AlgebraError
from repro.mathx.modular import Field


@dataclass(frozen=True)
class Poly:
    """A univariate polynomial over ``field``; immutable value object."""

    field: Field
    coeffs: Tuple[int, ...]

    @staticmethod
    def make(field: Field, coeffs: Sequence[int]) -> "Poly":
        """Build a polynomial, normalising coefficients and degree."""
        normalized = [field.normalize(c) for c in coeffs]
        while normalized and normalized[-1] == 0:
            normalized.pop()
        return Poly(field=field, coeffs=tuple(normalized))

    @staticmethod
    def zero(field: Field) -> "Poly":
        return Poly(field=field, coeffs=())

    @staticmethod
    def constant(field: Field, value: int) -> "Poly":
        return Poly.make(field, [value])

    @property
    def degree(self) -> int:
        """Degree, with the convention that the zero polynomial has degree -1."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return not self.coeffs

    def evaluate(self, x: int) -> int:
        """Horner evaluation at a field point."""
        result = 0
        for c in reversed(self.coeffs):
            result = (result * x + c) % self.field.p
        return result

    def _check_same_field(self, other: "Poly") -> None:
        if self.field != other.field:
            raise AlgebraError(
                f"mixed fields: GF({self.field.p}) vs GF({other.field.p})"
            )

    def __add__(self, other: "Poly") -> "Poly":
        self._check_same_field(other)
        n = max(len(self.coeffs), len(other.coeffs))
        coeffs = [
            ((self.coeffs[i] if i < len(self.coeffs) else 0)
             + (other.coeffs[i] if i < len(other.coeffs) else 0))
            for i in range(n)
        ]
        return Poly.make(self.field, coeffs)

    def __sub__(self, other: "Poly") -> "Poly":
        self._check_same_field(other)
        n = max(len(self.coeffs), len(other.coeffs))
        coeffs = [
            ((self.coeffs[i] if i < len(self.coeffs) else 0)
             - (other.coeffs[i] if i < len(other.coeffs) else 0))
            for i in range(n)
        ]
        return Poly.make(self.field, coeffs)

    def __mul__(self, other: "Poly") -> "Poly":
        self._check_same_field(other)
        if self.is_zero() or other.is_zero():
            return Poly.zero(self.field)
        coeffs = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                coeffs[i + j] += a * b
        return Poly.make(self.field, coeffs)

    def scale(self, factor: int) -> "Poly":
        """Multiply by a scalar."""
        return Poly.make(self.field, [c * factor for c in self.coeffs])

    def serialize(self) -> str:
        """Wire form: comma-separated coefficients, lowest degree first."""
        return ",".join(str(c) for c in self.coeffs)

    @staticmethod
    def deserialize(field: Field, text: str) -> "Poly":
        """Parse :meth:`serialize` output; raises :class:`AlgebraError` on junk."""
        text = text.strip()
        if not text:
            return Poly.zero(field)
        try:
            coeffs = [int(part) for part in text.split(",")]
        except ValueError as exc:
            raise AlgebraError(f"malformed polynomial wire form: {text!r}") from exc
        return Poly.make(field, coeffs)


def interpolate(field: Field, points: Sequence[Tuple[int, int]]) -> Poly:
    """Lagrange interpolation through distinct points ``(x, y)``.

    The honest provers evaluate their (low-degree) claims on ``degree+1``
    grid points and interpolate; with at most a dozen points at our sizes
    the quadratic Lagrange construction is plenty fast.
    """
    if not points:
        return Poly.zero(field)
    xs = [field.normalize(x) for x, _ in points]
    if len(set(xs)) != len(xs):
        raise AlgebraError(f"interpolation points must have distinct x: {xs}")
    result = Poly.zero(field)
    for i, (xi, yi) in enumerate(points):
        xi = field.normalize(xi)
        yi = field.normalize(yi)
        if yi == 0:
            continue
        # Basis polynomial L_i(x) = prod_{j != i} (x - xj) / (xi - xj).
        basis = Poly.constant(field, 1)
        denom = 1
        for j, (xj, _) in enumerate(points):
            if j == i:
                continue
            xj = field.normalize(xj)
            basis = basis * Poly.make(field, [field.neg(xj), 1])
            denom = field.mul(denom, field.sub(xi, xj))
        result = result + basis.scale(field.mul(yi, field.inv(denom)))
    return result


def evaluations(poly: Poly, xs: Sequence[int]) -> List[int]:
    """Evaluate ``poly`` at several points."""
    return [poly.evaluate(x) for x in xs]
