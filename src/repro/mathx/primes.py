"""Primality testing and prime search.

Deterministic Miller–Rabin for 64-bit integers (the witness set below is
proven complete for n < 3.3 * 10**24, far beyond our field moduli), plus a
``next_prime`` helper used when tests want small exotic fields.
"""

from __future__ import annotations

# Witnesses proving deterministic correctness for n < 3,317,044,064,679,887,385,961,981.
_MILLER_RABIN_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic primality test for integers below ~3.3e24."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n-1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MILLER_RABIN_WITNESSES:
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """The smallest prime >= n."""
    if n <= 2:
        return 2
    candidate = n | 1  # first odd >= n
    while not is_prime(candidate):
        candidate += 2
    return candidate
