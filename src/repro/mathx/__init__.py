"""Algebra substrate: prime fields, polynomials, grid-sampled multivariates.

Everything the interactive proofs (:mod:`repro.ip`) need, implemented from
scratch: GF(p) arithmetic (:mod:`.modular`), deterministic primality
testing (:mod:`.primes`), univariate polynomials with Lagrange
interpolation (:mod:`.polynomials`), and the grid representation of
low-degree multivariate polynomials that makes the honest provers fast
(:mod:`.multivariate`).
"""

from repro.mathx.modular import Field, DEFAULT_PRIME
from repro.mathx.primes import is_prime, next_prime
from repro.mathx.polynomials import Poly, interpolate, evaluations
from repro.mathx.multivariate import GridPoly

__all__ = [
    "Field",
    "DEFAULT_PRIME",
    "is_prime",
    "next_prime",
    "Poly",
    "interpolate",
    "evaluations",
    "GridPoly",
]
