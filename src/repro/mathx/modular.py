"""Prime-field arithmetic.

The interactive proofs of :mod:`repro.ip` work over GF(p) for a prime p
large enough that the soundness error (degree/p per round) is negligible at
our instance sizes.  :class:`Field` is a tiny value-object wrapper around
the modulus providing the handful of operations the protocols need; field
*elements* are plain Python ints in ``[0, p)`` — wrapping every element in
an object would slow the provers by an order of magnitude for no safety
gain, since the :class:`~repro.mathx.polynomials.Poly` layer normalises on
entry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.errors import AlgebraError
from repro.mathx.primes import is_prime

#: A comfortable default: the largest prime below 2**31, giving per-round
#: soundness error < 2**-27 at our degrees while keeping all arithmetic in
#: machine-word range.
DEFAULT_PRIME = 2_147_483_647


@dataclass(frozen=True)
class Field:
    """The prime field GF(p)."""

    p: int = DEFAULT_PRIME

    def __post_init__(self) -> None:
        if self.p < 2 or not is_prime(self.p):
            raise AlgebraError(f"field modulus must be prime: {self.p}")

    def normalize(self, value: int) -> int:
        """Map an integer to its canonical representative in [0, p)."""
        return value % self.p

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def neg(self, a: int) -> int:
        return (-a) % self.p

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on zero."""
        a %= self.p
        if a == 0:
            raise AlgebraError("zero has no multiplicative inverse")
        return pow(a, self.p - 2, self.p)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        return pow(a % self.p, e, self.p)

    def random_element(self, rng: random.Random) -> int:
        """A uniform field element (the verifier's challenge draw)."""
        return rng.randrange(self.p)

    def sum(self, values: Iterable[int]) -> int:
        total = 0
        for v in values:
            total += v
        return total % self.p

    def product(self, values: Iterable[int]) -> int:
        result = 1
        for v in values:
            result = (result * v) % self.p
        return result

    # The arithmetization of Boolean connectives (Section on delegation):
    # NOT x ↦ 1-x, AND ↦ x·y, OR ↦ x ⊕̃ y := 1-(1-x)(1-y).
    def bool_not(self, a: int) -> int:
        return (1 - a) % self.p

    def bool_and(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def bool_or(self, a: int, b: int) -> int:
        return (a + b - a * b) % self.p
