"""ServeEngine: an asyncio multiplexer for goal-oriented sessions.

One process, one event loop, thousands of interleaved sessions.  The
engine is a cooperative scheduler over :class:`~repro.serve.session.Session`
objects: each worker task repeatedly takes the next runnable session,
advances it ``slice_rounds`` rounds, and re-queues it — round-robin
through a deque, so no session can starve and no session can monopolise
the loop for more than one slice.  CPU-bound stepping happens inline (the
model is synchronous and pure Python); concurrency buys *multiplexing*
(long-lived sessions with persistent enumeration state, arrival/completion
overlap, bounded memory), not parallelism — that is what
:mod:`repro.analysis.parallel` is for.

Backpressure is at admission: the engine holds at most ``max_open``
sessions.  :meth:`ServeEngine.try_submit` *rejects* (raises
:class:`SessionRejected`) when full — the open-loop load-shedding mode —
while :meth:`ServeEngine.submit` *parks* the caller on a condition until
a slot frees.  Only admission is bounded; the internal runnable queue
holds admitted sessions only, so workers re-queueing a live session can
never deadlock against the limit.

Lifecycle: :meth:`start` (or ``async with``) spawns the workers;
:meth:`drain` closes admission and waits for every open session to
settle; :meth:`close` drains and then stops the workers; :meth:`abort`
fails everything immediately (pending futures get :class:`~repro.errors.ServeError`,
trace sinks are flushed via :meth:`~repro.serve.session.Session.abandon`).

Telemetry flows through a per-engine
:class:`~repro.obs.counters.CounterSet` (``serve.*`` names: sessions
submitted/rejected/parked/settled/achieved/failed, rounds, open-session
and queue-depth high-water marks) — the same plain-data snapshots the
sweep runner ships, so serve metrics merge into existing tooling.  With
``ledger_dir`` set, every session writes a manifest (and, with
``trace=True``, a certifiable trace) through the :mod:`repro.obs` ledger.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Union

from repro.errors import ServeError
from repro.obs.counters import CounterSet
from repro.obs.events import ABANDON_ABORT, ABANDON_FAILURE
from repro.obs.live import (
    AdminRoute,
    AdminServer,
    MetricsSampler,
    json_route,
    render_prometheus,
    write_metrics,
)
from repro.serve.session import (
    Session,
    SessionOutcome,
    SessionSpec,
    _cached_git_sha,
)


class SessionRejected(ServeError):
    """Admission refused: the engine is at ``max_open`` (backpressure)."""


class EngineClosed(ServeError):
    """Submission after :meth:`ServeEngine.drain`/``close`` began."""


class SessionHandle:
    """A submitted session's future result (plus the live session).

    ``await handle`` (or ``await handle.future``) yields the
    :class:`~repro.serve.session.SessionOutcome`; failures surface as the
    exception that broke the session.  The handle exposes the live
    :class:`~repro.serve.session.Session` read-only conveniences
    (``rounds_completed``) for progress inspection.
    """

    __slots__ = ("session", "future")

    def __init__(
        self, session: Session, future: "asyncio.Future[SessionOutcome]"
    ) -> None:
        self.session = session
        self.future = future

    @property
    def session_id(self) -> str:
        return self.session.session_id

    def done(self) -> bool:
        return self.future.done()

    async def result(self) -> SessionOutcome:
        return await self.future

    def __await__(self) -> Any:
        return self.future.__await__()

    def __repr__(self) -> str:
        state = "done" if self.future.done() else "open"
        return f"<SessionHandle {self.session_id} {state}>"


class ServeEngine:
    """A bounded, fair, drainable multiplexer of sessions.

    Parameters
    ----------
    max_open:
        Admission bound — the most sessions open (admitted, not yet
        settled) at once.  This is the engine's memory bound: each open
        session holds its states and recording buffers.
    workers:
        Cooperative worker tasks.  More workers do not add CPU (one
        event loop); they shorten the re-queue latency when a slice
        blocks on I/O (trace flushes).  One or two is typical.
    slice_rounds:
        Rounds per scheduling slice — the fairness quantum.  Small
        slices interleave finely (lower per-session latency variance),
        large slices amortise scheduling overhead.
    ledger_dir / trace / certify:
        Per-session provenance, passed through to
        :class:`~repro.serve.session.Session`: manifests (and traces,
        and an immediate certification re-check) for every session.
    metrics_path / metrics_interval_s:
        With a path set, :meth:`start` spawns a
        :class:`~repro.obs.live.MetricsSampler` task that appends one
        flushed sample per interval to the ``metrics.jsonl`` stream —
        counter deltas, gauge levels, cumulative histograms.  Off by
        default: the telemetry plane must cost nothing when unused.
    admin:
        An admin-endpoint spec (``[host:]port`` on loopback, or a UNIX
        socket path) serving ``/status`` and ``/sessions`` as JSON and
        ``/metrics`` as Prometheus text.  The bind happens on a
        background task; await :meth:`admin_address` for the resolved
        address (port ``0`` picks an ephemeral port).
    flight:
        Per-session flight-recorder capacity (0 = off).  Each session
        keeps a bounded ring of its most recent trace events; on
        failure or abort the ring is dumped to
        ``<ledger_dir>/flight/<session_id>.jsonl`` — a fragment
        checkable by ``python -m repro.obs certify --fragment``.
    """

    def __init__(
        self,
        *,
        max_open: int = 1024,
        workers: int = 2,
        slice_rounds: int = 32,
        ledger_dir: Optional[Union[str, Path]] = None,
        trace: bool = False,
        certify: bool = False,
        counters: Optional[CounterSet] = None,
        metrics_path: Optional[Union[str, Path]] = None,
        metrics_interval_s: float = 1.0,
        admin: Optional[str] = None,
        flight: int = 0,
    ) -> None:
        if max_open <= 0:
            raise ServeError(f"max_open must be positive: {max_open}")
        if workers <= 0:
            raise ServeError(f"workers must be positive: {workers}")
        if slice_rounds <= 0:
            raise ServeError(f"slice_rounds must be positive: {slice_rounds}")
        if flight and ledger_dir is None:
            raise ServeError("flight recording requires a ledger_dir for dumps")
        self.max_open = max_open
        self.slice_rounds = slice_rounds
        self.counters = counters if counters is not None else CounterSet()
        self._worker_count = workers
        self._ledger_dir = None if ledger_dir is None else Path(ledger_dir)
        self._trace = trace
        self._certify = certify
        self._flight = flight
        self._metrics_path = None if metrics_path is None else Path(metrics_path)
        self._metrics_interval_s = metrics_interval_s
        self._admin_spec = admin
        self._sampler: Optional[MetricsSampler] = None
        self._sampler_task: Optional["asyncio.Task[None]"] = None
        self._admin: Optional[AdminServer] = None
        self._admin_task: Optional["asyncio.Task[str]"] = None

        self._runnable: Deque[SessionHandle] = deque()
        self._handles: Dict[str, SessionHandle] = {}
        self._space = asyncio.Condition()
        self._wakeup = asyncio.Event()
        self._open = 0
        self._next_id = 0
        self._closing = False
        self._stopping = False
        self._started_at: Optional[float] = None
        self._workers: List["asyncio.Task[None]"] = []

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        """Spawn the worker tasks (requires a running event loop)."""
        if self._workers:
            raise ServeError("engine already started")
        if self._stopping:
            raise ServeError("engine already closed")
        if self._ledger_dir is not None:
            # Warm the git-sha cache before any session is admitted: the
            # first call shells out to `git rev-parse`, and leaving it to
            # the first session close would block the event loop mid-serve
            # (the RL101 hazard).  Here it costs startup time only.
            _cached_git_sha()
        self._started_at = time.monotonic()
        if self._metrics_path is not None:
            # Constructing the sampler opens + flushes the stream header:
            # startup-time I/O, same budget as the git-sha warm above.
            self._sampler = MetricsSampler(
                self.counters,
                self._metrics_path,
                interval_s=self._metrics_interval_s,
                gauges=self._gauge_levels,
            )
            self._sampler_task = asyncio.create_task(
                self._sampler.run(), name="serve-metrics"
            )
        if self._admin_spec is not None:
            self._admin = AdminServer(self._admin_routes())
            self._admin_task = asyncio.create_task(
                self._admin.start(self._admin_spec), name="serve-admin"
            )
        self._workers = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self._worker_count)
        ]

    async def __aenter__(self) -> "ServeEngine":
        # start() warms the git-sha cache (one subprocess) before any
        # session exists: blocking the loop at startup is the accepted
        # cost of never blocking it mid-serve.
        self.start()  # reprolint: disable=RL101
        return self

    async def __aexit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is None:
            await self.close()
        else:
            await self.abort()

    async def join(self) -> None:
        """Wait until every open session has settled (admission stays open)."""
        async with self._space:
            while self._open:
                await self._space.wait()

    async def drain(self) -> None:
        """Close admission, then wait for the open sessions to settle.

        Graceful by construction: sessions already admitted keep their
        enumeration state and run to their natural settle; parked
        :meth:`submit` callers are woken and get :class:`EngineClosed`.
        """
        self._closing = True
        async with self._space:
            self._space.notify_all()
        await self.join()

    async def close(self) -> None:
        """Drain, stop the workers and telemetry, write the summary."""
        await self.drain()
        self._stopping = True
        self._wakeup.set()
        if self._workers:
            # return_exceptions: a close after an explicit abort() must
            # not re-raise the workers' CancelledError.
            await asyncio.gather(*self._workers, return_exceptions=True)
        await self._stop_telemetry()
        # Runs after drain: no live session is left to stall, so the
        # summary write may block the loop for its one file.
        self._write_summary()  # reprolint: disable=RL101

    async def abort(self) -> None:
        """Fail fast: stop workers, fail every open session's future.

        Open sessions are :meth:`~repro.serve.session.Session.abandon`\\ ed
        (trace sinks flushed, flight rings dumped, no verdict written) so
        an aborted ledger is visibly incomplete rather than falsely
        certified.
        """
        self._closing = True
        self._stopping = True
        self._wakeup.set()
        for task in self._workers:
            task.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        error = ServeError("engine aborted")
        while self._runnable:
            handle = self._runnable.popleft()
            # Inline sink flush (and flight dump) on the fail-fast path:
            # the engine is tearing down, no serving is left to stall.
            handle.session.abandon(ABANDON_ABORT)  # reprolint: disable=RL101
            if not handle.future.done():
                handle.future.set_exception(error)
            self.counters.inc("serve.sessions_failed")
        self._handles.clear()
        async with self._space:
            self._open = 0
            self._space.notify_all()
        await self._stop_telemetry()

    async def _stop_telemetry(self) -> None:
        """Cancel the sampler task (final tick) and unbind the admin plane."""
        sampler_task, self._sampler_task = self._sampler_task, None
        if sampler_task is not None:
            sampler_task.cancel()
            try:
                await sampler_task
            except asyncio.CancelledError:
                pass
        if self._sampler is not None:
            # Final flushed tick: the stream's deltas sum to the totals.
            self._sampler.close()  # reprolint: disable=RL101
        admin_task, self._admin_task = self._admin_task, None
        if admin_task is not None:
            try:
                await admin_task
            except (OSError, ValueError):
                pass  # the bind itself failed; nothing to unbind
        admin, self._admin = self._admin, None
        if admin is not None:
            await admin.aclose()

    # ------------------------------------------------------------------
    # admission

    def _admit(self, spec: SessionSpec, session_id: Optional[str]) -> SessionHandle:
        if session_id is None:
            session_id = f"s{self._next_id:06d}"
        self._next_id += 1
        session = Session(
            spec,
            session_id=session_id,
            ledger_dir=self._ledger_dir,
            trace=self._trace,
            certify=self._certify,
            flight=self._flight,
        )
        loop = asyncio.get_running_loop()
        handle = SessionHandle(session, loop.create_future())
        self._open += 1
        self._runnable.append(handle)
        self._handles[session_id] = handle
        self.counters.inc("serve.sessions_submitted")
        self.counters.observe("serve.open_sessions", float(self._open))
        self.counters.observe("serve.queue_depth", float(len(self._runnable)))
        self._wakeup.set()
        return handle

    def try_submit(
        self, spec: SessionSpec, *, session_id: Optional[str] = None
    ) -> SessionHandle:
        """Admit ``spec`` now or raise — the load-shedding admission mode.

        Raises :class:`EngineClosed` once draining began and
        :class:`SessionRejected` when ``max_open`` sessions are already
        open; the caller decides whether to retry, queue elsewhere, or
        drop the arrival.
        """
        if self._closing:
            raise EngineClosed("engine is draining; no new sessions")
        if self._open >= self.max_open:
            self.counters.inc("serve.sessions_rejected")
            raise SessionRejected(
                f"{self._open} sessions open (max_open={self.max_open})"
            )
        return self._admit(spec, session_id)

    async def submit(
        self, spec: SessionSpec, *, session_id: Optional[str] = None
    ) -> SessionHandle:
        """Admit ``spec``, parking the caller while the engine is full.

        The flow-controlled admission mode: arrivals queue *outside* the
        engine (in their own coroutines) until a slot frees, so memory
        stays bounded by ``max_open`` no matter how fast callers submit.
        Raises :class:`EngineClosed` if draining begins while parked.
        """
        parked = False
        async with self._space:
            while self._open >= self.max_open and not self._closing:
                if not parked:
                    parked = True
                    self.counters.inc("serve.sessions_parked")
                await self._space.wait()
            if self._closing:
                raise EngineClosed("engine is draining; no new sessions")
            # Deliberate inline ledger I/O: admission opens the session's
            # trace sink (mkdir + open) on the loop.  Byte-identical
            # traces require the single-threaded write path
            # (docs/SERVING.md); the cost is microseconds on local disk.
            return self._admit(spec, session_id)  # reprolint: disable=RL101

    # ------------------------------------------------------------------
    # scheduling

    async def _worker(self) -> None:
        while True:
            if not self._runnable:
                if self._stopping:
                    return
                self._wakeup.clear()
                if self._runnable or self._stopping:
                    continue  # lost-wakeup guard: re-check after clear
                await self._wakeup.wait()
                continue
            handle = self._runnable.popleft()
            live = False
            error: Optional[BaseException] = None
            try:
                executed = handle.session.step(self.slice_rounds)
                self.counters.inc("serve.rounds", executed)
                live = handle.session.live
            except asyncio.CancelledError:
                self._runnable.appendleft(handle)
                raise
            except Exception as exc:
                error = exc
            if live:
                self._runnable.append(handle)
            else:
                await self._settle(handle, error)
            # Yield every slice so submitters, timers, and the other
            # workers run between quanta even while the queue is hot.
            await asyncio.sleep(0)

    async def _settle(
        self, handle: SessionHandle, error: Optional[BaseException]
    ) -> None:
        outcome: Optional[SessionOutcome] = None
        if error is None:
            try:
                # Deliberate inline ledger I/O: settling writes manifest +
                # trace tail on the loop — the single-threaded write path
                # that keeps traces byte-identical (docs/SERVING.md).
                outcome = handle.session.close()  # reprolint: disable=RL101
            except Exception as exc:
                error = exc
        if error is None:
            assert outcome is not None
            self.counters.inc("serve.sessions_settled")
            if outcome.outcome.achieved:
                self.counters.inc("serve.sessions_achieved")
            self.counters.observe(
                "serve.session_rounds", float(outcome.execution.rounds_executed)
            )
            self.counters.observe(
                "serve.session_wall_ms", outcome.wall_time_s * 1000.0
            )
        else:
            # Inline sink flush (and flight dump), same single-threaded
            # write path as above.
            handle.session.abandon(ABANDON_FAILURE)  # reprolint: disable=RL101
            self.counters.inc("serve.sessions_failed")
        self._handles.pop(handle.session_id, None)
        async with self._space:
            self._open -= 1
            self._space.notify_all()
        if not handle.future.done():
            if error is None:
                assert outcome is not None
                handle.future.set_result(outcome)
            else:
                handle.future.set_exception(error)

    # ------------------------------------------------------------------
    # introspection

    @property
    def open_sessions(self) -> int:
        """Sessions admitted and not yet settled."""
        return self._open

    @property
    def draining(self) -> bool:
        return self._closing

    def stats(self) -> Dict[str, Any]:
        """Counters snapshot plus the instantaneous gauges."""
        snapshot: Dict[str, Any] = dict(self.counters.snapshot())
        snapshot["open_sessions_now"] = self._open
        snapshot["runnable_now"] = len(self._runnable)
        return snapshot

    def _gauge_levels(self) -> Dict[str, float]:
        """The live gauge vector (the sampler's and admin plane's view)."""
        return {
            "open_sessions": float(self._open),
            "queue_depth": float(len(self._runnable)),
            "draining": 1.0 if self._closing else 0.0,
        }

    def _uptime_s(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def _status_payload(self) -> Dict[str, Any]:
        """The ``/status`` document (the shape ``repro.obs top`` eats)."""
        return {
            "seq": 0 if self._sampler is None else self._sampler.seq,
            "uptime_s": round(self._uptime_s(), 6),
            "counters": self.counters.snapshot(),
            "gauges": self._gauge_levels(),
            "draining": self._closing,
        }

    def _sessions_payload(self) -> List[Dict[str, Any]]:
        """The ``/sessions`` document: every open session, in admit order."""
        return [
            {
                "session_id": handle.session_id,
                "label": handle.session.spec.label,
                "rounds_completed": handle.session.rounds_completed,
                "live": handle.session.live,
            }
            for handle in self._handles.values()
        ]

    def _admin_routes(self) -> Dict[str, AdminRoute]:
        return {
            "/status": json_route(self._status_payload),
            "/sessions": json_route(self._sessions_payload),
            "/metrics": lambda: (
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(self.counters.snapshot(), self._gauge_levels()),
            ),
        }

    async def admin_address(self) -> str:
        """The admin endpoint's resolved address (awaits the bind)."""
        if self._admin_task is None:
            raise ServeError("engine has no admin endpoint configured")
        return await self._admin_task

    def _write_summary(self) -> None:
        """Compose the engine's counter snapshot into ``engine.json``.

        :func:`~repro.obs.live.write_metrics` merges over whatever the
        file already holds and stamps ``metrics_schema`` + the git SHA —
        a re-run refreshes its own figures without clobbering keys other
        tooling parked there.
        """
        if self._ledger_dir is None:
            return
        write_metrics(
            self._ledger_dir / "engine.json",
            self.stats(),
            git_sha=_cached_git_sha(),
        )

    def __repr__(self) -> str:
        return (
            f"<ServeEngine open={self._open}/{self.max_open} "
            f"runnable={len(self._runnable)} workers={len(self._workers)}>"
        )
