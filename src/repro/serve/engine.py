"""ServeEngine: an asyncio multiplexer for goal-oriented sessions.

One process, one event loop, thousands of interleaved sessions.  The
engine is a cooperative scheduler over :class:`~repro.serve.session.Session`
objects: each worker task repeatedly takes the next runnable session,
advances it ``slice_rounds`` rounds, and re-queues it — round-robin
through a deque, so no session can starve and no session can monopolise
the loop for more than one slice.  CPU-bound stepping happens inline (the
model is synchronous and pure Python); concurrency buys *multiplexing*
(long-lived sessions with persistent enumeration state, arrival/completion
overlap, bounded memory), not parallelism — that is what
:mod:`repro.analysis.parallel` is for.

Backpressure is at admission: the engine holds at most ``max_open``
sessions.  :meth:`ServeEngine.try_submit` *rejects* (raises
:class:`SessionRejected`) when full — the open-loop load-shedding mode —
while :meth:`ServeEngine.submit` *parks* the caller on a condition until
a slot frees.  Only admission is bounded; the internal runnable queue
holds admitted sessions only, so workers re-queueing a live session can
never deadlock against the limit.

Lifecycle: :meth:`start` (or ``async with``) spawns the workers;
:meth:`drain` closes admission and waits for every open session to
settle; :meth:`close` drains and then stops the workers; :meth:`abort`
fails everything immediately (pending futures get :class:`~repro.errors.ServeError`,
trace sinks are flushed via :meth:`~repro.serve.session.Session.abandon`).

Telemetry flows through a per-engine
:class:`~repro.obs.counters.CounterSet` (``serve.*`` names: sessions
submitted/rejected/parked/settled/achieved/failed, rounds, open-session
and queue-depth high-water marks) — the same plain-data snapshots the
sweep runner ships, so serve metrics merge into existing tooling.  With
``ledger_dir`` set, every session writes a manifest (and, with
``trace=True``, a certifiable trace) through the :mod:`repro.obs` ledger.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Union

from repro.errors import ServeError
from repro.obs.counters import CounterSet
from repro.serve.session import (
    Session,
    SessionOutcome,
    SessionSpec,
    _cached_git_sha,
)


class SessionRejected(ServeError):
    """Admission refused: the engine is at ``max_open`` (backpressure)."""


class EngineClosed(ServeError):
    """Submission after :meth:`ServeEngine.drain`/``close`` began."""


class SessionHandle:
    """A submitted session's future result (plus the live session).

    ``await handle`` (or ``await handle.future``) yields the
    :class:`~repro.serve.session.SessionOutcome`; failures surface as the
    exception that broke the session.  The handle exposes the live
    :class:`~repro.serve.session.Session` read-only conveniences
    (``rounds_completed``) for progress inspection.
    """

    __slots__ = ("session", "future")

    def __init__(
        self, session: Session, future: "asyncio.Future[SessionOutcome]"
    ) -> None:
        self.session = session
        self.future = future

    @property
    def session_id(self) -> str:
        return self.session.session_id

    def done(self) -> bool:
        return self.future.done()

    async def result(self) -> SessionOutcome:
        return await self.future

    def __await__(self) -> Any:
        return self.future.__await__()

    def __repr__(self) -> str:
        state = "done" if self.future.done() else "open"
        return f"<SessionHandle {self.session_id} {state}>"


class ServeEngine:
    """A bounded, fair, drainable multiplexer of sessions.

    Parameters
    ----------
    max_open:
        Admission bound — the most sessions open (admitted, not yet
        settled) at once.  This is the engine's memory bound: each open
        session holds its states and recording buffers.
    workers:
        Cooperative worker tasks.  More workers do not add CPU (one
        event loop); they shorten the re-queue latency when a slice
        blocks on I/O (trace flushes).  One or two is typical.
    slice_rounds:
        Rounds per scheduling slice — the fairness quantum.  Small
        slices interleave finely (lower per-session latency variance),
        large slices amortise scheduling overhead.
    ledger_dir / trace / certify:
        Per-session provenance, passed through to
        :class:`~repro.serve.session.Session`: manifests (and traces,
        and an immediate certification re-check) for every session.
    """

    def __init__(
        self,
        *,
        max_open: int = 1024,
        workers: int = 2,
        slice_rounds: int = 32,
        ledger_dir: Optional[Union[str, Path]] = None,
        trace: bool = False,
        certify: bool = False,
        counters: Optional[CounterSet] = None,
    ) -> None:
        if max_open <= 0:
            raise ServeError(f"max_open must be positive: {max_open}")
        if workers <= 0:
            raise ServeError(f"workers must be positive: {workers}")
        if slice_rounds <= 0:
            raise ServeError(f"slice_rounds must be positive: {slice_rounds}")
        self.max_open = max_open
        self.slice_rounds = slice_rounds
        self.counters = counters if counters is not None else CounterSet()
        self._worker_count = workers
        self._ledger_dir = None if ledger_dir is None else Path(ledger_dir)
        self._trace = trace
        self._certify = certify

        self._runnable: Deque[SessionHandle] = deque()
        self._space = asyncio.Condition()
        self._wakeup = asyncio.Event()
        self._open = 0
        self._next_id = 0
        self._closing = False
        self._stopping = False
        self._workers: List["asyncio.Task[None]"] = []

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        """Spawn the worker tasks (requires a running event loop)."""
        if self._workers:
            raise ServeError("engine already started")
        if self._stopping:
            raise ServeError("engine already closed")
        if self._ledger_dir is not None:
            # Warm the git-sha cache before any session is admitted: the
            # first call shells out to `git rev-parse`, and leaving it to
            # the first session close would block the event loop mid-serve
            # (the RL101 hazard).  Here it costs startup time only.
            _cached_git_sha()
        self._workers = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self._worker_count)
        ]

    async def __aenter__(self) -> "ServeEngine":
        # start() warms the git-sha cache (one subprocess) before any
        # session exists: blocking the loop at startup is the accepted
        # cost of never blocking it mid-serve.
        self.start()  # reprolint: disable=RL101
        return self

    async def __aexit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is None:
            await self.close()
        else:
            await self.abort()

    async def join(self) -> None:
        """Wait until every open session has settled (admission stays open)."""
        async with self._space:
            while self._open:
                await self._space.wait()

    async def drain(self) -> None:
        """Close admission, then wait for the open sessions to settle.

        Graceful by construction: sessions already admitted keep their
        enumeration state and run to their natural settle; parked
        :meth:`submit` callers are woken and get :class:`EngineClosed`.
        """
        self._closing = True
        async with self._space:
            self._space.notify_all()
        await self.join()

    async def close(self) -> None:
        """Drain, stop the workers, and write the engine summary."""
        await self.drain()
        self._stopping = True
        self._wakeup.set()
        if self._workers:
            await asyncio.gather(*self._workers)
        # Runs after drain: no live session is left to stall, so the
        # summary write may block the loop for its one file.
        self._write_summary()  # reprolint: disable=RL101

    async def abort(self) -> None:
        """Fail fast: stop workers, fail every open session's future.

        Open sessions are :meth:`~repro.serve.session.Session.abandon`\\ ed
        (trace sinks flushed, no verdict written) so an aborted ledger is
        visibly incomplete rather than falsely certified.
        """
        self._closing = True
        self._stopping = True
        self._wakeup.set()
        for task in self._workers:
            task.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        error = ServeError("engine aborted")
        while self._runnable:
            handle = self._runnable.popleft()
            # Inline sink flush on the fail-fast path: the engine is
            # tearing down, there is no serving left to stall.
            handle.session.abandon()  # reprolint: disable=RL101
            if not handle.future.done():
                handle.future.set_exception(error)
            self.counters.inc("serve.sessions_failed")
        async with self._space:
            self._open = 0
            self._space.notify_all()

    # ------------------------------------------------------------------
    # admission

    def _admit(self, spec: SessionSpec, session_id: Optional[str]) -> SessionHandle:
        if session_id is None:
            session_id = f"s{self._next_id:06d}"
        self._next_id += 1
        session = Session(
            spec,
            session_id=session_id,
            ledger_dir=self._ledger_dir,
            trace=self._trace,
            certify=self._certify,
        )
        loop = asyncio.get_running_loop()
        handle = SessionHandle(session, loop.create_future())
        self._open += 1
        self._runnable.append(handle)
        self.counters.inc("serve.sessions_submitted")
        self.counters.observe("serve.open_sessions", float(self._open))
        self.counters.observe("serve.queue_depth", float(len(self._runnable)))
        self._wakeup.set()
        return handle

    def try_submit(
        self, spec: SessionSpec, *, session_id: Optional[str] = None
    ) -> SessionHandle:
        """Admit ``spec`` now or raise — the load-shedding admission mode.

        Raises :class:`EngineClosed` once draining began and
        :class:`SessionRejected` when ``max_open`` sessions are already
        open; the caller decides whether to retry, queue elsewhere, or
        drop the arrival.
        """
        if self._closing:
            raise EngineClosed("engine is draining; no new sessions")
        if self._open >= self.max_open:
            self.counters.inc("serve.sessions_rejected")
            raise SessionRejected(
                f"{self._open} sessions open (max_open={self.max_open})"
            )
        return self._admit(spec, session_id)

    async def submit(
        self, spec: SessionSpec, *, session_id: Optional[str] = None
    ) -> SessionHandle:
        """Admit ``spec``, parking the caller while the engine is full.

        The flow-controlled admission mode: arrivals queue *outside* the
        engine (in their own coroutines) until a slot frees, so memory
        stays bounded by ``max_open`` no matter how fast callers submit.
        Raises :class:`EngineClosed` if draining begins while parked.
        """
        parked = False
        async with self._space:
            while self._open >= self.max_open and not self._closing:
                if not parked:
                    parked = True
                    self.counters.inc("serve.sessions_parked")
                await self._space.wait()
            if self._closing:
                raise EngineClosed("engine is draining; no new sessions")
            # Deliberate inline ledger I/O: admission opens the session's
            # trace sink (mkdir + open) on the loop.  Byte-identical
            # traces require the single-threaded write path
            # (docs/SERVING.md); the cost is microseconds on local disk.
            return self._admit(spec, session_id)  # reprolint: disable=RL101

    # ------------------------------------------------------------------
    # scheduling

    async def _worker(self) -> None:
        while True:
            if not self._runnable:
                if self._stopping:
                    return
                self._wakeup.clear()
                if self._runnable or self._stopping:
                    continue  # lost-wakeup guard: re-check after clear
                await self._wakeup.wait()
                continue
            handle = self._runnable.popleft()
            live = False
            error: Optional[BaseException] = None
            try:
                executed = handle.session.step(self.slice_rounds)
                self.counters.inc("serve.rounds", executed)
                live = handle.session.live
            except asyncio.CancelledError:
                self._runnable.appendleft(handle)
                raise
            except Exception as exc:
                error = exc
            if live:
                self._runnable.append(handle)
            else:
                await self._settle(handle, error)
            # Yield every slice so submitters, timers, and the other
            # workers run between quanta even while the queue is hot.
            await asyncio.sleep(0)

    async def _settle(
        self, handle: SessionHandle, error: Optional[BaseException]
    ) -> None:
        outcome: Optional[SessionOutcome] = None
        if error is None:
            try:
                # Deliberate inline ledger I/O: settling writes manifest +
                # trace tail on the loop — the single-threaded write path
                # that keeps traces byte-identical (docs/SERVING.md).
                outcome = handle.session.close()  # reprolint: disable=RL101
            except Exception as exc:
                error = exc
        if error is None:
            assert outcome is not None
            self.counters.inc("serve.sessions_settled")
            if outcome.outcome.achieved:
                self.counters.inc("serve.sessions_achieved")
            self.counters.observe(
                "serve.session_rounds", float(outcome.execution.rounds_executed)
            )
            self.counters.observe(
                "serve.session_wall_ms", outcome.wall_time_s * 1000.0
            )
        else:
            # Inline sink flush, same single-threaded write path as above.
            handle.session.abandon()  # reprolint: disable=RL101
            self.counters.inc("serve.sessions_failed")
        async with self._space:
            self._open -= 1
            self._space.notify_all()
        if not handle.future.done():
            if error is None:
                assert outcome is not None
                handle.future.set_result(outcome)
            else:
                handle.future.set_exception(error)

    # ------------------------------------------------------------------
    # introspection

    @property
    def open_sessions(self) -> int:
        """Sessions admitted and not yet settled."""
        return self._open

    @property
    def draining(self) -> bool:
        return self._closing

    def stats(self) -> Dict[str, Any]:
        """Counters snapshot plus the instantaneous gauges."""
        snapshot: Dict[str, Any] = dict(self.counters.snapshot())
        snapshot["open_sessions_now"] = self._open
        snapshot["runnable_now"] = len(self._runnable)
        return snapshot

    def _write_summary(self) -> None:
        """Drop the engine's counter snapshot beside the session ledger."""
        if self._ledger_dir is None:
            return
        self._ledger_dir.mkdir(parents=True, exist_ok=True)
        path = self._ledger_dir / "engine.json"
        path.write_text(
            json.dumps(self.stats(), indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    def __repr__(self) -> str:
        return (
            f"<ServeEngine open={self._open}/{self.max_open} "
            f"runnable={len(self._runnable)} workers={len(self._workers)}>"
        )
