"""The ``python -m repro.serve`` command line — serve load generation.

Runs one of the demo fleets (:func:`repro.serve.loadgen.demo_specs`)
through a fresh :class:`~repro.serve.engine.ServeEngine` and reports the
capacity figures::

    python -m repro.serve --sessions 1200 --family mixed --horizon 160
    python -m repro.serve --sessions 200 --drop 0.1 --ledger runs/ --trace

``--out BENCH_serve.json`` writes the report in the bench-baseline shape
consumed by ``benchmarks/check_bench_regression.py --metric
sessions_per_s``; ``--format json`` prints the same payload to stdout.
``--ledger DIR`` makes every session write a manifest (add ``--trace``
for certifiable traces, ``--certify`` to re-check each one on the spot).

The live telemetry plane (:mod:`repro.obs.live`): ``--metrics FILE``
streams flushed per-interval samples, ``--admin SPEC`` serves
``/status``/``/sessions``/``/metrics`` on loopback or a UNIX socket
(watch either with ``python -m repro.obs top``), and ``--flight N``
gives every session a bounded flight recorder whose last events are
dumped under ``<ledger>/flight/`` when the session dies.

Exit codes: 0 on a clean run, 1 when any session failed, 2 on usage
errors (argparse).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.serve.loadgen import ADMISSION_MODES, FAMILIES, demo_specs, run_load


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=(
            "Serve a fleet of goal-oriented sessions through the asyncio "
            "engine and report throughput/latency figures."
        ),
    )
    parser.add_argument(
        "--sessions", type=int, default=1000,
        help="fleet size (default 1000)",
    )
    parser.add_argument(
        "--family", choices=FAMILIES, default="mixed",
        help="demo goal family to serve (default mixed)",
    )
    parser.add_argument(
        "--horizon", type=int, default=160, metavar="ROUNDS",
        help="max rounds per session (default 160)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="master seed; per-session seeds fan out from it (default 0)",
    )
    parser.add_argument(
        "--drop", type=float, default=0.0, metavar="RATE",
        help="Bernoulli drop rate on every session's channel (default 0)",
    )
    parser.add_argument(
        "--rate", type=float, default=0.0, metavar="PER_S",
        help="arrival rate in sessions/s (default 0 = burst)",
    )
    parser.add_argument(
        "--admission", choices=ADMISSION_MODES, default="park",
        help="what a full engine does to arrivals (default park)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="engine worker tasks (default 2)",
    )
    parser.add_argument(
        "--max-open", type=int, default=2048, metavar="N",
        help="admission bound: max open sessions (default 2048)",
    )
    parser.add_argument(
        "--slice", dest="slice_rounds", type=int, default=32, metavar="ROUNDS",
        help="rounds per scheduling slice (default 32)",
    )
    parser.add_argument(
        "--ledger", type=Path, metavar="DIR",
        help="write a RunManifest per session into this directory",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="also write a certifiable JSONL trace per session (needs --ledger)",
    )
    parser.add_argument(
        "--certify", action="store_true",
        help="re-check every trace/manifest pair as it is written",
    )
    parser.add_argument(
        "--metrics", type=Path, metavar="FILE",
        help="stream live telemetry samples to this metrics.jsonl file",
    )
    parser.add_argument(
        "--metrics-interval", type=float, default=1.0, metavar="SECONDS",
        help="sampling interval for --metrics (default 1.0)",
    )
    parser.add_argument(
        "--admin", metavar="SPEC",
        help="serve /status /sessions /metrics on [host:]port (loopback) "
        "or a UNIX socket path",
    )
    parser.add_argument(
        "--flight", type=int, default=0, metavar="N",
        help="per-session flight-recorder capacity; failed sessions dump "
        "their last N events under <ledger>/flight/ (needs --ledger)",
    )
    parser.add_argument(
        "--out", type=Path, metavar="FILE",
        help="merge the report into this JSON baseline (BENCH_serve.json)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout rendering (default text)",
    )
    return parser


def _merge_baseline(path: Path, fields: Dict[str, Any]) -> None:
    """Merge ``fields`` into ``path`` the way the sweep bench composes
    BENCH_sweep.json — existing keys survive unless overwritten."""
    payload: Dict[str, Any] = {}
    if path.exists():
        loaded = json.loads(path.read_text(encoding="utf-8"))
        if isinstance(loaded, dict):
            payload = loaded
    payload.update(fields)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def _render_text(payload: Dict[str, Any]) -> str:
    lines = [
        f"served {payload['settled']}/{payload['sessions']} sessions "
        f"({payload['achieved']} achieved, {payload['failed']} failed, "
        f"{payload['rejected']} rejected) in {payload['wall_s']:.3f}s",
        f"throughput : {payload['sessions_per_s']:.1f} sessions/s, "
        f"{payload['rounds_per_s']:.0f} rounds/s",
        f"concurrency: {payload['open_high_water']} open sessions high-water "
        f"(max_open={payload['max_open']}, {payload['workers']} workers, "
        f"slice={payload['slice_rounds']})",
    ]
    p50, p95, p99 = (
        payload["latency_p50_ms"], payload["latency_p95_ms"],
        payload["latency_p99_ms"],
    )
    if p50 is not None:
        lines.append(
            f"latency    : p50 {p50:.1f}ms, p95 {p95:.1f}ms, p99 {p99:.1f}ms "
            "(arrival to settled)"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.trace and args.ledger is None:
        _parser().error("--trace requires --ledger DIR")
    if args.certify and not args.trace:
        _parser().error("--certify requires --trace")
    if args.flight and args.ledger is None:
        _parser().error("--flight requires --ledger DIR")

    specs = demo_specs(
        args.family,
        args.sessions,
        seed=args.seed,
        max_rounds=args.horizon,
        drop=args.drop,
    )
    report = run_load(
        specs,
        rate=args.rate,
        admission=args.admission,
        max_open=args.max_open,
        workers=args.workers,
        slice_rounds=args.slice_rounds,
        ledger_dir=None if args.ledger is None else str(args.ledger),
        trace=args.trace,
        certify=args.certify,
        metrics_path=None if args.metrics is None else str(args.metrics),
        metrics_interval_s=args.metrics_interval,
        admin=args.admin,
        flight=args.flight,
    )

    payload = report.to_payload()
    payload.update(
        {
            "family": args.family,
            "horizon": args.horizon,
            "drop": args.drop,
            "rate": args.rate,
            "workers": args.workers,
            "max_open": args.max_open,
            "slice_rounds": args.slice_rounds,
            "seed": args.seed,
            "cores": os.cpu_count() or 1,
        }
    )
    if args.out is not None:
        _merge_baseline(args.out, payload)
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        print(_render_text(payload))
    return 1 if report.failed else 0


if __name__ == "__main__":
    sys.exit(main())
