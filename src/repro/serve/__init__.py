"""A session service for goal-oriented communication.

The paper's setting — a user pursuing a goal against an unknown server
over an unreliable channel — is intrinsically a *long-running session*,
and the batch entry points (:func:`repro.core.execution.run_execution`,
:func:`repro.analysis.runner.sweep`) run each one to completion before
touching the next.  This package is the service form of the same model:

* :mod:`repro.serve.session` — one cast with create/step/close semantics,
  stepped cooperatively via :class:`repro.core.stepper.ExecutionStepper`,
  with the same provenance trail as :func:`repro.obs.ledger.record_run`
  (certifiable trace + manifest per session);
* :mod:`repro.serve.engine` — an asyncio :class:`~repro.serve.engine.ServeEngine`
  multiplexing thousands of sessions in one process, with bounded
  admission, reject/park backpressure, fair round-robin scheduling,
  graceful drain, and :class:`~repro.obs.counters.CounterSet` telemetry;
* :mod:`repro.serve.loadgen` — open-loop traffic over a grid of session
  specs, reporting throughput and latency percentiles
  (``python -m repro.serve`` is its CLI, writing ``BENCH_serve.json``).

Parity contract: a session stepped through the engine produces a
bitwise-identical :class:`~repro.core.execution.ExecutionResult` to
``run_execution`` on the same cast/seed — serving changes *where* rounds
run, never what they compute.  ``tests/serve`` and the ``serve-smoke``
CI job pin this.

Imports here are emit-side only (stdlib + core); ledger/certify modules
load lazily inside the tracing and manifest paths, mirroring
``repro.obs``'s split, so a metrics-only engine stays light.
"""

from repro.serve.engine import EngineClosed, ServeEngine, SessionHandle, SessionRejected
from repro.serve.session import (
    Session,
    SessionOutcome,
    SessionSpec,
    derive_session_seeds,
)

__all__ = [
    "EngineClosed",
    "ServeEngine",
    "Session",
    "SessionHandle",
    "SessionOutcome",
    "SessionRejected",
    "SessionSpec",
    "derive_session_seeds",
]
