"""One served session: a cast with create/step/close semantics.

A :class:`Session` owns exactly what one :func:`~repro.core.execution.run_execution`
call owns — user, server, world (via the goal), seed, recording policy,
fault channel — but advances it cooperatively: the engine steps it a few
rounds at a time and parks it between slices, so thousands of sessions
share one process while each keeps its enumeration state alive across
steps.  :meth:`Session.close` seals the run exactly the way
:func:`repro.obs.ledger.record_run` does: the goal is judged, the verdict
goes into the trace as evidence, and a :class:`~repro.obs.ledger.RunManifest`
with the trace's SHA-256 lands beside it — a served session is certifiable
by ``python -m repro.obs certify`` like any batch run.

Determinism is per-session: seeds derive through the same
:func:`~repro.core.stepper.derive_party_seeds` chain the engine uses, so a
session's results depend only on its spec, never on how it was interleaved
with its neighbours.  :func:`derive_session_seeds` spreads one master seed
into per-session seeds for fleets of sessions.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Union

from repro.core.execution import (
    METRICS_RECORDING,
    ExecutionResult,
    FaultyChannelLike,
    RecordingPolicy,
)
from repro.core.goals import Goal, GoalOutcome
from repro.core.stepper import ExecutionStepper
from repro.core.strategy import ServerStrategy, UserStrategy
from repro.errors import ServeError
from repro.obs.events import ABANDON_EXPLICIT, ABANDON_REASONS, SessionAbandoned
from repro.obs.flight import FlightBuffer, TeeSink, dump_flight
from repro.obs.tracer import Tracer

if TYPE_CHECKING:
    from repro.obs.ledger import RunManifest


def derive_session_seeds(seed: int, count: int) -> List[int]:
    """``count`` independent 64-bit session seeds from one master ``seed``.

    The service-level analogue of the engine's per-party chain: one
    configured seed fans out into one seed per session, so a fleet is
    reproducible from a single number and no two sessions share party
    streams.  Deterministic and order-stable — seed ``i`` is the same
    whether the fleet has 10 sessions or 10,000.
    """
    if count < 0:
        raise ServeError(f"count must be non-negative: {count}")
    master = random.Random(seed)
    return [master.getrandbits(64) for _ in range(count)]


@lru_cache(maxsize=1)
def _cached_git_sha() -> Optional[str]:
    """One ``git rev-parse`` per process, not one per served session."""
    from repro.obs.ledger import git_sha

    return git_sha()


@dataclass(frozen=True)
class SessionSpec:
    """Everything that determines one session's results.

    Immutable and reusable: the same spec submitted twice yields bitwise-
    identical executions, and strategy objects may be shared across specs
    (strategies are non-mutating by contract — reprolint RL002 — so
    interleaved sessions cannot contaminate each other through them).
    ``label`` is free-form provenance for load reports; identity lives in
    the cast + seed.
    """

    user: UserStrategy
    server: ServerStrategy
    goal: Goal
    seed: int = 0
    max_rounds: int = 2000
    recording: RecordingPolicy = METRICS_RECORDING
    channel: Optional[FaultyChannelLike] = None
    label: str = ""


@dataclass(frozen=True)
class SessionOutcome:
    """What :meth:`Session.close` hands back: the run plus its paper trail.

    ``execution`` is bitwise-identical to a batch ``run_execution`` of the
    same spec; ``outcome`` is the goal's judgement of it.  The ledger
    fields are ``None`` unless the session was created with a ledger
    directory.  ``wall_time_s``/``cpu_time_s`` cover only time spent
    *inside* this session (create + steps + close), not time parked in the
    engine's queues — the figure a manifest should carry for a multiplexed
    run.
    """

    session_id: str
    label: str
    execution: ExecutionResult
    outcome: GoalOutcome
    wall_time_s: float
    cpu_time_s: float
    manifest: Optional["RunManifest"] = None
    manifest_path: Optional[Path] = None
    trace_path: Optional[Path] = None


class Session:
    """One cast stepped cooperatively, with create/step/close semantics.

    Construction performs the engine's prologue (seed derivation, initial
    states, the trace's start event); :meth:`step` advances up to a slice
    of rounds; :meth:`close` seals the run, judges the goal, and writes
    the trace/manifest pair when a ledger directory was given.  Sessions
    are single-use and cooperative — many can interleave on one thread in
    any order without affecting any session's results.

    Universal users expose a reassignable ``tracer`` attribute; a traced
    session *borrows* it for exactly the duration of each step slice (and
    restores it after), so several sessions can share one user object and
    still write disjoint, per-session event streams.  Under cooperative
    single-threaded scheduling the borrowed stream is byte-identical to
    :func:`~repro.obs.ledger.record_run`'s whole-run borrowing, because
    users only emit while stepping.
    """

    def __init__(
        self,
        spec: SessionSpec,
        *,
        session_id: str = "s0",
        ledger_dir: Optional[Union[str, Path]] = None,
        trace: bool = False,
        certify: bool = False,
        flight: int = 0,
    ) -> None:
        if trace and ledger_dir is None:
            raise ServeError("trace=True requires a ledger_dir to write into")
        if certify and not trace:
            raise ServeError("certify=True requires trace=True")
        if flight < 0:
            raise ServeError(f"flight capacity must be non-negative: {flight}")
        if flight and ledger_dir is None:
            raise ServeError("flight recording requires a ledger_dir for dumps")
        self.spec = spec
        self.session_id = session_id
        self._ledger_dir = None if ledger_dir is None else Path(ledger_dir)
        self._certify = certify
        self._outcome: Optional[SessionOutcome] = None
        self._abandoned = False
        self._wall = 0.0
        self._cpu = 0.0

        self.trace_path: Optional[Path] = None
        self.flight_path: Optional[Path] = None
        self._tracer: Optional[Tracer] = None
        self._flight: Optional[FlightBuffer] = None
        if trace or flight:
            assert self._ledger_dir is not None
            from repro.obs.sinks import JsonlSink, Sink

            self._ledger_dir.mkdir(parents=True, exist_ok=True)
            sinks: List[Sink] = []
            if trace:
                from repro.obs.ledger import channel_spec

                header: Dict[str, Any] = {}
                described = channel_spec(spec.channel)
                if described is not None:
                    header["channel"] = described
                self.trace_path = self._ledger_dir / f"{session_id}.jsonl"
                sinks.append(JsonlSink(self.trace_path, header=header))
            if flight:
                self._flight = FlightBuffer(flight)
                sinks.append(self._flight)
            self._tracer = Tracer(
                sink=sinks[0] if len(sinks) == 1 else TeeSink(*sinks)
            )

        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        with self._borrowed_tracer():
            self._stepper = ExecutionStepper(
                spec.user,
                spec.server,
                spec.goal.world,
                max_rounds=spec.max_rounds,
                seed=spec.seed,
                tracer=self._tracer,
                recording=spec.recording,
                channel=spec.channel,
            )
        self._wall += time.perf_counter() - wall_start
        self._cpu += time.process_time() - cpu_start

    @contextmanager
    def _borrowed_tracer(self) -> Iterator[None]:
        """Lend this session's tracer to the (possibly shared) user."""
        user = self.spec.user
        borrow = self._tracer is not None and hasattr(user, "tracer")
        saved = user.tracer if borrow else None
        if borrow:
            user.tracer = self._tracer
        try:
            yield
        finally:
            if borrow:
                user.tracer = saved

    @property
    def live(self) -> bool:
        """``True`` until the user halts or ``max_rounds`` is exhausted."""
        return self._stepper.live

    @property
    def closed(self) -> bool:
        return self._outcome is not None

    @property
    def rounds_completed(self) -> int:
        return self._stepper.rounds_completed

    def step(self, rounds: int = 1) -> int:
        """Advance up to ``rounds`` rounds; return how many actually ran.

        Stops early when the session settles (check :attr:`live`); calling
        after :meth:`close` is a scheduler bug and raises
        :class:`~repro.errors.ServeError`.
        """
        if self._outcome is not None:
            raise ServeError(f"session {self.session_id} is closed")
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        with self._borrowed_tracer():
            executed = self._stepper.step_many(rounds)
        self._wall += time.perf_counter() - wall_start
        self._cpu += time.process_time() - cpu_start
        return executed

    def close(self) -> SessionOutcome:
        """Seal the session; idempotent after the first call.

        Finishes the stepper (an early close keeps the partial state —
        the goal then judges an unhalted run), evaluates the goal, emits
        the verdict into the trace, and writes the manifest beside it when
        a ledger directory was configured.  With ``certify=True`` the
        freshly written pair is immediately re-checked by
        :func:`repro.obs.certify.certify_run`.
        """
        if self._outcome is not None:
            return self._outcome
        spec = self.spec
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        with self._borrowed_tracer():
            execution = self._stepper.finish()
            outcome = spec.goal.evaluate(execution)
            if self._tracer is not None:
                from repro.obs.ledger import emit_goal_verdict

                emit_goal_verdict(self._tracer, spec.goal, outcome)
        if self._tracer is not None:
            self._tracer.close()
        self._wall += time.perf_counter() - wall_start
        self._cpu += time.process_time() - cpu_start

        manifest = None
        manifest_path = None
        if self._ledger_dir is not None:
            from repro.obs.ledger import RunManifest, file_sha256, write_manifest

            manifest = RunManifest(
                kind="run",
                goal=spec.goal.name,
                user=spec.user.name,
                server=spec.server.name,
                channel=(
                    None
                    if spec.channel is None
                    else getattr(spec.channel, "name", "channel")
                ),
                recording=spec.recording.label,
                seeds=(spec.seed,),
                max_rounds=spec.max_rounds,
                rounds=execution.rounds_executed,
                achieved=int(outcome.achieved),
                halted=int(execution.halted),
                wall_time_s=round(self._wall, 6),
                cpu_time_s=round(self._cpu, 6),
                trace_path=None if self.trace_path is None else self.trace_path.name,
                trace_sha256=(
                    None if self.trace_path is None else file_sha256(self.trace_path)
                ),
                git_sha=_cached_git_sha(),
            )
            manifest_path = write_manifest(
                manifest, self._ledger_dir / f"{self.session_id}.json"
            )
            if self._certify and self.trace_path is not None:
                from repro.obs.certify import certify_run

                certify_run(self.trace_path, manifest_path)

        self._outcome = SessionOutcome(
            session_id=self.session_id,
            label=spec.label,
            execution=execution,
            outcome=outcome,
            wall_time_s=self._wall,
            cpu_time_s=self._cpu,
            manifest=manifest,
            manifest_path=manifest_path,
            trace_path=self.trace_path,
        )
        return self._outcome

    def abandon(self, reason: str = ABANDON_EXPLICIT) -> None:
        """Release resources without sealing (the engine's abort path).

        Emits a terminating ``session-abandoned`` event (so the stream is
        self-describing about *why* it ends early), closes the trace sink
        so no file handle leaks, and — when the session carries a flight
        buffer — dumps the last events to ``flight/<session_id>.jsonl``,
        a fragment checkable by ``python -m repro.obs certify --fragment``.
        Writes no verdict and no manifest: an abandoned trace is visibly
        incomplete rather than falsely certified.  Safe to call at any
        point, including after :meth:`close` (then a no-op).
        """
        if reason not in ABANDON_REASONS:
            raise ServeError(f"unknown abandon reason {reason!r}")
        if self._outcome is not None or self._abandoned:
            return
        self._abandoned = True
        if self._tracer is not None:
            self._tracer.emit(
                SessionAbandoned(
                    session_id=self.session_id,
                    rounds_completed=self.rounds_completed,
                    reason=reason,
                )
            )
            self._tracer.close()
        if self._flight is not None:
            assert self._ledger_dir is not None
            self.flight_path = dump_flight(
                self._flight,
                self._ledger_dir / "flight" / f"{self.session_id}.jsonl",
                header={"session_id": self.session_id, "reason": reason},
            )

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("live" if self.live else "settled")
        return (
            f"<Session {self.session_id} {state} "
            f"rounds={self.rounds_completed}/{self.spec.max_rounds}>"
        )
