"""Open-loop load generation: a sweep grid replayed as arriving traffic.

The batch runner asks "what did every cell conclude?"; the load generator
asks "what does this engine sustain?".  :func:`grid_specs` converts the
same (user, servers, goal, seeds, channels) grid :func:`repro.analysis.runner.sweep`
crosses into one :class:`~repro.serve.session.SessionSpec` per cell×seed,
and :func:`generate_load` submits them to a :class:`~repro.serve.engine.ServeEngine`
at a target arrival rate (``rate=0`` = burst: all at once, the maximum-
concurrency stress mode).  Open loop means arrivals do not wait for
completions; what happens when the engine is full is the admission
policy's choice — ``"park"`` flow-controls the generator,
``"reject"`` sheds load and counts the drops.

:class:`LoadReport` carries the capacity-planning figures —
``sessions_per_s``, ``rounds_per_s``, the open-session high-water mark,
and settle-latency percentiles (arrival → settled, so parked time counts,
as it should for an arriving customer) — and serialises into the
``BENCH_serve.json`` shape the bench-regression gate consumes.

:func:`demo_specs` builds the self-contained demo fleets (relay machines,
control followers, universal users, or a mix) used by the CLI, the bench,
and the CI smoke — cheap casts with known verdicts, optionally behind a
Bernoulli-drop channel.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.execution import METRICS_RECORDING, FaultyChannelLike, RecordingPolicy
from repro.core.goals import Goal
from repro.core.strategy import ServerStrategy, UserStrategy
from repro.errors import ServeError
from repro.obs.counters import Histogram
from repro.serve.engine import ServeEngine, SessionHandle, SessionRejected
from repro.serve.session import SessionOutcome, SessionSpec, derive_session_seeds

#: Admission policies understood by :func:`generate_load`.
ADMISSION_MODES = ("park", "reject")

#: Goal families :func:`demo_specs` can build.
FAMILIES = ("relay", "control", "universal", "mixed")


def grid_specs(
    user: UserStrategy,
    servers: Sequence[ServerStrategy],
    goal: Goal,
    *,
    seeds: Sequence[int],
    max_rounds: int,
    recording: RecordingPolicy = METRICS_RECORDING,
    channels: Sequence[Optional[FaultyChannelLike]] = (None,),
) -> List[SessionSpec]:
    """The sweep grid as session specs: one per server × channel × seed.

    Same crossing order as :func:`repro.analysis.runner.sweep`
    (server-major, then channel, then seed), so spec ``i`` here is cell
    ``i``'s run there — load tests and batch sweeps stay comparable
    row by row.
    """
    specs: List[SessionSpec] = []
    for server in servers:
        for channel in channels:
            channel_name = (
                "-" if channel is None else getattr(channel, "name", "channel")
            )
            for seed in seeds:
                specs.append(
                    SessionSpec(
                        user=user,
                        server=server,
                        goal=goal,
                        seed=seed,
                        max_rounds=max_rounds,
                        recording=recording,
                        channel=channel,
                        label=f"{server.name}|{channel_name}|{seed}",
                    )
                )
    return specs


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of a sample (``q`` in [0, 100]).

    ``nan`` on an empty sample.  Nearest-rank (no interpolation) so the
    reported figure is always a latency that actually occurred.
    """
    if not 0.0 <= q <= 100.0:
        raise ServeError(f"percentile q must be in [0, 100]: {q}")
    if not values:
        return math.nan
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LoadReport:
    """One load run's capacity figures (the ``BENCH_serve.json`` shape)."""

    sessions: int
    settled: int
    achieved: int
    failed: int
    rejected: int
    rounds: int
    wall_s: float
    sessions_per_s: float
    rounds_per_s: float
    open_high_water: int
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float

    def to_payload(self) -> Dict[str, Any]:
        """Plain-data form for ``BENCH_serve.json`` / bench history."""
        payload: Dict[str, Any] = {
            "sessions": self.sessions,
            "settled": self.settled,
            "achieved": self.achieved,
            "failed": self.failed,
            "rejected": self.rejected,
            "rounds": self.rounds,
            "wall_s": round(self.wall_s, 4),
            "sessions_per_s": round(self.sessions_per_s, 3),
            "rounds_per_s": round(self.rounds_per_s, 1),
            "open_high_water": self.open_high_water,
        }
        for name, value in (
            ("latency_p50_ms", self.latency_p50_ms),
            ("latency_p95_ms", self.latency_p95_ms),
            ("latency_p99_ms", self.latency_p99_ms),
        ):
            payload[name] = None if math.isnan(value) else round(value, 3)
        return payload


async def generate_load(
    engine: ServeEngine,
    specs: Sequence[SessionSpec],
    *,
    rate: float = 0.0,
    admission: str = "park",
) -> LoadReport:
    """Submit ``specs`` as open-loop traffic and wait for every settle.

    ``rate`` is the target arrival rate in sessions/second (``0`` =
    burst); the generator sleeps to hold each arrival at its scheduled
    time, never ahead of it.  The report reads the engine's counters, so
    pass a *fresh* engine (or accept that earlier traffic folds into the
    figures).  Throughput (``sessions_per_s``) counts settles over the
    whole run wall-clock; latency is arrival → settled per session.
    """
    if admission not in ADMISSION_MODES:
        raise ServeError(
            f"unknown admission mode {admission!r} (expected one of "
            f"{ADMISSION_MODES})"
        )
    # Streaming quantiles: O(1) memory however many sessions arrive,
    # where the old per-session latency list grew with the fleet.
    latency_ms = Histogram("latency_ms")

    def _stamp(future: "asyncio.Future[SessionOutcome]", arrival: float) -> None:
        future.add_done_callback(
            lambda _: latency_ms.observe((time.perf_counter() - arrival) * 1000.0)
        )

    start = time.perf_counter()
    handles: List[SessionHandle] = []
    rejected = 0
    for index, spec in enumerate(specs):
        if rate > 0.0:
            due = start + index / rate
            delay = due - time.perf_counter()
            if delay > 0.0:
                await asyncio.sleep(delay)
        try:
            # Admission opens the session ledger inline (see
            # ServeEngine._admit): deliberate single-threaded write path.
            if admission == "reject":
                handle = engine.try_submit(spec)  # reprolint: disable=RL101
            else:
                handle = await engine.submit(spec)
        except SessionRejected:
            rejected += 1
            continue
        _stamp(handle.future, time.perf_counter())
        handles.append(handle)

    results = await asyncio.gather(
        *(h.future for h in handles), return_exceptions=True
    )
    wall = time.perf_counter() - start

    settled = sum(1 for r in results if isinstance(r, SessionOutcome))
    achieved = sum(
        1 for r in results if isinstance(r, SessionOutcome) and r.outcome.achieved
    )
    failed = len(results) - settled
    rounds = engine.counters.get("serve.rounds")
    open_histogram = engine.counters.histogram("serve.open_sessions")
    open_high_water = int(open_histogram.maximum) if open_histogram.count else 0
    return LoadReport(
        sessions=len(specs),
        settled=settled,
        achieved=achieved,
        failed=failed,
        rejected=rejected,
        rounds=rounds,
        wall_s=wall,
        sessions_per_s=settled / wall if wall > 0 else 0.0,
        rounds_per_s=rounds / wall if wall > 0 else 0.0,
        open_high_water=open_high_water,
        latency_p50_ms=latency_ms.quantile(0.5),
        latency_p95_ms=latency_ms.quantile(0.95),
        latency_p99_ms=latency_ms.quantile(0.99),
    )


def run_load(
    specs: Sequence[SessionSpec],
    *,
    rate: float = 0.0,
    admission: str = "park",
    max_open: int = 2048,
    workers: int = 2,
    slice_rounds: int = 32,
    ledger_dir: Optional[str] = None,
    trace: bool = False,
    certify: bool = False,
    metrics_path: Optional[str] = None,
    metrics_interval_s: float = 1.0,
    admin: Optional[str] = None,
    flight: int = 0,
) -> LoadReport:
    """Synchronous wrapper: fresh engine, one load run, graceful close."""

    async def _run() -> LoadReport:
        engine = ServeEngine(
            max_open=max_open,
            workers=workers,
            slice_rounds=slice_rounds,
            ledger_dir=ledger_dir,
            trace=trace,
            certify=certify,
            metrics_path=metrics_path,
            metrics_interval_s=metrics_interval_s,
            admin=admin,
            flight=flight,
        )
        async with engine:
            return await generate_load(
                engine, specs, rate=rate, admission=admission
            )

    return asyncio.run(_run())


def demo_specs(
    family: str,
    sessions: int,
    *,
    seed: int = 0,
    max_rounds: int = 200,
    drop: float = 0.0,
    recording: RecordingPolicy = METRICS_RECORDING,
) -> List[SessionSpec]:
    """``sessions`` self-contained specs from one of the demo families.

    ``relay`` — tabular relay decoders against the cyclic coded-server
    class (the cheapest cast, scalar machine steps); ``control`` — advisor
    followers matched to their advisor (scripted, always achieves on a
    clean channel); ``universal`` — the compact universal user enumerating
    the follower class (the paper's Theorem 1 dynamics, ~10× dearer);
    ``mixed`` — round-robin across all three.  ``drop`` > 0 puts every
    session behind an independent Bernoulli-drop channel (per-session
    faults; the channel object is shared, its fault stream derives from
    each session's seed).  Session seeds fan out from ``seed`` via
    :func:`~repro.serve.session.derive_session_seeds`.
    """
    if family not in FAMILIES:
        raise ServeError(
            f"unknown family {family!r} (expected one of {FAMILIES})"
        )
    if sessions < 0:
        raise ServeError(f"sessions must be non-negative: {sessions}")
    from repro.comm.codecs import codec_family
    from repro.faults.channel import drop_channel
    from repro.machines.tabular import (
        coded_server_class,
        relay_decoder_class,
        relay_goal,
    )
    from repro.servers.advisors import advisor_server_class
    from repro.universal.compact import CompactUniversalUser
    from repro.universal.enumeration import ListEnumeration
    from repro.users.control_users import follower_user_class
    from repro.worlds.control import control_goal, control_sensing, random_law

    channel = drop_channel(drop) if drop > 0.0 else None

    symbols = tuple("abcdefgh")
    r_goal = relay_goal(symbols)
    r_users = relay_decoder_class(symbols)
    r_servers = coded_server_class(symbols)

    codecs = codec_family(4)
    # Fan all of this function's entropy out of ONE root stream: the law
    # and the session seeds used to share `random.Random(seed)` directly,
    # which made the control law a deterministic function of the session
    # seeds' own stream prefix (correlated draws; reprolint RL203).
    entropy = random.Random(seed)
    law_seed = entropy.getrandbits(64)
    session_root = entropy.getrandbits(64)
    law = random_law(random.Random(law_seed))
    c_goal = control_goal(law)
    c_servers = advisor_server_class(law, codecs)
    c_users = follower_user_class(codecs)

    def relay_spec(index: int, session_seed: int) -> SessionSpec:
        server = r_servers[index % len(r_servers)]
        return SessionSpec(
            user=r_users[0], server=server, goal=r_goal, seed=session_seed,
            max_rounds=max_rounds, recording=recording, channel=channel,
            label=f"relay|{server.name}|{session_seed}",
        )

    def control_spec(index: int, session_seed: int) -> SessionSpec:
        pick = index % len(c_servers)
        return SessionSpec(
            user=c_users[pick], server=c_servers[pick], goal=c_goal,
            seed=session_seed, max_rounds=max_rounds, recording=recording,
            channel=channel,
            label=f"control|{c_servers[pick].name}|{session_seed}",
        )

    # One shared universal user: its enumeration state is per-execution
    # (threaded through the engine), so sharing is safe under interleaving
    # — exactly the property the seed-isolation tests pin.
    u_user = CompactUniversalUser(
        ListEnumeration(c_users, label="followers"), control_sensing()
    )

    def universal_spec(index: int, session_seed: int) -> SessionSpec:
        server = c_servers[index % len(c_servers)]
        return SessionSpec(
            user=u_user, server=server, goal=c_goal, seed=session_seed,
            max_rounds=max_rounds, recording=recording, channel=channel,
            label=f"universal|{server.name}|{session_seed}",
        )

    builders = {
        "relay": (relay_spec,),
        "control": (control_spec,),
        "universal": (universal_spec,),
        "mixed": (relay_spec, control_spec, universal_spec),
    }[family]
    seeds = derive_session_seeds(session_root, sessions)
    return [
        builders[i % len(builders)](i // len(builders), seeds[i])
        for i in range(sessions)
    ]


__all__ = [
    "ADMISSION_MODES",
    "FAMILIES",
    "LoadReport",
    "demo_specs",
    "generate_load",
    "grid_specs",
    "percentile",
    "run_load",
]
