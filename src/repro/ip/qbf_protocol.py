"""The Shamir/Shen interactive proof for TQBF, implemented from scratch.

This is the substrate behind the paper's flagship delegation example
(Juba–Sudan, STOC'08): a polynomial-time *verifier* (the user) is convinced
of the truth value of a PSPACE-complete statement by an untrusted, powerful
*prover* (the server).  Completeness makes honest provers *helpful*;
soundness gives the user **safe sensing** — a wrong claim survives all the
verifier's checks with probability at most
:func:`~repro.ip.degree.soundness_error_bound`, so "the proof verified" is a
trustworthy positive indication no matter how alien or malicious the server.

Protocol outline (operators and degree schedule in :mod:`repro.ip.degree`):
the prover claims the QBF's value; then, peeling the operator sequence
outermost-first, it sends in each round the univariate polynomial obtained
from the current partial application by fixing the verifier's past
challenges.  The verifier checks degree and local consistency

* ``∀`` rounds:  claim = s(0) · s(1)
* ``∃`` rounds:  claim = s(0) + s(1) − s(0)·s(1)
* ``L`` rounds:  claim = (1−r_v)·s(0) + r_v·s(1)

then draws a fresh challenge and continues; after the last round it checks
the residual claim against a single direct evaluation of the arithmetized
matrix.

The honest prover precomputes every intermediate polynomial as a
:class:`~repro.mathx.multivariate.GridPoly`, making each round's message a
cheap restriction+interpolation instead of an exponential recursion.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import AlgebraError
from repro.ip.degree import (
    LINEARIZE,
    QUANT_EXISTS,
    QUANT_FORALL,
    ScheduledOp,
    operator_schedule,
)
from repro.ip.transcript import ProofRound, ProofTranscript
from repro.mathx.modular import Field
from repro.mathx.multivariate import GridPoly
from repro.mathx.polynomials import Poly
from repro.qbf.arithmetize import arith_eval, base_grid
from repro.qbf.qbf import QBF


def apply_operator(grid: GridPoly, op: ScheduledOp, field: Field) -> GridPoly:
    """Apply one quantifier/linearization operator to a grid polynomial."""
    if op.kind == LINEARIZE:
        return _linearize(grid, op.var)
    g0 = grid.restrict(op.var, 0)
    g1 = grid.restrict(op.var, 1)
    doubled = tuple(2 * d for d in g0.degrees)
    g0 = g0.regrid(doubled)
    g1 = g1.regrid(doubled)
    if op.kind == QUANT_FORALL:
        return g0.pointwise_product(g1)
    if op.kind == QUANT_EXISTS:
        return g0.pointwise_or(g1)
    raise AlgebraError(f"unknown operator kind: {op.kind}")


def _linearize(grid: GridPoly, var: str) -> GridPoly:
    """Shen's linearization: replace ``var`` by degree ≤ 1.

    ``L_v f = (1−v)·f|0 + v·f|1`` agrees with ``f`` on Boolean points and is
    linear in ``v``; on the grid this means the new axis has samples {0, 1}
    carrying the old restrictions.  A variable that was already constant
    (degree 0) is untouched — linearization is the identity there.
    """
    axis = grid.variables.index(var)
    if grid.degrees[axis] <= 1:
        return grid
    g0 = grid.restrict(var, 0)
    g1 = grid.restrict(var, 1)
    new_degrees = grid.degrees[:axis] + (1,) + grid.degrees[axis + 1:]
    values: Dict[Tuple[int, ...], int] = {}
    for key, val in g0.values.items():
        values[key[:axis] + (0,) + key[axis:]] = val
    for key, val in g1.values.items():
        values[key[:axis] + (1,) + key[axis:]] = val
    return GridPoly(grid.field, grid.variables, new_degrees, values)


class QBFProver:
    """Interface the verifier-side drivers expect of any prover."""

    @property
    def name(self) -> str:
        return type(self).__name__

    def claimed_value(self) -> int:
        """The bit the prover asserts the QBF evaluates to."""
        raise NotImplementedError

    def round_message(self, round_index: int, challenges: Dict[str, int]) -> Poly:
        """The polynomial for protocol round ``round_index``.

        ``challenges`` maps each variable to the verifier's most recent
        challenge for it (what an interactive prover would have accumulated
        from the conversation).
        """
        raise NotImplementedError


class HonestQBFProver(QBFProver):
    """The prover that makes the protocol complete.

    Precomputes the grid form of every partial application ``F^{(j)}``; each
    round's message is then a restriction of the appropriate grid.  The
    precomputation is the exponential-in-``n`` part (it embeds the PSPACE
    evaluation) — exactly the work the user is delegating away.
    """

    def __init__(self, qbf: QBF, field: Field) -> None:
        self._qbf = qbf
        self._field = field
        self._schedule = operator_schedule(qbf)
        grids: List[GridPoly] = [base_grid(qbf.matrix, field, qbf.variable_names)]
        for op in self._schedule:
            grids.append(apply_operator(grids[-1], op, field))
        self._grids = grids

    def claimed_value(self) -> int:
        return self._grids[-1].as_constant()

    def round_message(self, round_index: int, challenges: Dict[str, int]) -> Poly:
        # Round r peels the operator at application index j = M-1-r (0-based);
        # the message is F^{(j)} as a univariate in the operator's variable.
        j = len(self._schedule) - 1 - round_index
        op = self._schedule[j]
        operand = self._grids[j]
        others = {
            var: challenges[var] for var in operand.variables if var != op.var
        }
        return operand.to_univariate(op.var, others)


class FlipClaimProver(QBFProver):
    """Claims the wrong bit but otherwise plays honestly.

    The first consistency check exposes it deterministically: the honest
    first message satisfies the *true* claim, not the flipped one.  Used to
    test that the verifier's checks are actually wired to the claim.
    """

    def __init__(self, qbf: QBF, field: Field) -> None:
        self._honest = HonestQBFProver(qbf, field)

    def claimed_value(self) -> int:
        return 1 - self._honest.claimed_value()

    def round_message(self, round_index: int, challenges: Dict[str, int]) -> Poly:
        return self._honest.round_message(round_index, challenges)


class ConstantCheatingProver(QBFProver):
    """The strongest simple cheater: stays locally consistent all the way.

    Claims a chosen bit and sends the constant polynomial of that bit every
    round.  Every local check passes (``b·b = b``, ``b+b−b·b = b``,
    ``(1−r)b + rb = b``), so the lie survives until the verifier's final
    direct evaluation of the matrix at a random point — which equals the
    constant ``b`` only with probability ≈ ``deg/p``.  This cheater
    therefore measures the strength of the *final check* specifically.
    """

    def __init__(self, field: Field, claim_bit: int) -> None:
        if claim_bit not in (0, 1):
            raise AlgebraError(f"claim bit must be 0 or 1: {claim_bit}")
        self._field = field
        self._bit = claim_bit

    @property
    def name(self) -> str:
        return f"ConstantCheatingProver({self._bit})"

    def claimed_value(self) -> int:
        return self._bit

    def round_message(self, round_index: int, challenges: Dict[str, int]) -> Poly:
        return Poly.constant(self._field, self._bit)


class RandomCheatingProver(QBFProver):
    """Claims the wrong bit and sends random degree-legal polynomials.

    Each consistency check then passes only by luck; rejection is expected
    within the first round or two.  Parameterised by its own RNG so tests
    can sweep many cheating transcripts cheaply.
    """

    def __init__(self, qbf: QBF, field: Field, rng: random.Random) -> None:
        self._schedule = operator_schedule(qbf)
        self._field = field
        self._rng = rng
        self._true_value = HonestQBFProver(qbf, field).claimed_value()

    def claimed_value(self) -> int:
        return 1 - self._true_value

    def round_message(self, round_index: int, challenges: Dict[str, int]) -> Poly:
        j = len(self._schedule) - 1 - round_index
        bound = self._schedule[j].degree_bound
        coeffs = [self._field.random_element(self._rng) for _ in range(bound + 1)]
        return Poly.make(self._field, coeffs)


class QBFVerifierSession:
    """The polynomial-time verifier, as an incremental session.

    Drive it with :meth:`begin`, then alternate ``receive_poly`` (returning
    the next challenge, or ``None`` when the protocol has finished) until
    :attr:`finished`.  The session never raises on malformed or cheating
    input — it rejects, because in the goal-oriented setting a lying server
    is an expected event, not an exception.
    """

    def __init__(self, qbf: QBF, field: Field, rng: random.Random) -> None:
        self._qbf = qbf
        self._field = field
        self._rng = rng
        self._reversed = list(reversed(operator_schedule(qbf)))
        self._round = 0
        self._claim: Optional[int] = None
        self._challenges: Dict[str, int] = {}
        self.transcript: Optional[ProofTranscript] = None
        self._verdict: Optional[bool] = None

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._verdict is not None

    @property
    def accepted(self) -> bool:
        if self._verdict is None:
            raise AlgebraError("protocol still running")
        return self._verdict

    @property
    def rounds_total(self) -> int:
        return len(self._reversed)

    @property
    def rounds_done(self) -> int:
        return self._round

    def current_op(self) -> ScheduledOp:
        """The operator the next prover message must address."""
        return self._reversed[self._round]

    # ------------------------------------------------------------------
    def begin(self, claimed_value: int) -> None:
        """Accept the prover's claimed bit and open the session."""
        if claimed_value not in (0, 1):
            self.transcript = ProofTranscript(claimed_value=-1)
            self._finish(False, f"claimed value must be a bit: {claimed_value}")
            return
        self._claim = claimed_value
        self.transcript = ProofTranscript(claimed_value=claimed_value)

    def receive_poly(self, poly: Poly) -> Optional[int]:
        """Process one prover message; return the challenge or ``None``.

        ``None`` means the session has finished (check :attr:`accepted`);
        this happens on rejection or after the final round's check.
        """
        if self._claim is None:
            self._finish(False, "protocol not begun")
            return None
        if self.finished:
            return None
        op = self._reversed[self._round]
        claim_before = self._claim

        if poly.degree > op.degree_bound:
            self._record(op, poly, None, claim_before, None)
            self._finish(
                False,
                f"round {self._round}: degree {poly.degree} exceeds bound "
                f"{op.degree_bound}",
            )
            return None

        s0 = poly.evaluate(0)
        s1 = poly.evaluate(1)
        if op.kind == QUANT_FORALL:
            expected = self._field.mul(s0, s1)
        elif op.kind == QUANT_EXISTS:
            expected = self._field.bool_or(s0, s1)
        else:  # LINEARIZE: the variable already has a challenge to recombine.
            r_v = self._challenges[op.var]
            expected = self._field.add(
                self._field.mul(self._field.sub(1, r_v), s0),
                self._field.mul(r_v, s1),
            )
        if expected != self._claim:
            self._record(op, poly, None, claim_before, None)
            self._finish(
                False,
                f"round {self._round}: {op.kind}({op.var}) consistency check "
                f"failed",
            )
            return None

        challenge = self._field.random_element(self._rng)
        self._challenges[op.var] = challenge
        self._claim = poly.evaluate(challenge)
        self._record(op, poly, challenge, claim_before, self._claim)
        self._round += 1

        if self._round == len(self._reversed):
            actual = arith_eval(self._qbf.matrix, self._field, self._challenges)
            if actual == self._claim:
                self._finish(True)
            else:
                self._finish(False, "final matrix evaluation mismatch")
            return None
        return challenge

    def challenges_so_far(self) -> Dict[str, int]:
        """Copy of the verifier's randomness (what the prover has learnt)."""
        return dict(self._challenges)

    # ------------------------------------------------------------------
    def _record(
        self,
        op: ScheduledOp,
        poly: Poly,
        challenge: Optional[int],
        claim_before: int,
        claim_after: Optional[int],
    ) -> None:
        assert self.transcript is not None
        self.transcript.record(
            ProofRound(
                index=self._round,
                op_kind=op.kind,
                var=op.var,
                degree_bound=op.degree_bound,
                poly=poly,
                challenge=challenge,
                claim_before=claim_before,
                claim_after=claim_after,
            )
        )

    def _finish(self, accepted: bool, reason: str = "") -> None:
        self._verdict = accepted
        if self.transcript is not None:
            self.transcript.finish(accepted, reason)


@dataclass(frozen=True)
class ProofResult:
    """Outcome of a complete protocol run."""

    accepted: bool
    claimed_value: int
    rounds_run: int
    transcript: ProofTranscript


def run_qbf_protocol(
    qbf: QBF,
    prover: QBFProver,
    field: Field,
    rng: random.Random,
) -> ProofResult:
    """Drive a full prover/verifier interaction (function-level harness).

    The strategy-level wrappers in :mod:`repro.servers.provers` and
    :mod:`repro.users.delegation_users` run the same protocol over the
    three-party engine's channels; this direct driver is what the unit and
    property tests exercise.
    """
    session = QBFVerifierSession(qbf, field, rng)
    claimed = prover.claimed_value()
    session.begin(claimed)
    round_index = 0
    while not session.finished:
        poly = prover.round_message(round_index, session.challenges_so_far())
        session.receive_poly(poly)
        round_index += 1
    assert session.transcript is not None
    return ProofResult(
        accepted=session.accepted,
        claimed_value=claimed,
        rounds_run=session.rounds_done,
        transcript=session.transcript,
    )
