"""Interactive proofs: the TQBF (Shamir/Shen) protocol and sumcheck.

The delegation experiments' trust substrate.  Soundness of these protocols
is what gives the delegating user *safe sensing* (Section 3 of the paper):
a positive indication — "the proof verified" — can be trusted even against
adversarial or misunderstood servers.
"""

from repro.ip.degree import (
    QUANT_FORALL,
    QUANT_EXISTS,
    LINEARIZE,
    ScheduledOp,
    operator_schedule,
    soundness_error_bound,
)
from repro.ip.transcript import ProofRound, ProofTranscript
from repro.ip.qbf_protocol import (
    QBFProver,
    HonestQBFProver,
    FlipClaimProver,
    ConstantCheatingProver,
    RandomCheatingProver,
    QBFVerifierSession,
    ProofResult,
    run_qbf_protocol,
    apply_operator,
)
from repro.ip.sumcheck import (
    SumcheckProver,
    HonestSumcheckProver,
    InflatingSumcheckProver,
    AdaptiveSumcheckCheater,
    SumcheckVerifierSession,
    SumcheckResult,
    run_sumcheck,
    count_satisfying_assignments,
)

__all__ = [
    "QUANT_FORALL",
    "QUANT_EXISTS",
    "LINEARIZE",
    "ScheduledOp",
    "operator_schedule",
    "soundness_error_bound",
    "ProofRound",
    "ProofTranscript",
    "QBFProver",
    "HonestQBFProver",
    "FlipClaimProver",
    "ConstantCheatingProver",
    "RandomCheatingProver",
    "QBFVerifierSession",
    "ProofResult",
    "run_qbf_protocol",
    "apply_operator",
    "SumcheckProver",
    "HonestSumcheckProver",
    "InflatingSumcheckProver",
    "AdaptiveSumcheckCheater",
    "SumcheckVerifierSession",
    "SumcheckResult",
    "run_sumcheck",
    "count_satisfying_assignments",
]
