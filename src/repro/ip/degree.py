"""Operator sequence and degree schedule for the TQBF protocol.

The Shamir/Shen interactive proof for TQBF evaluates a quantified Boolean
formula by applying a sequence of algebraic operators to the arithmetized
matrix ``A``:

* quantifier operators — ``∀_v f = f|_{v=0} · f|_{v=1}`` and
  ``∃_v f = f|_{v=0} ⊕̃ f|_{v=1}`` with ``a ⊕̃ b = a+b−ab`` — which
  eliminate a variable but *double* the degree of every remaining one, and
* Shen's linearization operators — ``L_v f = (1−v)·f|_{v=0} + v·f|_{v=1}``
  — which restore variable ``v`` to degree ≤ 1.

Applying, innermost quantifier first, ``Q_{x_k}`` followed by
``L_{x_1} .. L_{x_{k-1}}`` for k = n..1 yields a constant equal to the QBF's
truth value (1 or 0).  The interactive protocol walks this sequence in
*reverse*, one prover message per operator; the verifier must know, for each
round, an upper bound on the degree of the polynomial the prover is supposed
to send.  :func:`operator_schedule` computes the full sequence together with
those bounds by symbolically tracking the per-variable degree vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import FormulaError
from repro.qbf.arithmetize import degree_vector
from repro.qbf.qbf import FORALL, QBF

#: Operator kinds.
QUANT_FORALL = "forall"
QUANT_EXISTS = "exists"
LINEARIZE = "linearize"


@dataclass(frozen=True)
class ScheduledOp:
    """One operator of the application sequence, with protocol metadata.

    ``degree_bound`` bounds the degree of the prover's message in the round
    that peels this operator: the degree of ``var`` in the operand
    polynomial ``F^{(j-1)}``.  ``free_after`` lists the free variables of
    the *result* ``F^{(j)}`` (what the verifier's random assignment covers
    when this operator's round begins).
    """

    kind: str
    var: str
    degree_bound: int
    free_after: Tuple[str, ...]


def operator_schedule(qbf: QBF) -> List[ScheduledOp]:
    """The operator sequence in application order, with degree bounds.

    The protocol processes the *reverse* of this list.  Degrees are tracked
    exactly as the operators transform them: quantifiers double every other
    variable's degree, linearization clamps one variable to degree ≤ 1 (or
    0, if it was already constant in the operand).
    """
    if not qbf.prefix:
        raise FormulaError("operator schedule needs at least one quantifier")
    names = list(qbf.variable_names)
    degrees: Dict[str, int] = dict(
        zip(names, degree_vector(qbf.matrix, names))
    )
    schedule: List[ScheduledOp] = []
    for k in range(len(names), 0, -1):
        quantifier, var = qbf.prefix[k - 1]
        kind = QUANT_FORALL if quantifier == FORALL else QUANT_EXISTS
        bound = degrees.pop(var)
        remaining = names[: k - 1]
        degrees = {name: 2 * degrees[name] for name in remaining}
        schedule.append(
            ScheduledOp(
                kind=kind,
                var=var,
                degree_bound=bound,
                free_after=tuple(remaining),
            )
        )
        for name in remaining:
            schedule.append(
                ScheduledOp(
                    kind=LINEARIZE,
                    var=name,
                    degree_bound=degrees[name],
                    free_after=tuple(remaining),
                )
            )
            degrees[name] = min(degrees[name], 1)
    return schedule


def soundness_error_bound(qbf: QBF, field_size: int) -> float:
    """Upper bound on the cheating prover's success probability.

    Each round, a dishonest prover survives only if the verifier's random
    challenge hits a root of the difference between the claimed and true
    polynomials — probability ``degree / p`` — so the total error is at most
    the sum of the per-round degree bounds over ``p``.
    """
    total_degree = sum(op.degree_bound for op in operator_schedule(qbf))
    return total_degree / field_size
