"""The sumcheck protocol, for counting-style delegation.

The classic Lund–Fortnow–Karloff–Nisan protocol: the prover claims the value
of ``Σ_{x ∈ {0,1}^n} g(x)`` for a low-degree polynomial ``g`` (here: the
arithmetization of a Boolean formula, so the sum counts satisfying
assignments) and proves it in ``n`` rounds of univariate messages.  We use
it as a second, simpler delegation substrate alongside the full TQBF proof:
the #SAT goal exercises the same safety-via-soundness story with lighter
machinery, which keeps some integration tests fast.

Round ``i``: the prover sends ``s_i(z) = Σ_{x_{i+1..n}} g(r_1..r_{i-1}, z,
x_{i+1..n})``; the verifier checks ``s_i(0) + s_i(1)`` against the running
claim, draws ``r_i``, and continues with claim ``s_i(r_i)``; the final claim
is checked by one direct evaluation ``g(r_1..r_n)``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import AlgebraError
from repro.ip.transcript import ProofRound, ProofTranscript
from repro.mathx.modular import Field
from repro.mathx.multivariate import GridPoly
from repro.mathx.polynomials import Poly
from repro.qbf.arithmetize import arith_eval, base_grid
from repro.qbf.formulas import Formula, evaluate, variables


def count_satisfying_assignments(formula: Formula, order: Sequence[str]) -> int:
    """Brute-force #SAT over the given variable order (the ground truth)."""
    order = list(order)
    missing = variables(formula) - set(order)
    if missing:
        raise AlgebraError(f"order misses variables: {sorted(missing)}")
    count = 0
    for bits in itertools.product((False, True), repeat=len(order)):
        if evaluate(formula, dict(zip(order, bits))):
            count += 1
    return count


class SumcheckProver:
    """Interface for sumcheck provers."""

    @property
    def name(self) -> str:
        return type(self).__name__

    def claimed_sum(self) -> int:
        raise NotImplementedError

    def round_message(self, round_index: int, challenges: Dict[str, int]) -> Poly:
        raise NotImplementedError


class HonestSumcheckProver(SumcheckProver):
    """Computes partial sums via suffix-summed grid polynomials.

    ``S_i(x_1..x_i) = Σ_{x_{i+1}..x_n ∈ {0,1}} g`` is precomputed for every
    ``i`` (each is the sum of two restrictions of the next), so each round's
    message is a restriction of the right ``S_i``.
    """

    def __init__(self, formula: Formula, field: Field, order: Sequence[str]) -> None:
        self._field = field
        self._order = tuple(order)
        grid = base_grid(formula, field, self._order)
        suffix_sums: List[GridPoly] = [grid]  # suffix_sums[k] = S_{n-k}
        for var in reversed(self._order):
            latest = suffix_sums[-1]
            summed = latest.restrict(var, 0).combine(
                latest.restrict(var, 1), field.add
            )
            suffix_sums.append(summed)
        # Reorder so partial_sums[i] = S_i (free vars x_1..x_i).
        self._partial_sums = list(reversed(suffix_sums))

    def claimed_sum(self) -> int:
        return self._partial_sums[0].as_constant()

    def round_message(self, round_index: int, challenges: Dict[str, int]) -> Poly:
        # Message i (0-based) is S_{i+1} as a univariate in x_{i+1}.
        target = self._partial_sums[round_index + 1]
        var = self._order[round_index]
        others = {v: challenges[v] for v in target.variables if v != var}
        return target.to_univariate(var, others)


class InflatingSumcheckProver(SumcheckProver):
    """Cheats by overstating the sum, then plays honestly.

    The first round check ``s_1(0) + s_1(1) = claim`` fails immediately —
    the honest analogue of :class:`~repro.ip.qbf_protocol.FlipClaimProver`.
    """

    def __init__(
        self, formula: Formula, field: Field, order: Sequence[str], delta: int = 1
    ) -> None:
        self._honest = HonestSumcheckProver(formula, field, order)
        self._field = field
        self._delta = delta

    def claimed_sum(self) -> int:
        return self._field.add(self._honest.claimed_sum(), self._delta)

    def round_message(self, round_index: int, challenges: Dict[str, int]) -> Poly:
        return self._honest.round_message(round_index, challenges)


class AdaptiveSumcheckCheater(SumcheckProver):
    """A cheater that stays locally consistent at every round.

    Claims a wrong sum and, each round, adds half the current discrepancy
    to the honest polynomial as a constant: the ``s(0)+s(1)`` check then
    passes exactly, and the discrepancy halves per round (it never reaches
    zero in a prime field), so the lie survives every intermediate check
    and is exposed only by the verifier's final direct evaluation.  This
    cheater demonstrates that the intermediate checks alone are *not* the
    source of soundness — the final random evaluation is.
    """

    def __init__(
        self, formula: Formula, field: Field, order: Sequence[str], delta: int = 1
    ) -> None:
        if field.normalize(delta) == 0:
            raise AlgebraError("a cheater must actually lie: delta != 0")
        self._honest = HonestSumcheckProver(formula, field, order)
        self._field = field
        self._discrepancy = field.normalize(delta)
        self._next_round = 0

    def claimed_sum(self) -> int:
        return self._field.add(self._honest.claimed_sum(), self._discrepancy)

    def round_message(self, round_index: int, challenges: Dict[str, int]) -> Poly:
        if round_index != self._next_round:
            raise AlgebraError("adaptive cheater must see rounds in order")
        honest = self._honest.round_message(round_index, challenges)
        half = self._field.mul(self._discrepancy, self._field.inv(2))
        self._discrepancy = half
        self._next_round += 1
        return honest + Poly.constant(self._field, half)


class SumcheckVerifierSession:
    """Incremental sumcheck verifier (mirrors :class:`QBFVerifierSession`)."""

    def __init__(
        self,
        formula: Formula,
        field: Field,
        order: Sequence[str],
        rng: random.Random,
    ) -> None:
        self._formula = formula
        self._field = field
        self._order = tuple(order)
        self._rng = rng
        self._degree_bounds = [
            max(1, _degree_in(formula, var)) for var in self._order
        ]
        self._round = 0
        self._claim: Optional[int] = None
        self._challenges: Dict[str, int] = {}
        self._verdict: Optional[bool] = None
        self.transcript: Optional[ProofTranscript] = None

    @property
    def finished(self) -> bool:
        return self._verdict is not None

    @property
    def accepted(self) -> bool:
        if self._verdict is None:
            raise AlgebraError("protocol still running")
        return self._verdict

    def begin(self, claimed_sum: int) -> None:
        self._claim = self._field.normalize(claimed_sum)
        self.transcript = ProofTranscript(claimed_value=self._claim)

    def receive_poly(self, poly: Poly) -> Optional[int]:
        if self._claim is None:
            self._finish(False, "protocol not begun")
            return None
        if self.finished:
            return None
        var = self._order[self._round]
        bound = self._degree_bounds[self._round]
        claim_before = self._claim
        if poly.degree > bound:
            self._record(var, bound, poly, None, claim_before, None)
            self._finish(False, f"round {self._round}: degree exceeds {bound}")
            return None
        if self._field.add(poly.evaluate(0), poly.evaluate(1)) != self._claim:
            self._record(var, bound, poly, None, claim_before, None)
            self._finish(False, f"round {self._round}: partial-sum check failed")
            return None
        challenge = self._field.random_element(self._rng)
        self._challenges[var] = challenge
        self._claim = poly.evaluate(challenge)
        self._record(var, bound, poly, challenge, claim_before, self._claim)
        self._round += 1
        if self._round == len(self._order):
            actual = arith_eval(self._formula, self._field, self._challenges)
            self._finish(
                actual == self._claim,
                "" if actual == self._claim else "final evaluation mismatch",
            )
            return None
        return challenge

    def challenges_so_far(self) -> Dict[str, int]:
        return dict(self._challenges)

    def _record(self, var, bound, poly, challenge, before, after) -> None:
        assert self.transcript is not None
        self.transcript.record(
            ProofRound(
                index=self._round,
                op_kind="sum",
                var=var,
                degree_bound=bound,
                poly=poly,
                challenge=challenge,
                claim_before=before,
                claim_after=after,
            )
        )

    def _finish(self, accepted: bool, reason: str = "") -> None:
        self._verdict = accepted
        if self.transcript is not None:
            self.transcript.finish(accepted, reason)


def _degree_in(formula: Formula, var: str) -> int:
    from repro.qbf.formulas import arithmetization_degree

    return arithmetization_degree(formula, var)


@dataclass(frozen=True)
class SumcheckResult:
    """Outcome of a complete sumcheck run."""

    accepted: bool
    claimed_sum: int
    rounds_run: int
    transcript: ProofTranscript


def run_sumcheck(
    formula: Formula,
    prover: SumcheckProver,
    field: Field,
    order: Sequence[str],
    rng: random.Random,
) -> SumcheckResult:
    """Drive a full sumcheck interaction."""
    session = SumcheckVerifierSession(formula, field, order, rng)
    claimed = prover.claimed_sum()
    session.begin(claimed)
    round_index = 0
    while not session.finished:
        poly = prover.round_message(round_index, session.challenges_so_far())
        session.receive_poly(poly)
        round_index += 1
    assert session.transcript is not None
    return SumcheckResult(
        accepted=session.accepted,
        claimed_sum=claimed,
        rounds_run=len(session.transcript.rounds),
        transcript=session.transcript,
    )
