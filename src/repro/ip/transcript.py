"""Proof transcripts: the round-by-round record of an interactive proof.

Kept separate from the engine-level :class:`repro.comm.transcripts.Transcript`
(which logs raw channel traffic): a :class:`ProofTranscript` records the
*semantic* rounds of a protocol — which operator was processed, what
polynomial the prover sent, what challenge the verifier drew — and is what
the soundness tests and the delegation benchmarks inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.mathx.polynomials import Poly
from repro.obs.events import Event, ProofFinished, ProofRoundChecked, ProofStarted


@dataclass(frozen=True)
class ProofRound:
    """One prover message / verifier challenge exchange."""

    index: int
    op_kind: str
    var: str
    degree_bound: int
    poly: Poly
    challenge: Optional[int]
    claim_before: int
    claim_after: Optional[int]


@dataclass
class ProofTranscript:
    """The full record of one protocol run."""

    claimed_value: int
    rounds: List[ProofRound] = field(default_factory=list)
    accepted: Optional[bool] = None
    rejection_reason: str = ""

    def record(self, round_: ProofRound) -> None:
        self.rounds.append(round_)

    @property
    def rounds_run(self) -> int:
        return len(self.rounds)

    def finish(self, accepted: bool, reason: str = "") -> None:
        self.accepted = accepted
        self.rejection_reason = reason

    def format(self) -> str:
        """Human-readable rendering for examples and debugging."""
        lines = [f"claimed value: {self.claimed_value}"]
        for r in self.rounds:
            challenge = "-" if r.challenge is None else str(r.challenge)
            lines.append(
                f"  [{r.index:3d}] {r.op_kind:<9} {r.var:<4} deg<={r.degree_bound} "
                f"poly=({r.poly.serialize() or '0'}) challenge={challenge}"
            )
        status = {True: "ACCEPTED", False: "REJECTED", None: "UNFINISHED"}[self.accepted]
        lines.append(f"  => {status} {self.rejection_reason}")
        return "\n".join(lines)


def transcript_events(
    transcript: ProofTranscript, *, protocol: str, modulus: int
) -> List[Event]:
    """Serialise a finished transcript as trace events.

    The bundle — one :class:`~repro.obs.events.ProofStarted`, one
    :class:`~repro.obs.events.ProofRoundChecked` per round (polynomials in
    :meth:`Poly.serialize` wire form), one
    :class:`~repro.obs.events.ProofFinished` — carries everything the
    ``repro.obs certify`` checker needs to recheck the verifier's degree,
    consistency, and evaluation constraints offline.  Raises
    ``ValueError`` on an unfinished transcript: partial proofs are not
    evidence.
    """
    if transcript.accepted is None:
        raise ValueError("cannot serialise an unfinished proof transcript")
    events: List[Event] = [
        ProofStarted(
            protocol=protocol,
            modulus=modulus,
            claimed_value=transcript.claimed_value,
        )
    ]
    for r in transcript.rounds:
        events.append(
            ProofRoundChecked(
                index=r.index,
                op_kind=r.op_kind,
                var=r.var,
                degree_bound=r.degree_bound,
                poly=r.poly.serialize(),
                challenge=r.challenge,
                claim_before=r.claim_before,
                claim_after=r.claim_after,
            )
        )
    events.append(
        ProofFinished(
            accepted=transcript.accepted, reason=transcript.rejection_reason
        )
    )
    return events
