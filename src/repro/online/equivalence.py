"""Measurement harness for the learning ↔ communication equivalence.

Functions that run the *same* task in both frameworks and report mistakes,
used by experiment E8 and its tests:

* :func:`mistakes_in_world` — run any lookup-world user strategy in the
  full three-party engine and read the world's mistake counter.
* :func:`mistakes_in_game` — run any online learner in the pure game on a
  matched query sequence.
* :func:`enumeration_user` / :func:`halving_user` — the two protagonists:
  the Theorem 1-style enumerate-and-switch user and the halving-learner
  user, whose mistake scalings (linear vs. logarithmic in class size) E8
  contrasts.
"""

from __future__ import annotations

import random

from repro.core.execution import run_execution
from repro.core.strategy import SilentServer, UserStrategy
from repro.online.adapter import LearnerUser, threshold_user_class
from repro.online.learners import (
    HalvingLearner,
    OnlineLearner,
    WeightedMajorityLearner,
    threshold_class,
)
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.worlds.lookup import LookupState, lookup_goal, lookup_sensing


def enumeration_user(domain: int, *, grace_rounds: int = 10) -> CompactUniversalUser:
    """The Theorem 1 user for the lookup goal: enumerate rigid thresholds.

    Its mistakes scale with the index of the true threshold — the
    enumeration overhead the paper proves necessary in general, and which
    E8 shows is beaten by structure-aware learners on this special class.
    """
    return CompactUniversalUser(
        ListEnumeration(threshold_user_class(domain), label="thresholds"),
        lookup_sensing(grace_rounds=grace_rounds),
    )


def halving_user(domain: int) -> LearnerUser:
    """The halving learner as a lookup-world user (mistakes ≤ log₂(D+1))."""
    return LearnerUser(
        lambda: HalvingLearner(threshold_class(domain)), label=f"halving[{domain}]"
    )


def weighted_majority_user(domain: int, beta: float = 0.5) -> LearnerUser:
    """The weighted-majority learner as a lookup-world user."""
    return LearnerUser(
        lambda: WeightedMajorityLearner(threshold_class(domain), beta=beta),
        label=f"wm[{domain}]",
    )


def mistakes_in_world(
    user: UserStrategy,
    threshold: int,
    domain: int,
    *,
    horizon: int = 600,
    seed: int = 0,
) -> int:
    """Total mistakes the lookup world charged the user over one execution."""
    goal = lookup_goal(threshold, domain)
    execution = run_execution(
        user, SilentServer(), goal.world, max_rounds=horizon, seed=seed
    )
    state = execution.final_world_state()
    assert isinstance(state, LookupState)
    return state.mistakes


def mistakes_in_game(
    learner: OnlineLearner,
    threshold: int,
    domain: int,
    *,
    n_queries: int = 200,
    seed: int = 0,
) -> int:
    """Mistakes of a pure online learner on a random query sequence."""
    from repro.online.learners import simulate_mistakes
    from repro.worlds.lookup import threshold_label

    rng = random.Random(seed)
    queries = [rng.randrange(domain) for _ in range(n_queries)]
    return simulate_mistakes(
        learner, lambda x: threshold_label(threshold, x), queries
    )
