"""Online learning and its equivalence with simple-goal communication.

The paper's closing citation [5] (Juba–Vempala): for simple multi-session
goals, universal users and mistake-bounded online learners are the same
object.  Pure learners (:mod:`.learners`), the two reduction adapters
(:mod:`.adapter`), and the measurement harness (:mod:`.equivalence`).
"""

from repro.online.learners import (
    Hypothesis,
    OnlineLearner,
    HalvingLearner,
    WeightedMajorityLearner,
    SingleHypothesisLearner,
    threshold_class,
    simulate_mistakes,
)
from repro.online.adapter import (
    LearnerUser,
    ThresholdUser,
    threshold_user_class,
    UserAsLearner,
)
from repro.online.equivalence import (
    enumeration_user,
    halving_user,
    weighted_majority_user,
    mistakes_in_world,
    mistakes_in_game,
)

__all__ = [
    "Hypothesis",
    "OnlineLearner",
    "HalvingLearner",
    "WeightedMajorityLearner",
    "SingleHypothesisLearner",
    "threshold_class",
    "simulate_mistakes",
    "LearnerUser",
    "ThresholdUser",
    "threshold_user_class",
    "UserAsLearner",
    "enumeration_user",
    "halving_user",
    "weighted_majority_user",
    "mistakes_in_world",
    "mistakes_in_game",
]
