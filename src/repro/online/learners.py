"""Online mistake-bounded learners (the Juba–Vempala side of the bridge).

Pure online learning, no communication model in sight: a learner predicts a
Boolean label for each query and is told the truth afterwards.  The classic
results implemented here:

* :class:`HalvingLearner` — predict the majority of the consistent
  hypotheses ("version space"); every mistake at least halves the space, so
  mistakes ≤ log₂ |class|.
* :class:`WeightedMajorityLearner` — multiplicative weights over the class;
  mistake bound O(log |class|) with graceful degradation under noise.
* :class:`SingleHypothesisLearner` — commit to one hypothesis (a rigid
  candidate, the unit the enumeration-style learner switches between).

The hypothesis class throughout is thresholds over ``{0..domain-1}``
(matching :mod:`repro.worlds.lookup`); learners are written against the
generic :class:`Hypothesis` alias so tests can plug other finite classes.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.worlds.lookup import threshold_label

#: A hypothesis is a predicate over integer queries.
Hypothesis = Callable[[int], bool]


def threshold_class(domain: int) -> List[Hypothesis]:
    """The thresholds ``θ = 0..domain`` as hypotheses (size ``domain+1``)."""
    if domain < 1:
        raise ValueError(f"domain must be >= 1: {domain}")
    return [
        (lambda x, theta=theta: threshold_label(theta, x))
        for theta in range(domain + 1)
    ]


class OnlineLearner:
    """The mistake-bound model's interface.

    ``predict`` must be callable repeatedly (with no state change);
    ``update`` delivers the true label of a previously queried point.
    """

    def predict(self, query: int) -> bool:
        raise NotImplementedError

    def update(self, query: int, truth: bool) -> None:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


class HalvingLearner(OnlineLearner):
    """Majority vote over the version space; mistakes ≤ log₂ |class|.

    When every hypothesis has been eliminated (possible only if the target
    is outside the class, e.g. under adversarial feedback), the learner
    resets to the full class rather than dying — the communication setting
    needs total strategies.
    """

    def __init__(self, hypotheses: Sequence[Hypothesis]) -> None:
        if not hypotheses:
            raise ValueError("hypothesis class must be non-empty")
        self._all = list(hypotheses)
        self._alive = list(hypotheses)

    @property
    def name(self) -> str:
        return f"halving[{len(self._all)}]"

    @property
    def version_space_size(self) -> int:
        return len(self._alive)

    def predict(self, query: int) -> bool:
        votes = sum(1 for h in self._alive if h(query))
        return votes * 2 >= len(self._alive)

    def update(self, query: int, truth: bool) -> None:
        surviving = [h for h in self._alive if h(query) == truth]
        self._alive = surviving if surviving else list(self._all)


class WeightedMajorityLearner(OnlineLearner):
    """Littlestone–Warmuth multiplicative weights over the class."""

    def __init__(self, hypotheses: Sequence[Hypothesis], beta: float = 0.5) -> None:
        if not hypotheses:
            raise ValueError("hypothesis class must be non-empty")
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1): {beta}")
        self._hypotheses = list(hypotheses)
        self._weights = [1.0] * len(hypotheses)
        self._beta = beta

    @property
    def name(self) -> str:
        return f"weighted-majority[{len(self._hypotheses)}]"

    def predict(self, query: int) -> bool:
        positive = sum(
            w for w, h in zip(self._weights, self._hypotheses) if h(query)
        )
        total = sum(self._weights)
        return positive * 2 >= total

    def update(self, query: int, truth: bool) -> None:
        self._weights = [
            w * self._beta if h(query) != truth else w
            for w, h in zip(self._weights, self._hypotheses)
        ]
        # Renormalise occasionally so long adversarial runs cannot underflow.
        top = max(self._weights)
        if top < 1e-100:
            self._weights = [w / top for w in self._weights]


class SingleHypothesisLearner(OnlineLearner):
    """Commits to one hypothesis forever (never updates).

    This is what one *enumeration candidate* looks like as a learner; the
    compact universal user switching between these is precisely the
    enumeration-side of the Juba–Vempala equivalence.
    """

    def __init__(self, hypothesis: Hypothesis, label: str = "fixed") -> None:
        self._hypothesis = hypothesis
        self._label = label

    @property
    def name(self) -> str:
        return self._label

    def predict(self, query: int) -> bool:
        return self._hypothesis(query)

    def update(self, query: int, truth: bool) -> None:
        pass


def simulate_mistakes(
    learner: OnlineLearner,
    target: Hypothesis,
    queries: Sequence[int],
) -> int:
    """Run the pure online game; return the learner's mistake count.

    The reference dynamics the adapter-based (communication-model) runs are
    compared against in the equivalence tests: both must produce the same
    mistakes on the same query sequence.
    """
    mistakes = 0
    for query in queries:
        prediction = learner.predict(query)
        truth = target(query)
        if prediction != truth:
            mistakes += 1
        learner.update(query, truth)
    return mistakes
