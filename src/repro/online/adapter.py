"""The two directions of the Juba–Vempala equivalence, as adapters.

*Learning → communication*: :class:`LearnerUser` wraps any
:class:`~repro.online.learners.OnlineLearner` into a user strategy for the
lookup world.  A learner with mistake bound *M* yields a user whose
executions contain at most *M* unacceptable prefixes (plus the bounded
slack of in-flight queries) — i.e., a good user for the compact goal.

*Communication → learning*: :class:`ThresholdUser` is the user-strategy
form of a single rigid hypothesis; the compact universal user enumerating
these (:func:`threshold_user_class` + sensing) *is* an online learner whose
mistakes track the enumeration index.  :class:`UserAsLearner` completes the
circle mechanically: it runs any lookup-world user strategy inside the pure
online game, so the same object can be measured in both frameworks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.comm.messages import UserInbox, UserOutbox, parse_tagged
from repro.core.strategy import UserStrategy
from repro.online.learners import OnlineLearner
from repro.worlds.lookup import EVENT_BAD, EVENT_OK, threshold_label


def _parse_lookup_message(message: str) -> Tuple[Optional[int], Optional[Tuple[str, int]]]:
    """Extract (new query, scored feedback) from a lookup-world message.

    Returns ``(query or None, (event, scored_query) or None)``.
    """
    if not message:
        return None, None
    query_part, _, fb_part = message.partition(";")
    parsed_query = parse_tagged(query_part)
    query: Optional[int] = None
    if parsed_query is not None and parsed_query[0] == "Q" and parsed_query[1] != "-":
        try:
            query = int(parsed_query[1])
        except ValueError:
            query = None
    feedback: Optional[Tuple[str, int]] = None
    parsed_fb = parse_tagged(fb_part)
    if parsed_fb is not None and parsed_fb[0] == "FB" and "@" in parsed_fb[1]:
        event, _, scored_text = parsed_fb[1].partition("@")
        try:
            feedback = (event, int(scored_text))
        except ValueError:
            feedback = None
    return query, feedback


@dataclass
class _LearnerUserState:
    learner: OnlineLearner
    predictions: Dict[int, bool] = field(default_factory=dict)


class LearnerUser(UserStrategy):
    """Runs an online learner against the lookup world.

    Each new query is answered with the learner's prediction; each
    attributed feedback (``ok@q`` / ``bad@q``) is converted into the true
    label and fed to ``learner.update``.  The learner object is built fresh
    per execution by ``learner_factory`` — strategies must not leak state
    across executions.
    """

    def __init__(self, learner_factory, label: str = "learner") -> None:
        self._factory = learner_factory
        self._label = label

    @property
    def name(self) -> str:
        return f"user({self._label})"

    def initial_state(self, rng: random.Random) -> _LearnerUserState:
        return _LearnerUserState(learner=self._factory())

    def step(
        self, state: _LearnerUserState, inbox: UserInbox, rng: random.Random
    ) -> Tuple[_LearnerUserState, UserOutbox]:
        query, feedback = _parse_lookup_message(inbox.from_world)
        if feedback is not None:
            event, scored_query = feedback
            prediction = state.predictions.pop(scored_query, None)
            if prediction is not None and event in (EVENT_OK, EVENT_BAD):
                truth = prediction if event == EVENT_OK else not prediction
                state.learner.update(scored_query, truth)
        if query is None:
            return state, UserOutbox()
        # The world re-announces unanswered queries; answer those with the
        # *original* prediction, not a fresh one — the world scores the first
        # arriving answer, and truth inference from feedback must match it.
        if query in state.predictions:
            prediction = state.predictions[query]
        else:
            prediction = state.learner.predict(query)
            state.predictions[query] = prediction
        bit = "1" if prediction else "0"
        return state, UserOutbox(to_world=f"PRED:{query}={bit}")


class ThresholdUser(UserStrategy):
    """Labels every query with one fixed threshold (a rigid candidate)."""

    def __init__(self, threshold: int) -> None:
        self._threshold = threshold

    @property
    def name(self) -> str:
        return f"threshold[{self._threshold}]"

    @property
    def threshold(self) -> int:
        return self._threshold

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: UserInbox, rng: random.Random
    ) -> Tuple[int, UserOutbox]:
        query, _feedback = _parse_lookup_message(inbox.from_world)
        if query is None:
            return state + 1, UserOutbox()
        bit = "1" if threshold_label(self._threshold, query) else "0"
        return state + 1, UserOutbox(to_world=f"PRED:{query}={bit}")


def threshold_user_class(domain: int) -> List[ThresholdUser]:
    """All rigid threshold candidates, θ = 0..domain, in index order."""
    return [ThresholdUser(theta) for theta in range(domain + 1)]


class UserAsLearner(OnlineLearner):
    """Runs a lookup-world user strategy inside the pure online game.

    The reduction communication → learning: queries are presented as
    synthetic world messages, the strategy's ``PRED`` replies are read as
    predictions, and the truth is returned as attributed feedback.  One
    game step spans the handful of engine rounds the strategy may need
    before answering (bounded by ``patience``).
    """

    def __init__(self, user: UserStrategy, *, patience: int = 8, seed: int = 0) -> None:
        self._user = user
        self._patience = patience
        self._rng = random.Random(seed)
        self._state = user.initial_state(self._rng)
        self._pending_feedback: Optional[str] = None

    @property
    def name(self) -> str:
        return f"learner({self._user.name})"

    def predict(self, query: int) -> bool:
        feedback = self._pending_feedback or "none"
        self._pending_feedback = None
        message = f"Q:{query};FB:{feedback}"
        for attempt in range(self._patience):
            inbox = UserInbox(from_world=message if attempt == 0 else f"Q:-;FB:none")
            self._state, outbox = self._user.step(self._state, inbox, self._rng)
            parsed = parse_tagged(outbox.to_world)
            if parsed is not None and parsed[0] == "PRED":
                _, _, bit = parsed[1].partition("=")
                if bit in ("0", "1"):
                    self._last_query = query
                    self._last_prediction = bit == "1"
                    return self._last_prediction
        # A silent strategy defaults to False; the game scores it normally.
        self._last_query = query
        self._last_prediction = False
        return False

    def update(self, query: int, truth: bool) -> None:
        event = EVENT_OK if truth == self._last_prediction else EVENT_BAD
        self._pending_feedback = f"{event}@{query}"
