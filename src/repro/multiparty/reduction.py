"""Reduction of the symmetric N-party setting to the two-party model.

The paper's footnote 1: the multiparty theory "primarily consists of a
reduction to the two-party setting".  The reduction is mechanical — pick
one party as *the user* and bundle the remaining N−1 parties (with their
mutual channels simulated internally) into a single composite *server*;
message profiles are multiplexed over the single user↔server channel with
a framing codec.

Three pieces:

* :func:`encode_profile` / :func:`decode_profile` — the framing.
* :class:`CompositeServer` — simulates the other parties + their channels.
* :class:`PartyUser` / :class:`PartyWorldAdapter` — present the chosen
  party and the N-party world in the two-party interfaces.

The reduction theorem (tested in ``tests/multiparty/``): the reduced
two-party execution produces the same world-state trajectory as the native
N-party execution under matched seeds.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Mapping, Tuple

from repro.comm.messages import (
    ServerInbox,
    ServerOutbox,
    UserInbox,
    UserOutbox,
    WorldInbox,
    WorldOutbox,
)
from repro.core.strategy import ServerStrategy, UserStrategy, WorldStrategy
from repro.multiparty.symmetric import WORLD, MessageProfile, PartyStrategy, PartyWorld

#: Framing separators (control characters never used by party payloads).
_ENTRY_SEP = "\x1f"
_KV_SEP = "\x1e"


def encode_profile(profile: Mapping[str, str]) -> str:
    """Serialise a message profile onto one channel (sorted, framed)."""
    return _ENTRY_SEP.join(
        f"{name}{_KV_SEP}{message}"
        for name, message in sorted(profile.items())
        if message
    )


def decode_profile(text: str) -> Dict[str, str]:
    """Invert :func:`encode_profile`; malformed entries are dropped."""
    profile: Dict[str, str] = {}
    if not text:
        return profile
    for entry in text.split(_ENTRY_SEP):
        name, sep, message = entry.partition(_KV_SEP)
        if sep and name:
            profile[name] = message
    return profile


class CompositeServer(ServerStrategy):
    """N−1 parties and their mutual channels, boxed as one server.

    The user channel carries the user's outgoing profile (one frame per
    round); the world channel likewise carries the bundled world-bound
    messages of all internal parties, to be unpacked by
    :class:`PartyWorldAdapter`.
    """

    def __init__(
        self, parties: Mapping[str, PartyStrategy], user_name: str
    ) -> None:
        if user_name in parties:
            raise ValueError(f"user {user_name!r} must not be an internal party")
        self._parties = dict(parties)
        self._user_name = user_name
        self._names = sorted(parties)

    @property
    def name(self) -> str:
        return f"composite[{','.join(self._names)}]"

    def initial_state(self, rng: random.Random) -> Dict[str, Any]:
        # One derived RNG per internal party keeps trajectories matched with
        # the native N-party engine's per-party randomness discipline.
        state: Dict[str, Any] = {"_rngs": {}}
        for name in self._names:
            party_rng = random.Random(rng.getrandbits(64))
            state["_rngs"][name] = party_rng
            state[name] = self._parties[name].initial_state(party_rng)
        state["_in_flight"] = {name: {} for name in self._names}
        return state

    def step(
        self, state: Dict[str, Any], inbox: ServerInbox, rng: random.Random
    ) -> Tuple[Dict[str, Any], ServerOutbox]:
        from_user = decode_profile(inbox.from_user)
        from_world = decode_profile(inbox.from_world)
        in_flight: Dict[str, MessageProfile] = state["_in_flight"]

        to_user: Dict[str, str] = {}
        to_world: Dict[str, str] = {}
        next_in_flight: Dict[str, MessageProfile] = {name: {} for name in self._names}

        for name in self._names:
            party_inbox: MessageProfile = dict(in_flight[name])
            if name in from_user:
                party_inbox[self._user_name] = from_user[name]
            if name in from_world:
                party_inbox[WORLD] = from_world[name]
            party_rng = state["_rngs"][name]
            state[name], outbox = self._parties[name].step(
                state[name], party_inbox, party_rng
            )
            for recipient, message in outbox.items():
                if not message:
                    continue
                if recipient == self._user_name:
                    to_user[name] = message
                elif recipient == WORLD:
                    to_world[name] = message
                elif recipient in next_in_flight:
                    next_in_flight[recipient][name] = message

        state["_in_flight"] = next_in_flight
        return state, ServerOutbox(
            to_user=encode_profile(to_user), to_world=encode_profile(to_world)
        )


class PartyUser(UserStrategy):
    """The chosen party, presented as a two-party user strategy."""

    def __init__(self, party: PartyStrategy, own_name: str) -> None:
        self._party = party
        self._own = own_name

    @property
    def name(self) -> str:
        return f"party-user({self._party.name})"

    def initial_state(self, rng: random.Random) -> Any:
        return self._party.initial_state(rng)

    def step(
        self, state: Any, inbox: UserInbox, rng: random.Random
    ) -> Tuple[Any, UserOutbox]:
        party_inbox: MessageProfile = decode_profile(inbox.from_server)
        if inbox.from_world:
            party_inbox[WORLD] = inbox.from_world
        state, outbox = self._party.step(state, party_inbox, rng)
        to_world = outbox.get(WORLD, "")
        to_peers = {
            name: message
            for name, message in outbox.items()
            if name != WORLD and message
        }
        return state, UserOutbox(
            to_server=encode_profile(to_peers), to_world=to_world
        )


class PartyWorldAdapter(WorldStrategy):
    """The N-party world, presented in the two-party world interface.

    World states are the inner world's states, so the N-party referees
    apply unchanged to reduced executions.
    """

    def __init__(self, world: PartyWorld, user_name: str) -> None:
        self._world = world
        self._user = user_name

    @property
    def name(self) -> str:
        return f"world-adapter({self._world.name})"

    def initial_state(self, rng: random.Random) -> Any:
        return self._world.initial_state(rng)

    def step(
        self, state: Any, inbox: WorldInbox, rng: random.Random
    ) -> Tuple[Any, WorldOutbox]:
        world_inbox: MessageProfile = decode_profile(inbox.from_server)
        if inbox.from_user:
            world_inbox[self._user] = inbox.from_user
        state, outbox = self._world.step(state, world_inbox, rng)
        to_user = outbox.get(self._user, "")
        to_server = {
            name: message
            for name, message in outbox.items()
            if name != self._user and message
        }
        return state, WorldOutbox(
            to_user=to_user, to_server=encode_profile(to_server)
        )


def reduce_to_two_party(
    parties: Mapping[str, PartyStrategy],
    world: PartyWorld,
    user_name: str,
) -> Tuple[UserStrategy, ServerStrategy, WorldStrategy]:
    """Split an N-party system into (user, composite server, adapted world)."""
    if user_name not in parties:
        raise ValueError(f"unknown user party: {user_name!r}")
    others = {name: p for name, p in parties.items() if name != user_name}
    return (
        PartyUser(parties[user_name], user_name),
        CompositeServer(others, user_name),
        PartyWorldAdapter(world, user_name),
    )
