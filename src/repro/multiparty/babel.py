"""Universal rendezvous in a Babel of party languages.

Theorem 1 composed with the footnote-1 reduction: a symmetric group whose
members all speak one *community language* (a codec) must rendezvous with
a newcomer who does not know which.  Boxing the group as a composite
server (the reduction) turns "join the group" into a standard two-party
goal over a server class indexed by codecs — and the compact universal
user applies verbatim: enumerate candidate languages, switch whenever the
world reports disagreement.

Pieces:

* :class:`CodecFollowLeaderParty` — the follow-the-leader rendezvous
  strategy speaking through a codec on its peer channels (world channel is
  plain: announcements are physical acts).
* :func:`babel_server` — the composite server of a whole community
  speaking one codec.
* :func:`babel_user_class` — newcomer candidates, one per codec guess.
* :func:`agreement_sensing` — positive iff the world's last broadcast was
  ``AGREE:1`` (safe: agreement is a world-state fact).
* :func:`babel_rendezvous_goal` — the compact goal for the reduced system.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.comm.codecs import Codec
from repro.core.goals import CompactGoal
from repro.core.sensing import GraceSensing, LastWorldMessageSensing, Sensing
from repro.core.strategy import ServerStrategy, UserStrategy
from repro.errors import CodecError
from repro.multiparty.reduction import CompositeServer, PartyUser, PartyWorldAdapter
from repro.multiparty.symmetric import (
    WORLD,
    MessageProfile,
    PartyStrategy,
    RendezvousWorld,
    rendezvous_referee,
)


class CodecFollowLeaderParty(PartyStrategy):
    """Follow-the-leader rendezvous, spoken through a codec.

    Peer messages are encoded/decoded with the party's language; messages
    that do not decode to a ``SYM:`` frame are ignored (a member simply
    cannot understand a foreigner).  The world channel stays plain —
    announcing a symbol is an act on the environment, not speech.
    """

    def __init__(
        self, own_name: str, preferred: str, peers: Sequence[str], codec: Codec
    ) -> None:
        self._own = own_name
        self._preferred = preferred
        self._peers = tuple(p for p in peers if p != own_name)
        self._codec = codec

    @property
    def name(self) -> str:
        return f"follow-leader({self._own}@{self._codec.name})"

    def initial_state(self, rng: random.Random) -> str:
        return self._preferred

    def step(
        self, state: str, inbox: MessageProfile, rng: random.Random
    ) -> Tuple[str, MessageProfile]:
        candidates = {self._own: state}
        for sender, message in inbox.items():
            if sender == WORLD:
                continue
            try:
                decoded = self._codec.decode(message)
            except CodecError:
                continue
            if decoded.startswith("SYM:"):
                candidates[sender] = decoded[len("SYM:"):]
        leader = min(candidates)
        symbol = candidates[leader]
        outbox: MessageProfile = {
            peer: self._codec.encode(f"SYM:{symbol}") for peer in self._peers
        }
        outbox[WORLD] = f"PICK:{symbol}"
        return symbol, outbox


def community_names(size: int) -> List[str]:
    """Deterministic member names; the newcomer is ``z-newcomer`` (sorts
    last, so it is never the leader — it must *learn*, not dictate)."""
    if size < 2:
        raise ValueError(f"a community needs >= 2 members: {size}")
    return [f"m{i}" for i in range(size - 1)] + ["z-newcomer"]


def babel_server(
    codec: Codec, names: Sequence[str], symbols: Sequence[str]
) -> ServerStrategy:
    """The community (all members but the newcomer) boxed as one server."""
    members = {
        name: CodecFollowLeaderParty(name, symbols[i % len(symbols)], names, codec)
        for i, name in enumerate(n for n in names if n != "z-newcomer")
    }
    return CompositeServer(members, "z-newcomer")


def babel_user_class(
    codecs: Sequence[Codec], names: Sequence[str], preferred: str = "white"
) -> List[UserStrategy]:
    """Newcomer candidates, one per codec guess, in enumeration order."""
    return [
        PartyUser(
            CodecFollowLeaderParty("z-newcomer", preferred, names, codec),
            "z-newcomer",
        )
        for codec in codecs
    ]


def babel_rendezvous_goal(
    names: Sequence[str], *, warmup: int = 30, settle_fraction: float = 0.5
) -> CompactGoal:
    """The reduced two-party compact goal "the whole group agrees"."""
    world = PartyWorldAdapter(
        RendezvousWorld(names, feedback=True), "z-newcomer"
    )
    return CompactGoal(
        name="babel-rendezvous",
        world=world,
        referee=rendezvous_referee(len(names), warmup=warmup),
        forgiving=True,
        settle_fraction=settle_fraction,
    )


def _agreed(message: str) -> bool:
    return message == "AGREE:1"


def agreement_sensing(grace_rounds: int = 8) -> Sensing:
    """Positive iff the world last reported group-wide agreement."""
    return GraceSensing(
        LastWorldMessageSensing(predicate=_agreed, default=False, label="agree"),
        grace_rounds=grace_rounds,
    )
