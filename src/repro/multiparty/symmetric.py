"""Symmetric multiparty goals (the paper's footnote 1).

"The full version briefly considers a symmetric setting with more than two
parties, but this primarily consists of a reduction to the two-party
setting."  This module provides the N-party model itself — named parties
exchanging a full message profile each synchronous round, plus a world —
and a concrete symmetric goal (rendezvous: all parties must converge on a
shared symbol announced to the world); :mod:`repro.multiparty.reduction`
then implements the paper's reduction into the standard two-party engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.core.referees import LastStateCompactReferee
from repro.errors import ExecutionError

#: An N-party inbox/outbox: sender/recipient name → message.
MessageProfile = Dict[str, str]

#: The world's reserved name in message profiles.
WORLD = "world"


class PartyStrategy:
    """A strategy in the symmetric N-party model.

    ``step`` receives the messages addressed to this party (keyed by sender
    name, world included) and returns messages keyed by recipient name.
    """

    def initial_state(self, rng: random.Random) -> Any:
        raise NotImplementedError

    def step(
        self, state: Any, inbox: MessageProfile, rng: random.Random
    ) -> Tuple[Any, MessageProfile]:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


class PartyWorld(PartyStrategy):
    """Base class for N-party worlds (a party with recorded states)."""


@dataclass
class MultipartyResult:
    """Outcome of an N-party execution."""

    world_states: List[Any] = field(default_factory=list)
    rounds_executed: int = 0

    def final_world_state(self) -> Any:
        if not self.world_states:
            raise ExecutionError("execution recorded no world states")
        return self.world_states[-1]


def run_multiparty(
    parties: Mapping[str, PartyStrategy],
    world: PartyWorld,
    *,
    max_rounds: int,
    seed: int = 0,
) -> MultipartyResult:
    """Synchronous N-party execution (all parties plus the world step together)."""
    if WORLD in parties:
        raise ExecutionError(f"party name {WORLD!r} is reserved")
    if max_rounds <= 0:
        raise ExecutionError(f"max_rounds must be positive: {max_rounds}")
    master = random.Random(seed)
    names = sorted(parties)
    rngs = {name: random.Random(master.getrandbits(64)) for name in names}
    world_rng = random.Random(master.getrandbits(64))

    states = {name: parties[name].initial_state(rngs[name]) for name in names}
    world_state = world.initial_state(world_rng)

    # in_flight[recipient][sender] = message
    in_flight: Dict[str, MessageProfile] = {name: {} for name in names + [WORLD]}
    result = MultipartyResult()
    result.world_states.append(world_state)

    for _ in range(max_rounds):
        outboxes: Dict[str, MessageProfile] = {}
        for name in names:
            states[name], outboxes[name] = parties[name].step(
                states[name], dict(in_flight[name]), rngs[name]
            )
        world_state, world_out = world.step(
            world_state, dict(in_flight[WORLD]), world_rng
        )
        in_flight = {name: {} for name in names + [WORLD]}
        for sender, outbox in outboxes.items():
            for recipient, message in outbox.items():
                if message and recipient in in_flight:
                    in_flight[recipient][sender] = message
        for recipient, message in world_out.items():
            if message and recipient in in_flight:
                in_flight[recipient][WORLD] = message
        result.world_states.append(world_state)
        result.rounds_executed += 1
    return result


# ----------------------------------------------------------------------
# A concrete symmetric goal: rendezvous on a shared symbol.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RendezvousState:
    """World state: each party's latest announced symbol."""

    announcements: Tuple[Tuple[str, str], ...] = ()
    round_index: int = 0

    def agreed(self, expected_parties: int) -> bool:
        symbols = dict(self.announcements)
        return (
            len(symbols) == expected_parties
            and len(set(symbols.values())) == 1
        )


class RendezvousWorld(PartyWorld):
    """Records ``PICK:<symbol>`` announcements from every party.

    The compact goal: eventually all parties always announce the same
    symbol.  With ``feedback=False`` the world offers no hints —
    coordination must happen on the party-to-party channels.  With
    ``feedback=True`` it broadcasts ``AGREE:1``/``AGREE:0`` each round,
    which is the sensing source for the *universal* rendezvous parties of
    :mod:`repro.multiparty.babel` (agreement is a world-state fact, so the
    sensing is safe by construction).
    """

    def __init__(self, party_names: Sequence[str], *, feedback: bool = False) -> None:
        self._names = tuple(sorted(party_names))
        self._feedback = feedback

    @property
    def name(self) -> str:
        suffix = "+fb" if self._feedback else ""
        return f"rendezvous-world[{len(self._names)}]{suffix}"

    def initial_state(self, rng: random.Random) -> RendezvousState:
        return RendezvousState()

    def step(
        self, state: RendezvousState, inbox: MessageProfile, rng: random.Random
    ) -> Tuple[RendezvousState, MessageProfile]:
        announcements = dict(state.announcements)
        for sender, message in inbox.items():
            if message.startswith("PICK:"):
                announcements[sender] = message[len("PICK:"):]
        new_state = RendezvousState(
            announcements=tuple(sorted(announcements.items())),
            round_index=state.round_index + 1,
        )
        outbox: MessageProfile = {}
        if self._feedback:
            agreed = new_state.agreed(len(self._names))
            outbox = {name: f"AGREE:{1 if agreed else 0}" for name in self._names}
        return new_state, outbox


def rendezvous_referee(n_parties: int, warmup: int = 12) -> LastStateCompactReferee:
    """Prefix acceptable iff parties agree (after a coordination warmup)."""
    return LastStateCompactReferee(
        state_acceptable=lambda s: (
            not isinstance(s, RendezvousState)
            or s.round_index <= warmup
            or s.agreed(n_parties)
        ),
        label="rendezvous",
    )


class FollowLeaderParty(PartyStrategy):
    """Symmetric rendezvous strategy: lowest-named party leads.

    Every party broadcasts its current symbol; each round a party adopts
    the symbol of the alphabetically smallest sender it heard (itself
    included) and announces it to the world.  Convergence in two rounds —
    used as the honest baseline in the reduction tests.
    """

    def __init__(self, own_name: str, preferred: str, peers: Sequence[str]) -> None:
        self._own = own_name
        self._preferred = preferred
        self._peers = tuple(p for p in peers if p != own_name)

    @property
    def name(self) -> str:
        return f"follow-leader({self._own}:{self._preferred})"

    def initial_state(self, rng: random.Random) -> str:
        return self._preferred

    def step(
        self, state: str, inbox: MessageProfile, rng: random.Random
    ) -> Tuple[str, MessageProfile]:
        candidates = {self._own: state}
        for sender, message in inbox.items():
            if message.startswith("SYM:"):
                candidates[sender] = message[len("SYM:"):]
        leader = min(candidates)
        symbol = candidates[leader]
        outbox: MessageProfile = {peer: f"SYM:{symbol}" for peer in self._peers}
        outbox[WORLD] = f"PICK:{symbol}"
        return symbol, outbox
