"""Symmetric multiparty goals and the reduction to two parties.

The N-party model with a concrete rendezvous goal (:mod:`.symmetric`) and
the paper's footnote-1 reduction boxing N−1 parties into one composite
server (:mod:`.reduction`).
"""

from repro.multiparty.symmetric import (
    WORLD,
    MessageProfile,
    PartyStrategy,
    PartyWorld,
    MultipartyResult,
    run_multiparty,
    RendezvousState,
    RendezvousWorld,
    rendezvous_referee,
    FollowLeaderParty,
)
from repro.multiparty.reduction import (
    encode_profile,
    decode_profile,
    CompositeServer,
    PartyUser,
    PartyWorldAdapter,
    reduce_to_two_party,
)
from repro.multiparty.babel import (
    CodecFollowLeaderParty,
    community_names,
    babel_server,
    babel_user_class,
    babel_rendezvous_goal,
    agreement_sensing,
)

__all__ = [
    "WORLD",
    "MessageProfile",
    "PartyStrategy",
    "PartyWorld",
    "MultipartyResult",
    "run_multiparty",
    "RendezvousState",
    "RendezvousWorld",
    "rendezvous_referee",
    "FollowLeaderParty",
    "encode_profile",
    "decode_profile",
    "CompositeServer",
    "PartyUser",
    "PartyWorldAdapter",
    "reduce_to_two_party",
    "CodecFollowLeaderParty",
    "community_names",
    "babel_server",
    "babel_user_class",
    "babel_rendezvous_goal",
    "agreement_sensing",
]
