"""The repeated-computation world: delegation as a *compact* goal.

The paper treats finite and compact goals as the two faces of the theory;
the delegation examples are naturally finite (answer once, halt).  This
world composes them: an endless stream of TQBF instances, each to be
answered within a deadline, scored like the control world (ok / bad /
none).  The compact referee demands that mistakes (wrong answers *and*
missed deadlines) eventually stop — so a universal user must find the
prover's language once and then keep verifying proofs forever.

Attribution discipline: sessions carry ids.  The world announces
``INSTANCE:<k>:<qbf>;FB:<event>`` and accepts ``ANSWER:<k>=<bit>`` only for
the current session ``k`` — a stale answer from an evicted candidate can
never score against a fresh session.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.comm.messages import WorldInbox, WorldOutbox, parse_tagged
from repro.core.goals import CompactGoal
from repro.core.referees import LastStateCompactReferee
from repro.core.sensing import GraceSensing, LastWorldMessageSensing, Sensing
from repro.core.strategy import WorldStrategy
from repro.qbf.qbf import QBF

EVENT_OK = "ok"
EVENT_BAD = "bad"
EVENT_NONE = "none"


@dataclass(frozen=True)
class RepeatedComputationState:
    """World state: the live session plus score counters."""

    session: int = 0
    instance: str = ""
    truth: bool = False
    session_start: int = 0
    round_index: int = 0
    answered: int = 0
    mistakes: int = 0
    last_event: str = EVENT_NONE


class RepeatedComputationWorld(WorldStrategy):
    """Streams instances; scores session-tagged answers against a deadline."""

    def __init__(self, instances: Sequence[QBF], *, deadline: int = 150) -> None:
        if not instances:
            raise ValueError("RepeatedComputationWorld needs at least one instance")
        if deadline < 20:
            # A proof needs tens of exchanges; tighter deadlines make the
            # goal unachievable by anyone (and thus vacuous).
            raise ValueError(f"deadline too tight for any prover: {deadline}")
        self._instances = [(q.serialize(), q.evaluate()) for q in instances]
        self._deadline = deadline

    @property
    def name(self) -> str:
        return f"repeated-computation[{len(self._instances)}]"

    def _fresh_session(
        self, session: int, start_round: int, rng: random.Random, state: Optional[RepeatedComputationState]
    ) -> RepeatedComputationState:
        instance, truth = self._instances[rng.randrange(len(self._instances))]
        base = state or RepeatedComputationState()
        return RepeatedComputationState(
            session=session,
            instance=instance,
            truth=truth,
            session_start=start_round,
            round_index=base.round_index,
            answered=base.answered,
            mistakes=base.mistakes,
            last_event=base.last_event,
        )

    def initial_state(self, rng: random.Random) -> RepeatedComputationState:
        return self._fresh_session(0, 0, rng, None)

    def step(
        self, state: RepeatedComputationState, inbox: WorldInbox, rng: random.Random
    ) -> Tuple[RepeatedComputationState, WorldOutbox]:
        event = EVENT_NONE
        answered = state.answered
        mistakes = state.mistakes
        advance = False

        parsed = parse_tagged(inbox.from_user)
        if parsed is not None and parsed[0] == "ANSWER":
            session_text, sep, bit = parsed[1].partition("=")
            if sep and session_text == str(state.session) and bit in ("0", "1"):
                answered += 1
                if bit == ("1" if state.truth else "0"):
                    event = EVENT_OK
                else:
                    mistakes += 1
                    event = EVENT_BAD
                advance = True
        if not advance and state.round_index - state.session_start >= self._deadline:
            mistakes += 1
            event = EVENT_BAD
            advance = True

        next_round = state.round_index + 1
        if advance:
            new_state = self._fresh_session(
                state.session + 1, next_round, rng,
                RepeatedComputationState(
                    round_index=next_round, answered=answered,
                    mistakes=mistakes, last_event=event,
                ),
            )
        else:
            new_state = RepeatedComputationState(
                session=state.session,
                instance=state.instance,
                truth=state.truth,
                session_start=state.session_start,
                round_index=next_round,
                answered=answered,
                mistakes=mistakes,
                last_event=event,
            )
        message = (
            f"INSTANCE:{new_state.session}:{new_state.instance};FB:{event}"
        )
        return new_state, WorldOutbox(to_user=message)


def repeated_delegation_goal(
    instances: Sequence[QBF],
    *,
    deadline: int = 150,
    settle_fraction: float = 0.5,
) -> CompactGoal:
    """The compact goal "eventually always answer correctly and on time"."""
    return CompactGoal(
        name="repeated-delegation",
        world=RepeatedComputationWorld(instances, deadline=deadline),
        referee=LastStateCompactReferee(
            state_acceptable=lambda s: not (
                isinstance(s, RepeatedComputationState)
                and s.last_event == EVENT_BAD
            ),
            label="no-wrong-answer",
        ),
        forgiving=True,
        settle_fraction=settle_fraction,
    )


def _feedback_not_bad(message: str) -> bool:
    _, _, fb = message.partition(";FB:")
    return fb != EVENT_BAD


def repeated_delegation_sensing(grace_rounds: int = 200) -> Sensing:
    """World feedback with a grace covering one full session deadline.

    The grace must outlive a deadline-expiry caused by the *previous*
    candidate's unanswered session, or viability breaks the way the
    control goal's docstring describes.
    """
    return GraceSensing(
        LastWorldMessageSensing(
            predicate=_feedback_not_bad, default=True, label="repeated-fb"
        ),
        grace_rounds=grace_rounds,
    )
