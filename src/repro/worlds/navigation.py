"""The navigation world — goals whose actions have physical consequences.

A grid maze: the user steers an agent with ``MOVE:<direction>`` commands
and must halt on the target cell.  The server is a *guide* who knows the
maze (:mod:`repro.servers.guides`); the user knows nothing but what the
world tells it — its position and whether it has arrived.

What this goal adds over printing/control: actions move persistent state
around, so an abandoned trial leaves the agent *somewhere else* — yet the
goal stays forgiving (any reachable position still reaches the target),
making it the sharpest test of the universal users' restart discipline:
enumeration overhead here is paid in literal extra steps through the maze.

The :class:`Grid` substrate (with breadth-first-search distance fields and
maze generators) is general-purpose and lives here with the world that
uses it.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.comm.messages import WorldInbox, WorldOutbox, parse_tagged
from repro.core.execution import ExecutionResult
from repro.core.goals import FiniteGoal
from repro.core.referees import FiniteReferee
from repro.core.sensing import Sensing
from repro.core.strategy import WorldStrategy
from repro.core.views import UserView

Cell = Tuple[int, int]

#: Direction vocabulary, with deterministic tie-break order.
DIRECTIONS: Tuple[str, ...] = ("north", "east", "south", "west")
_DELTA: Dict[str, Cell] = {
    "north": (0, -1),
    "east": (1, 0),
    "south": (0, 1),
    "west": (-1, 0),
}


@dataclass(frozen=True)
class Grid:
    """An immutable rectangular maze.

    ``walls`` are blocked cells; ``start`` and ``target`` must be free and
    mutually reachable (validated at construction — an unreachable maze
    would make the goal unachievable and thus vacuous).
    """

    width: int
    height: int
    walls: FrozenSet[Cell]
    start: Cell
    target: Cell

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError(f"grid must be at least 2x2: {self.width}x{self.height}")
        for label, cell in (("start", self.start), ("target", self.target)):
            if not self.in_bounds(cell):
                raise ValueError(f"{label} out of bounds: {cell}")
            if cell in self.walls:
                raise ValueError(f"{label} is a wall: {cell}")
        if self.distance_from_target(self.start) is None:
            raise ValueError("target unreachable from start")

    def in_bounds(self, cell: Cell) -> bool:
        x, y = cell
        return 0 <= x < self.width and 0 <= y < self.height

    def is_free(self, cell: Cell) -> bool:
        return self.in_bounds(cell) and cell not in self.walls

    def neighbours(self, cell: Cell) -> List[Tuple[str, Cell]]:
        """Free neighbouring cells with the direction leading to them."""
        x, y = cell
        out = []
        for direction in DIRECTIONS:
            dx, dy = _DELTA[direction]
            candidate = (x + dx, y + dy)
            if self.is_free(candidate):
                out.append((direction, candidate))
        return out

    def distance_field(self) -> Dict[Cell, int]:
        """BFS distances from the target over free cells (memo-free, cheap)."""
        distances: Dict[Cell, int] = {self.target: 0}
        queue = deque([self.target])
        while queue:
            cell = queue.popleft()
            for _, neighbour in self.neighbours(cell):
                if neighbour not in distances:
                    distances[neighbour] = distances[cell] + 1
                    queue.append(neighbour)
        return distances

    def distance_from_target(self, cell: Cell) -> Optional[int]:
        return self.distance_field().get(cell)

    def shortest_step(self, position: Cell) -> Optional[str]:
        """The direction of a shortest path toward the target.

        Deterministic tie-break (the :data:`DIRECTIONS` order) so guides
        are reproducible.  ``None`` when already at the target or stranded.
        """
        if position == self.target:
            return None
        field = self.distance_field()
        here = field.get(position)
        if here is None:
            return None
        for direction, neighbour in self.neighbours(position):
            if field.get(neighbour) == here - 1:
                return direction
        return None

    def step_from(self, position: Cell, direction: str) -> Cell:
        """The result of attempting a move (bumping a wall stays put)."""
        if direction not in _DELTA:
            return position
        dx, dy = _DELTA[direction]
        candidate = (position[0] + dx, position[1] + dy)
        return candidate if self.is_free(candidate) else position


def random_grid(
    rng: random.Random,
    width: int = 8,
    height: int = 8,
    wall_density: float = 0.25,
    *,
    max_attempts: int = 200,
) -> Grid:
    """A random maze with reachable corners (start top-left, target
    bottom-right); re-draws until connectivity holds."""
    if not 0.0 <= wall_density < 0.7:
        raise ValueError(f"wall_density out of range: {wall_density}")
    start: Cell = (0, 0)
    target: Cell = (width - 1, height - 1)
    for _ in range(max_attempts):
        walls = frozenset(
            (x, y)
            for x in range(width)
            for y in range(height)
            if (x, y) not in (start, target) and rng.random() < wall_density
        )
        try:
            return Grid(width, height, walls, start, target)
        except ValueError:
            continue
    raise ValueError("could not draw a connected maze; lower wall_density")


def corridor_grid(length: int = 10) -> Grid:
    """A 2-row serpentine corridor — worst-case path length per area."""
    if length < 3:
        raise ValueError(f"corridor needs length >= 3: {length}")
    walls = frozenset((x, 1) for x in range(1, length - 1))
    return Grid(length, 3, walls, (0, 0), (length - 1, 2))


@dataclass(frozen=True)
class NavigationState:
    """World state: where the agent is and how it has travelled."""

    position: Cell
    moves: int = 0
    bumps: int = 0


class NavigationWorld(WorldStrategy):
    """The maze environment.

    Broadcasts ``POS:<x>,<y>;AT:<0|1>`` to the user and ``POS:<x>,<y>`` to
    the server (the guide needs the position, not the arrival bit), and
    executes ``MOVE:<direction>`` commands; bumping a wall costs a round
    but no position change.
    """

    def __init__(self, grid: Grid) -> None:
        self._grid = grid

    @property
    def name(self) -> str:
        return f"navigation-world[{self._grid.width}x{self._grid.height}]"

    @property
    def grid(self) -> Grid:
        return self._grid

    def initial_state(self, rng: random.Random) -> NavigationState:
        return NavigationState(position=self._grid.start)

    def step(
        self, state: NavigationState, inbox: WorldInbox, rng: random.Random
    ) -> Tuple[NavigationState, WorldOutbox]:
        parsed = parse_tagged(inbox.from_user)
        if parsed is not None and parsed[0] == "MOVE":
            new_position = self._grid.step_from(state.position, parsed[1])
            state = NavigationState(
                position=new_position,
                moves=state.moves + 1,
                bumps=state.bumps + (1 if new_position == state.position else 0),
            )
        x, y = state.position
        arrived = 1 if state.position == self._grid.target else 0
        return state, WorldOutbox(
            to_user=f"POS:{x},{y};AT:{arrived}",
            to_server=f"POS:{x},{y}",
        )


class ArrivedReferee(FiniteReferee):
    """Accepts iff the user halted with the agent on the target cell."""

    def __init__(self, grid: Grid) -> None:
        self._grid = grid

    def accepts(self, execution: ExecutionResult) -> bool:
        state = execution.final_world_state()
        return (
            isinstance(state, NavigationState)
            and state.position == self._grid.target
        )


def navigation_goal(grid: Grid) -> FiniteGoal:
    """The finite goal "stand on the target and halt".

    Forgiving: the maze is connected on its free component containing
    start and target, and moves are reversible, so any reachable position
    still reaches the target.
    """
    return FiniteGoal(
        name="navigation",
        world=NavigationWorld(grid),
        referee=ArrivedReferee(grid),
        forgiving=True,
    )


class ArrivedSensing(Sensing):
    """Positive iff the world's last position report says ``AT:1``.

    Safe (arrival is a world-state fact) and viable (a correctly guided
    user arrives and the report follows within one round).
    """

    @property
    def name(self) -> str:
        return "arrived"

    def indicate(self, view: UserView) -> bool:
        message = view.last_world_message()
        if message is None:
            return False
        _, _, at = message.partition(";AT:")
        return at == "1"


def navigation_sensing() -> Sensing:
    """The navigation goal's sensing (see :class:`ArrivedSensing`)."""
    return ArrivedSensing()
