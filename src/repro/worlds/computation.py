"""The computation world — the delegation goal (cf. Juba–Sudan, STOC'08).

The world poses an instance of TQBF and the (finite) goal is achieved when
the user halts having announced the instance's truth value.  The user is
meant to be polynomial-time, so it cannot just evaluate the instance — it
must extract the answer from the server, an untrusted, possibly alien
prover.  The interactive proof of :mod:`repro.ip` is what lets the user
*trust* an answer it cannot recompute: soundness makes "the proof verified"
a safe indication.

The referee, by contrast, is the model's omniscient judge: it evaluates the
instance (exponential time, fine for the judge) and compares with the
user's announced answer.  Note the asymmetry is exactly the paper's —
referees are definitional devices, not runtime components of the user.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.comm.messages import WorldInbox, WorldOutbox, parse_tagged
from repro.core.execution import ExecutionResult
from repro.core.goals import FiniteGoal
from repro.core.referees import FiniteReferee
from repro.core.sensing import Sensing
from repro.core.strategy import WorldStrategy
from repro.core.views import UserView
from repro.qbf.qbf import QBF


@dataclass(frozen=True)
class ComputationState:
    """World state: the posed instance (wire form, hashable & comparable)."""

    instance: str


class ComputationWorld(WorldStrategy):
    """Poses one QBF instance, re-announced every round as ``INSTANCE:<qbf>``.

    The world is passive beyond posing the problem: the interesting action
    is all on the user↔server channel.  Re-announcing each round keeps the
    goal forgiving and lets abandoned trials restart cleanly.
    """

    def __init__(self, instances: Sequence[QBF]) -> None:
        if not instances:
            raise ValueError("ComputationWorld needs at least one instance")
        self._instances = [q.serialize() for q in instances]

    @property
    def name(self) -> str:
        return f"computation-world[{len(self._instances)}]"

    def initial_state(self, rng: random.Random) -> ComputationState:
        return ComputationState(instance=rng.choice(self._instances))

    def step(
        self, state: ComputationState, inbox: WorldInbox, rng: random.Random
    ) -> Tuple[ComputationState, WorldOutbox]:
        return state, WorldOutbox(to_user=f"INSTANCE:{state.instance}")


class CorrectAnswerReferee(FiniteReferee):
    """Accepts iff the user halted with ``ANSWER:<bit>`` matching the truth."""

    def accepts(self, execution: ExecutionResult) -> bool:
        state = execution.final_world_state()
        if not isinstance(state, ComputationState):
            return False
        output = execution.user_output or ""
        parsed = parse_tagged(output)
        if parsed is None or parsed[0] != "ANSWER" or parsed[1] not in ("0", "1"):
            return False
        truth = QBF.deserialize(state.instance).evaluate()
        return parsed[1] == ("1" if truth else "0")


def delegation_goal(instances: Sequence[QBF]) -> FiniteGoal:
    """The finite goal "announce the correct truth value of the instance"."""
    return FiniteGoal(
        name="delegation",
        world=ComputationWorld(instances),
        referee=CorrectAnswerReferee(),
        forgiving=True,
    )


class VerifiedProofSensing(Sensing):
    """Positive iff the user's own verifier has accepted a proof.

    Sensing may inspect the user's internal states (they are part of the
    user's view); by convention the delegation users expose a
    ``proof_accepted`` attribute on their state.  Safety here is *inherited
    from the soundness of the interactive proof*: whoever the server is,
    ``proof_accepted`` implies the announced value is correct except with
    probability ≈ deg/p.  This is the paper's delegation story in one line.
    """

    @property
    def name(self) -> str:
        return "verified-proof"

    def indicate(self, view: UserView) -> bool:
        last = view.last()
        if last is None:
            return False
        return bool(getattr(last.state_after, "proof_accepted", False))


def delegation_sensing() -> Sensing:
    """The delegation goal's sensing (see :class:`VerifiedProofSensing`)."""
    return VerifiedProofSensing()
