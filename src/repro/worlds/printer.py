"""The printer world — the paper's motivating non-delegation goal.

"The problem of using a printer to produce a document — which cannot be
cast as a problem of delegating computation in any reasonable sense — is
captured naturally by the simple model" (Section 1).  Here it is: the world
is the sheet of paper.  It hands the user a document to print, and it
appends to its ``printed`` record whatever the *server* (the printer) emits.
The goal is achieved when the document has appeared on paper — a condition
on **world states** only, exactly the paper's notion of a goal as an effect
on the environment rather than knowledge acquired by the user.

Forgivingness: the referee asks that the document occur as a *substring* of
the printed stream, so no amount of earlier garbage (from abandoned trials
of a universal user) is fatal — any finite history extends to success by
just printing the document afterwards.

Feedback: with ``feedback=True`` the world also tells the user what has
been printed so far, which yields safe *and* viable sensing ("the document
is on the paper" is ground truth).  With ``feedback=False`` the user is
blind; experiment E9 uses this variant to show that Theorem 1's sensing
hypothesis is not an artifact: without it, universality fails.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Sequence, Tuple

from repro.comm.messages import WorldInbox, WorldOutbox, parse_tagged
from repro.core.execution import ExecutionResult
from repro.core.goals import FiniteGoal
from repro.core.referees import FiniteReferee
from repro.core.sensing import Sensing
from repro.core.strategy import WorldStrategy
from repro.core.views import UserView

#: Maximum printed-stream length retained in the state.  A runaway server
#: cannot bloat memory; the referee criterion (substring) only needs the
#: recent tail plus one document length, which this comfortably exceeds at
#: experiment scales.
_MAX_PRINTED = 65536


@dataclass(frozen=True)
class PrinterState:
    """World state: the job and what is physically on paper."""

    document: str
    printed: str


class PrinterWorld(WorldStrategy):
    """The environment of the printing goal.

    Each round it (re)announces the job to the user as ``JOB:<doc>`` —
    re-announcing keeps the goal forgiving and the world re-entrant — plus,
    in the feedback variant, ``;TAIL:<suffix>`` reporting the recently
    printed characters.  Messages from the server of the form ``OUT:<text>``
    are appended to the paper; anything else from the server is ignored
    (paper does not crash on gibberish).
    """

    def __init__(
        self,
        documents: Sequence[str],
        *,
        feedback: bool = True,
        tail_length: int = 64,
    ) -> None:
        if not documents:
            raise ValueError("PrinterWorld needs at least one document")
        for document in documents:
            if ";" in document or ":" in document:
                raise ValueError(
                    f"documents must not contain ':' or ';': {document!r}"
                )
        self._documents = list(documents)
        self._feedback = feedback
        self._tail_length = tail_length

    @property
    def name(self) -> str:
        suffix = "" if self._feedback else "-blind"
        return f"printer-world{suffix}"

    def initial_state(self, rng: random.Random) -> PrinterState:
        return PrinterState(document=rng.choice(self._documents), printed="")

    def step(
        self, state: PrinterState, inbox: WorldInbox, rng: random.Random
    ) -> Tuple[PrinterState, WorldOutbox]:
        parsed = parse_tagged(inbox.from_server)
        if parsed is not None and parsed[0] == "OUT":
            printed = (state.printed + parsed[1])[-_MAX_PRINTED:]
            state = replace(state, printed=printed)
        message = f"JOB:{state.document}"
        if self._feedback:
            message += f";TAIL:{state.printed[-self._tail_length:]}"
        return state, WorldOutbox(to_user=message)


class PrintedReferee(FiniteReferee):
    """Accepts iff the job document appears on the paper when the user halts."""

    def accepts(self, execution: ExecutionResult) -> bool:
        state = execution.final_world_state()
        if not isinstance(state, PrinterState):
            return False
        return state.document in state.printed


def printing_goal(
    documents: Sequence[str], *, feedback: bool = True
) -> FiniteGoal:
    """The finite goal "get the document onto the paper"."""
    return FiniteGoal(
        name="printing" + ("" if feedback else "-blind"),
        world=PrinterWorld(documents, feedback=feedback),
        referee=PrintedReferee(),
        forgiving=True,
    )


class PrintedTailSensing(Sensing):
    """Positive iff the world's feedback shows the job fully printed.

    Reads the latest ``JOB:<doc>;TAIL:<tail>`` message and checks that the
    document occurs in the reported tail.  *Safe* because the tail is ground
    truth straight from the world; *viable* because the adequate printer
    protocol gets the document printed and then sees it reported.  Returns a
    negative indication when no feedback has arrived (blind world), which is
    the honest reading: no evidence of success.
    """

    @property
    def name(self) -> str:
        return "printed-tail"

    def indicate(self, view: UserView) -> bool:
        for record in view.iter_reversed():
            message = record.inbox.from_world
            if not message:
                continue
            job, _, rest = message.partition(";")
            parsed_job = parse_tagged(job)
            if parsed_job is None or parsed_job[0] != "JOB":
                continue
            parsed_tail = parse_tagged(rest)
            if parsed_tail is None or parsed_tail[0] != "TAIL":
                return False  # Blind world: no evidence, no endorsement.
            return parsed_job[1] in parsed_tail[1]
        return False


def printing_sensing() -> Sensing:
    """The printing goal's sensing.

    Deliberately *not* wrapped in a grace period: the finite universal user
    consults sensing only when a candidate halts, and an early grace-period
    endorsement would let a trigger-happy candidate halt successfully on no
    evidence — an unsafe sensing.  (Grace periods belong to compact goals,
    where sensing is polled every round; see :mod:`repro.worlds.control`.)
    """
    return PrintedTailSensing()
