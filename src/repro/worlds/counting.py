"""The counting world — #SAT delegation via the sumcheck protocol.

A second delegation goal alongside TQBF (:mod:`repro.worlds.computation`),
one complexity notch down: the world poses a CNF formula and the user must
announce its number of satisfying assignments.  #SAT is #P-complete — still
far beyond a polynomial-time user — and the classic LFKN *sumcheck*
protocol (:mod:`repro.ip.sumcheck`) lets an untrusted prover convince the
user of the count.

Mechanically a sibling of the computation world; the pair demonstrates
that the delegation story of the paper is not tied to one protocol: any
interactive proof with completeness and soundness plugs into the same
goal/sensing mold.  (This is also why the modules are separate rather than
generic over "some IP": the wire formats and referees are goal-specific,
the *pattern* is what repeats.)

Variable-order convention: both prover and verifier process variables in
the canonical sorted order of the formula's variable names, so no order
negotiation is needed on the wire.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.comm.messages import WorldInbox, WorldOutbox, parse_tagged
from repro.core.execution import ExecutionResult
from repro.core.goals import FiniteGoal
from repro.core.referees import FiniteReferee
from repro.core.sensing import Sensing
from repro.core.strategy import WorldStrategy
from repro.core.views import UserView
from repro.errors import FormulaError
from repro.ip.sumcheck import count_satisfying_assignments
from repro.qbf import formulas
from repro.qbf.formulas import Formula


def canonical_order(formula: Formula) -> List[str]:
    """The variable order both parties use for the sumcheck rounds."""
    return sorted(formulas.variables(formula))


@dataclass(frozen=True)
class CountingState:
    """World state: the posed formula (wire form)."""

    instance: str


class CountingWorld(WorldStrategy):
    """Poses one CNF instance, re-announced as ``COUNT-INSTANCE:<formula>``."""

    def __init__(self, instances: Sequence[Formula]) -> None:
        if not instances:
            raise ValueError("CountingWorld needs at least one instance")
        self._instances = [formulas.serialize(f) for f in instances]

    @property
    def name(self) -> str:
        return f"counting-world[{len(self._instances)}]"

    def initial_state(self, rng: random.Random) -> CountingState:
        return CountingState(instance=rng.choice(self._instances))

    def step(
        self, state: CountingState, inbox: WorldInbox, rng: random.Random
    ) -> Tuple[CountingState, WorldOutbox]:
        return state, WorldOutbox(to_user=f"COUNT-INSTANCE:{state.instance}")


class CorrectCountReferee(FiniteReferee):
    """Accepts iff the user halted with ``COUNT:<n>`` matching #SAT."""

    def accepts(self, execution: ExecutionResult) -> bool:
        state = execution.final_world_state()
        if not isinstance(state, CountingState):
            return False
        parsed = parse_tagged(execution.user_output or "")
        if parsed is None or parsed[0] != "COUNT":
            return False
        try:
            claimed = int(parsed[1])
        except ValueError:
            return False
        try:
            formula = formulas.parse(state.instance)
        except FormulaError:
            return False
        return claimed == count_satisfying_assignments(
            formula, canonical_order(formula)
        )


def counting_goal(instances: Sequence[Formula]) -> FiniteGoal:
    """The finite goal "announce the instance's satisfying-assignment count"."""
    return FiniteGoal(
        name="counting",
        world=CountingWorld(instances),
        referee=CorrectCountReferee(),
        forgiving=True,
    )


class VerifiedSumSensing(Sensing):
    """Positive iff the user's sumcheck verifier has accepted.

    Same convention as the TQBF goal: the counting users expose a
    ``proof_accepted`` flag on their state, and the sumcheck's soundness is
    what makes trusting it safe.
    """

    @property
    def name(self) -> str:
        return "verified-sum"

    def indicate(self, view: UserView) -> bool:
        last = view.last()
        if last is None:
            return False
        return bool(getattr(last.state_after, "proof_accepted", False))


def counting_sensing() -> Sensing:
    """The counting goal's sensing (see :class:`VerifiedSumSensing`)."""
    return VerifiedSumSensing()
