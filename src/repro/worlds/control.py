"""The control world — a compact goal with an advisor server.

An infinite-horizon environment in which the user must repeatedly respond
to observations with the *correct* action under a hidden observation→action
law π.  The user cannot know π — but the server does (it is an *advisor*),
and helpful advisors tell the user what to do... each in its own vocabulary
(:mod:`repro.servers.advisors`).  Achieving the goal therefore means
finding how to interpret the advisor: the language-mismatch problem in its
compact-goal form.

Mechanics (all latencies follow from the engine's one-round delivery):

* every ``obs_period`` rounds the world draws an observation, announces it
  to both user (``OBS:<o>;FB:<event>``) and server (``OBS:<o>``), and
  queues it;
* an ``ACT:<a>`` message from the user scores the oldest queued observation
  — correct iff ``a == π(o)``;
* an observation unanswered for ``deadline`` rounds scores as a mistake
  (so silence is not a winning strategy);
* the feedback field reports this round's scoring event: ``ok``, ``bad``
  or ``none``.

The referee is local: a prefix is unacceptable iff its last round scored a
mistake.  "Finitely many unacceptable prefixes" is then exactly "the user
eventually stops making mistakes" — the compact-goal semantics in its most
interpretable form, and the quantity experiment E7 plots.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.comm.messages import WorldInbox, WorldOutbox, parse_tagged
from repro.core.goals import CompactGoal
from repro.core.referees import LastStateCompactReferee
from repro.core.sensing import GraceSensing, LastWorldMessageSensing, Sensing
from repro.core.strategy import WorldStrategy

#: The default observation/action vocabulary.
DEFAULT_SYMBOLS: Tuple[str, ...] = ("red", "green", "blue", "yellow")

#: Scoring events.
EVENT_OK = "ok"
EVENT_BAD = "bad"
EVENT_NONE = "none"


@dataclass(frozen=True)
class ControlState:
    """World state: queue of unscored observations plus score counters."""

    round_index: int = 0
    pending: Tuple[Tuple[str, int], ...] = ()  # (observation, issue round)
    scored: int = 0
    mistakes: int = 0
    last_event: str = EVENT_NONE


class ControlWorld(WorldStrategy):
    """The environment enforcing the hidden law π.

    ``law`` maps each observation symbol to its required action.  The world
    draws observations uniformly from ``law``'s keys; the draw order is the
    world's probabilistic component, while the choice of π itself is the
    non-deterministic choice quantified over by experiments (one goal per
    law).
    """

    def __init__(
        self,
        law: Mapping[str, str],
        *,
        obs_period: int = 4,
        deadline: int = 8,
    ) -> None:
        if not law:
            raise ValueError("control law must be non-empty")
        if obs_period < 1:
            raise ValueError(f"obs_period must be >= 1: {obs_period}")
        if deadline <= 3:
            # Three rounds is the minimum user->advisor->user->world latency;
            # a tighter deadline makes the goal unachievable by anyone.
            raise ValueError(f"deadline must exceed the channel latency: {deadline}")
        self._law = dict(law)
        self._symbols = tuple(sorted(law))
        self._obs_period = obs_period
        self._deadline = deadline

    @property
    def name(self) -> str:
        return f"control-world[{len(self._law)}]"

    @property
    def law(self) -> Dict[str, str]:
        """The hidden observation→action law (for building matching advisors)."""
        return dict(self._law)

    def initial_state(self, rng: random.Random) -> ControlState:
        return ControlState()

    def step(
        self, state: ControlState, inbox: WorldInbox, rng: random.Random
    ) -> Tuple[ControlState, WorldOutbox]:
        pending = list(state.pending)
        scored = state.scored
        mistakes = state.mistakes
        event = EVENT_NONE

        parsed = parse_tagged(inbox.from_user)
        acted = False
        if parsed is not None and parsed[0] == "ACT":
            # Acts name the observation they answer (``ACT:<obs>=<action>``)
            # so that stale in-flight actions from an abandoned strategy can
            # never be mis-scored against a newer observation.  An act for
            # an observation no longer pending is silently ignored.
            obs_text, sep, action = parsed[1].partition("=")
            if sep:
                for position, (observation, _issued) in enumerate(pending):
                    if observation == obs_text:
                        pending.pop(position)
                        scored += 1
                        acted = True
                        if self._law[observation] == action:
                            event = EVENT_OK
                        else:
                            mistakes += 1
                            event = EVENT_BAD
                        break
        if not acted and pending and state.round_index - pending[0][1] >= self._deadline:
            pending.pop(0)
            scored += 1
            mistakes += 1
            event = EVENT_BAD

        if state.round_index % self._obs_period == 0:
            new_obs = self._symbols[rng.randrange(len(self._symbols))]
            pending.append((new_obs, state.round_index))

        new_state = ControlState(
            round_index=state.round_index + 1,
            pending=tuple(pending),
            scored=scored,
            mistakes=mistakes,
            last_event=event,
        )
        # Announce the oldest unanswered observation (not just fresh ones):
        # a persistent environment keeps being observable, which is what
        # lets advice lost to a flaky server be re-derived instead of
        # turning into an unavoidable deadline mistake.
        obs_text = pending[0][0] if pending else "-"
        return new_state, WorldOutbox(
            to_user=f"OBS:{obs_text};FB:{event}",
            to_server=f"OBS:{obs_text}",
        )


def _state_not_bad(state: object) -> bool:
    """Referee predicate: the round did not score a mistake.

    Module-level (not a lambda) so control goals pickle — parallel sweep
    workers receive their cells by pickling the whole (user, server,
    goal) triple.
    """
    return not (isinstance(state, ControlState) and state.last_event == EVENT_BAD)


def control_goal(
    law: Mapping[str, str],
    *,
    obs_period: int = 4,
    deadline: int = 8,
    settle_fraction: float = 0.5,
) -> CompactGoal:
    """The compact goal "eventually always act correctly under π"."""
    return CompactGoal(
        name="control",
        world=ControlWorld(law, obs_period=obs_period, deadline=deadline),
        referee=LastStateCompactReferee(
            state_acceptable=_state_not_bad,
            label="no-mistake",
        ),
        forgiving=True,
        settle_fraction=settle_fraction,
    )


def _feedback_not_bad(message: str) -> bool:
    _, _, fb = message.partition(";FB:")
    return fb != EVENT_BAD


def control_sensing(grace_rounds: int = 14) -> Sensing:
    """The control goal's sensing: last feedback was not a mistake.

    Wrapped in a trial-local grace period long enough (observation period +
    deadline + channel latency) that mistakes caused by a *previous*
    candidate's stale actions or overdue observations are never blamed on
    the incumbent.  Without it, viability fails mechanically: every fresh
    candidate — including the adequate one — inherits one stale mistake and
    is evicted, and the universal user cycles forever (a miniature of why
    the paper's viability definition quantifies over executions, not single
    rounds).
    """
    return GraceSensing(
        LastWorldMessageSensing(
            predicate=_feedback_not_bad, default=True, label="control-fb"
        ),
        grace_rounds=grace_rounds,
    )


def random_law(
    rng: random.Random, symbols: Sequence[str] = DEFAULT_SYMBOLS
) -> Dict[str, str]:
    """A uniformly random permutation law over ``symbols``."""
    actions = list(symbols)
    rng.shuffle(actions)
    return dict(zip(symbols, actions))


def all_permutation_laws(symbols: Sequence[str]) -> Tuple[Dict[str, str], ...]:
    """Every permutation law over ``symbols`` (for exhaustive world classes)."""
    import itertools

    return tuple(
        dict(zip(symbols, perm)) for perm in itertools.permutations(symbols)
    )
